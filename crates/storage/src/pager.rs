//! Page file and buffer pool.
//!
//! The external-memory engines (G-Store, VertexDB's B-tree backend,
//! HyperGraphDB's store) all read and write through this pool. It is a
//! classic design: fixed 4 KiB pages, an LRU-evicted frame table, dirty
//! tracking, and a header page holding the allocation watermark, the
//! free list, and a small user-metadata area (the B-tree keeps its root
//! pointer there).
//!
//! Every disk read and eviction is counted in [`PoolStats`]; the
//! G-Store placement ablation bench compares *page faults*, not just
//! wall time, which is the honest way to reproduce an external-memory
//! claim on a machine whose OS cache would otherwise hide the effect.

use crate::codec::{get_u32, put_u32};
use gdm_core::{FxHashMap, GdmError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Maximum bytes of user metadata stored in the header page.
pub const USER_META_MAX: usize = 64;

const MAGIC: u32 = 0x6764_6d70; // "gdmp"
/// Free-list entries that fit in the header page after magic, watermark,
/// meta area, and list length.
const FREELIST_CAP: usize = (PAGE_SIZE - 4 - 4 - 4 - USER_META_MAX - 4) / 4;

/// Identifier of a page within one page file. Page 0 is the header and
/// never handed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Raw index form.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Where pages physically live.
pub trait PageBackend: Send {
    /// Reads page `pid` into `buf` (must be `PAGE_SIZE` long).
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()>;
    /// Writes page `pid` from `buf`.
    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()>;
    /// Number of pages the backend currently holds.
    fn page_count(&self) -> u32;
    /// Extends the backend so pages `< count` exist (zero-filled).
    fn grow_to(&mut self, count: u32) -> Result<()>;
    /// Flushes any backend buffering to durable storage.
    fn sync(&mut self) -> Result<()>;
}

/// File-backed pages.
pub struct FileBackend {
    file: File,
    pages: u32,
}

impl FileBackend {
    /// Opens (creating if absent) the page file at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let pages = u32::try_from(len / PAGE_SIZE as u64)
            .map_err(|_| GdmError::Storage("page file too large".into()))?;
        Ok(Self { file, pages })
    }
}

impl PageBackend for FileBackend {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        if pid.0 >= self.pages {
            return Err(GdmError::Storage(format!(
                "read of unallocated page {}",
                pid.0
            )));
        }
        self.file
            .seek(SeekFrom::Start(u64::from(pid.0) * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(u64::from(pid.0) * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages
    }

    fn grow_to(&mut self, count: u32) -> Result<()> {
        if count > self.pages {
            self.file.set_len(u64::from(count) * PAGE_SIZE as u64)?;
            self.pages = count;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }
}

/// Memory-backed pages, for tests and purely simulated external memory.
#[derive(Default)]
pub struct MemBackend {
    pages: Vec<Box<[u8]>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageBackend for MemBackend {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        let page = self
            .pages
            .get(pid.0 as usize)
            .ok_or_else(|| GdmError::Storage(format!("read of unallocated page {}", pid.0)))?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()> {
        let page = self
            .pages
            .get_mut(pid.0 as usize)
            .ok_or_else(|| GdmError::Storage(format!("write of unallocated page {}", pid.0)))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn grow_to(&mut self, count: u32) -> Result<()> {
        while self.pages.len() < count as usize {
            self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Counters exposed by the buffer pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests satisfied from a resident frame.
    pub hits: u64,
    /// Page requests that had to read from the backend (page faults).
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Pages written back to the backend (evictions + flushes).
    pub writebacks: u64,
    /// Pages allocated over the pool's lifetime.
    pub allocations: u64,
}

struct Frame {
    pid: PageId,
    data: Box<[u8]>,
    dirty: bool,
    last_used: u64,
}

/// An LRU buffer pool over a [`PageBackend`].
pub struct BufferPool {
    backend: Box<dyn PageBackend>,
    capacity: usize,
    frames: Vec<Frame>,
    resident: FxHashMap<u32, usize>,
    tick: u64,
    stats: PoolStats,
    watermark: u32,
    freelist: Vec<u32>,
    user_meta: Vec<u8>,
}

impl BufferPool {
    /// Creates a fresh pool (initializing the header) over `backend`.
    pub fn create(mut backend: Box<dyn PageBackend>, capacity: usize) -> Result<Self> {
        backend.grow_to(1)?;
        let mut pool = Self {
            backend,
            capacity: capacity.max(2),
            frames: Vec::new(),
            resident: FxHashMap::default(),
            tick: 0,
            stats: PoolStats::default(),
            watermark: 1,
            freelist: Vec::new(),
            user_meta: Vec::new(),
        };
        pool.write_header()?;
        Ok(pool)
    }

    /// Opens an existing pool, reading the header.
    pub fn open(mut backend: Box<dyn PageBackend>, capacity: usize) -> Result<Self> {
        let mut buf = vec![0u8; PAGE_SIZE];
        backend.read_page(PageId(0), &mut buf)?;
        let mut pos = 0;
        let magic = get_u32(&buf, &mut pos)?;
        if magic != MAGIC {
            return Err(GdmError::Storage("bad page-file magic".into()));
        }
        let watermark = get_u32(&buf, &mut pos)?;
        let meta_len = get_u32(&buf, &mut pos)? as usize;
        if meta_len > USER_META_MAX {
            return Err(GdmError::Storage("corrupt header: meta length".into()));
        }
        let user_meta = buf[pos..pos + meta_len].to_vec();
        pos += USER_META_MAX;
        let free_len = get_u32(&buf, &mut pos)? as usize;
        if free_len > FREELIST_CAP {
            return Err(GdmError::Storage("corrupt header: freelist length".into()));
        }
        let mut freelist = Vec::with_capacity(free_len);
        for _ in 0..free_len {
            freelist.push(get_u32(&buf, &mut pos)?);
        }
        Ok(Self {
            backend,
            capacity: capacity.max(2),
            frames: Vec::new(),
            resident: FxHashMap::default(),
            tick: 0,
            stats: PoolStats::default(),
            watermark,
            freelist,
            user_meta,
        })
    }

    /// Convenience: create or open a file-backed pool at `path`.
    pub fn file(path: &Path, capacity: usize) -> Result<Self> {
        let fresh = !path.exists() || std::fs::metadata(path)?.len() == 0;
        let backend = Box::new(FileBackend::open(path)?);
        if fresh {
            Self::create(backend, capacity)
        } else {
            Self::open(backend, capacity)
        }
    }

    /// Convenience: a fresh memory-backed pool.
    pub fn memory(capacity: usize) -> Self {
        Self::create(Box::new(MemBackend::new()), capacity).expect("memory pool cannot fail")
    }

    /// Allocates a page (recycling freed pages first).
    pub fn allocate_page(&mut self) -> Result<PageId> {
        self.stats.allocations += 1;
        if let Some(pid) = self.freelist.pop() {
            // Recycled pages must come back zeroed.
            self.update_page(PageId(pid), |data| data.fill(0))?;
            return Ok(PageId(pid));
        }
        let pid = self.watermark;
        self.watermark = self
            .watermark
            .checked_add(1)
            .ok_or_else(|| GdmError::Storage("page file full".into()))?;
        self.backend.grow_to(self.watermark)?;
        Ok(PageId(pid))
    }

    /// Returns a page to the free list. Only the first
    /// `FREELIST_CAP` freed pages are remembered across restarts.
    pub fn free_page(&mut self, pid: PageId) {
        if let Some(&slot) = self.resident.get(&pid.0) {
            self.frames[slot].dirty = false;
            self.frames[slot].last_used = 0; // evict first
        }
        if self.freelist.len() < FREELIST_CAP {
            self.freelist.push(pid.0);
        }
    }

    /// Reads page `pid` through the pool and hands it to `f`.
    pub fn with_page<R>(&mut self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let slot = self.load(pid)?;
        Ok(f(&self.frames[slot].data))
    }

    /// Loads page `pid`, lets `f` mutate it, and marks it dirty.
    pub fn update_page<R>(&mut self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let slot = self.load(pid)?;
        let frame = &mut self.frames[slot];
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Replaces the user metadata (≤ [`USER_META_MAX`] bytes).
    pub fn set_user_meta(&mut self, meta: &[u8]) -> Result<()> {
        if meta.len() > USER_META_MAX {
            return Err(GdmError::InvalidArgument(format!(
                "user meta larger than {USER_META_MAX} bytes"
            )));
        }
        self.user_meta = meta.to_vec();
        Ok(())
    }

    /// Current user metadata.
    pub fn user_meta(&self) -> &[u8] {
        &self.user_meta
    }

    /// Writes back every dirty frame and the header.
    pub fn flush(&mut self) -> Result<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                let pid = self.frames[i].pid;
                self.backend.write_page(pid, &self.frames[i].data)?;
                self.frames[i].dirty = false;
                self.stats.writebacks += 1;
            }
        }
        self.write_header()?;
        self.backend.sync()
    }

    /// Pool counters since creation or the last [`BufferPool::reset_stats`].
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Zeroes the counters (benches call this after loading a workload).
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// Number of allocated (non-header) pages, including freed ones.
    pub fn allocated_pages(&self) -> u32 {
        self.watermark - 1
    }

    /// Buffer pool frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn write_header(&mut self) -> Result<()> {
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        put_u32(&mut buf, MAGIC);
        put_u32(&mut buf, self.watermark);
        put_u32(&mut buf, self.user_meta.len() as u32);
        buf.extend_from_slice(&self.user_meta);
        buf.resize(4 + 4 + 4 + USER_META_MAX, 0);
        put_u32(&mut buf, self.freelist.len() as u32);
        for &pid in &self.freelist {
            put_u32(&mut buf, pid);
        }
        buf.resize(PAGE_SIZE, 0);
        self.backend.write_page(PageId(0), &buf)
    }

    fn load(&mut self, pid: PageId) -> Result<usize> {
        if pid.0 == 0 {
            return Err(GdmError::Storage("page 0 is the header".into()));
        }
        self.tick += 1;
        if let Some(&slot) = self.resident.get(&pid.0) {
            self.stats.hits += 1;
            self.frames[slot].last_used = self.tick;
            return Ok(slot);
        }
        self.stats.misses += 1;
        let slot = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                pid,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: false,
                last_used: self.tick,
            });
            self.frames.len() - 1
        } else {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 2 so frames is non-empty");
            let old = &mut self.frames[victim];
            if old.dirty {
                self.backend.write_page(old.pid, &old.data)?;
                self.stats.writebacks += 1;
            }
            self.stats.evictions += 1;
            self.resident.remove(&old.pid.0);
            old.pid = pid;
            old.dirty = false;
            old.last_used = self.tick;
            victim
        };
        let tick = self.tick;
        self.backend.read_page(pid, &mut self.frames[slot].data)?;
        self.frames[slot].last_used = tick;
        self.resident.insert(pid.0, slot);
        Ok(slot)
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Best effort: durability-critical callers flush explicitly.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_memory() {
        let mut pool = BufferPool::memory(4);
        let p = pool.allocate_page().unwrap();
        pool.update_page(p, |d| d[0..4].copy_from_slice(b"abcd"))
            .unwrap();
        let first = pool.with_page(p, |d| d[0..4].to_vec()).unwrap();
        assert_eq!(&first, b"abcd");
    }

    #[test]
    fn eviction_respects_lru_and_persists_dirty_pages() {
        let mut pool = BufferPool::memory(2);
        let pages: Vec<_> = (0..4).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.update_page(p, |d| d[0] = i as u8).unwrap();
        }
        // Only 2 frames: pages 0 and 1 must have been evicted (written
        // back) and still be readable.
        for (i, &p) in pages.iter().enumerate() {
            let v = pool.with_page(p, |d| d[0]).unwrap();
            assert_eq!(v, i as u8);
        }
        assert!(pool.stats().evictions >= 2);
        assert!(pool.stats().writebacks >= 2);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut pool = BufferPool::memory(4);
        let p = pool.allocate_page().unwrap();
        pool.with_page(p, |_| ()).unwrap();
        pool.with_page(p, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn freed_pages_are_recycled_zeroed() {
        let mut pool = BufferPool::memory(4);
        let p = pool.allocate_page().unwrap();
        pool.update_page(p, |d| d[7] = 9).unwrap();
        pool.free_page(p);
        let q = pool.allocate_page().unwrap();
        assert_eq!(q, p, "freelist should recycle");
        let v = pool.with_page(q, |d| d[7]).unwrap();
        assert_eq!(v, 0, "recycled page must be zeroed");
    }

    #[test]
    fn header_page_is_protected() {
        let mut pool = BufferPool::memory(4);
        assert!(pool.with_page(PageId(0), |_| ()).is_err());
    }

    #[test]
    fn file_backend_round_trips_across_reopen() {
        let dir = std::env::temp_dir().join(format!("gdm-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.db");
        let _ = std::fs::remove_file(&path);
        let pid;
        {
            let mut pool = BufferPool::file(&path, 4).unwrap();
            pid = pool.allocate_page().unwrap();
            pool.update_page(pid, |d| d[0..5].copy_from_slice(b"hello"))
                .unwrap();
            pool.set_user_meta(b"root=7").unwrap();
            pool.flush().unwrap();
        }
        {
            let mut pool = BufferPool::file(&path, 4).unwrap();
            assert_eq!(pool.user_meta(), b"root=7");
            let v = pool.with_page(pid, |d| d[0..5].to_vec()).unwrap();
            assert_eq!(&v, b"hello");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn user_meta_size_is_bounded() {
        let mut pool = BufferPool::memory(2);
        assert!(pool.set_user_meta(&[0u8; USER_META_MAX]).is_ok());
        assert!(pool.set_user_meta(&[0u8; USER_META_MAX + 1]).is_err());
    }

    #[test]
    fn reading_unallocated_page_fails() {
        let mut pool = BufferPool::memory(2);
        assert!(pool.with_page(PageId(99), |_| ()).is_err());
    }
}
