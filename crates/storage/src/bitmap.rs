//! Dynamic bitsets — the storage idiom of DEX.
//!
//! DEX ("DEX: High-Performance Exploration on Large Graphs", CIKM'07)
//! stores each node/edge type and each attribute value as a bitmap over
//! object identifiers, so membership tests, type scans, and conjunctive
//! filters become bitwise operations. [`Bitmap`] reproduces that design
//! with 64-bit blocks.

use std::fmt;

/// A growable bitset over `u64` ids.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bitmap {
    blocks: Vec<u64>,
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap with capacity for ids `< bits` without
    /// reallocating.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            blocks: Vec::with_capacity(bits.div_ceil(64)),
        }
    }

    /// Sets bit `id`. Returns true if the bit was newly set.
    pub fn insert(&mut self, id: u64) -> bool {
        let (block, mask) = locate(id);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let was = self.blocks[block] & mask != 0;
        self.blocks[block] |= mask;
        !was
    }

    /// Clears bit `id`. Returns true if the bit was previously set.
    pub fn remove(&mut self, id: u64) -> bool {
        let (block, mask) = locate(id);
        if block >= self.blocks.len() {
            return false;
        }
        let was = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        was
    }

    /// Tests bit `id`.
    pub fn contains(&self, id: u64) -> bool {
        let (block, mask) = locate(id);
        self.blocks.get(block).is_some_and(|b| b & mask != 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Iterates set bits in increasing order.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Bitmap) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        for (i, a) in self.blocks.iter_mut().enumerate() {
            *a &= other.blocks.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &Bitmap) {
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a &= !b;
        }
    }

    /// Returns the union of two bitmaps.
    pub fn union(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns the intersection of two bitmaps.
    pub fn intersection(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `self \ other`.
    pub fn difference(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// The smallest set id, if any.
    pub fn min(&self) -> Option<u64> {
        self.iter().next()
    }

    /// Approximate heap use in bytes (for the DEX engine's stats).
    pub fn byte_size(&self) -> usize {
        self.blocks.len() * 8
    }
}

#[inline]
fn locate(id: u64) -> (usize, u64) {
    ((id / 64) as usize, 1u64 << (id % 64))
}

impl FromIterator<u64> for Bitmap {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut bm = Bitmap::new();
        for id in iter {
            bm.insert(id);
        }
        bm
    }
}

impl fmt::Display for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over set bits.
pub struct BitmapIter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as u64;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.block_idx as u64 * 64 + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bm = Bitmap::new();
        assert!(bm.insert(5));
        assert!(!bm.insert(5));
        assert!(bm.contains(5));
        assert!(!bm.contains(6));
        assert!(bm.remove(5));
        assert!(!bm.remove(5));
        assert!(bm.is_empty());
    }

    #[test]
    fn spans_block_boundaries() {
        let mut bm = Bitmap::new();
        for id in [0, 63, 64, 65, 127, 128, 1000] {
            bm.insert(id);
        }
        assert_eq!(bm.len(), 7);
        let ids: Vec<_> = bm.iter().collect();
        assert_eq!(ids, vec![0, 63, 64, 65, 127, 128, 1000]);
    }

    #[test]
    fn set_operations() {
        let a: Bitmap = [1u64, 2, 3, 100].into_iter().collect();
        let b: Bitmap = [2u64, 3, 4, 200].into_iter().collect();
        assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 100, 200]
        );
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 100]);
    }

    #[test]
    fn intersection_with_shorter_bitmap_truncates() {
        let a: Bitmap = [1u64, 500].into_iter().collect();
        let b: Bitmap = [1u64].into_iter().collect();
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(b.intersection(&a).iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn min_and_display() {
        let bm: Bitmap = [9u64, 3, 7].into_iter().collect();
        assert_eq!(bm.min(), Some(3));
        assert_eq!(bm.to_string(), "{3, 7, 9}");
        assert_eq!(Bitmap::new().min(), None);
    }

    #[test]
    fn remove_beyond_allocated_blocks_is_noop() {
        let mut bm = Bitmap::new();
        bm.insert(1);
        assert!(!bm.remove(10_000));
        assert_eq!(bm.len(), 1);
    }
}
