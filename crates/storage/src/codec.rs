//! Byte encodings used by the storage substrates.
//!
//! Two families:
//!
//! * **Order-preserving value encoding** — encodes a [`Value`] so that
//!   `encode(a) < encode(b)` (bytewise) iff `a.total_cmp(b) == Less`.
//!   B-tree indexes rely on this for range scans over attribute values.
//!   Encoded values self-terminate, so they compose into multi-part
//!   keys (e.g. `property-symbol ++ value ++ node-id`).
//! * **Varint / fixed-int record encoding** — LEB128 varints and
//!   big-endian fixed integers for record serialization.

use gdm_core::{GdmError, Result, Value};

// ---------------------------------------------------------------------
// Varints and fixed-width helpers
// ---------------------------------------------------------------------

/// Appends `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `buf` starting at `*pos`, advancing it.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| GdmError::Storage("varint truncated".into()))?;
        *pos += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(GdmError::Storage("varint overflow".into()));
        }
    }
}

/// Appends a length-prefixed byte slice.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte slice.
pub fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8]> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .ok_or_else(|| GdmError::Storage("length overflow".into()))?;
    if end > buf.len() {
        return Err(GdmError::Storage("byte slice truncated".into()));
    }
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

/// Appends a big-endian u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Reads a big-endian u32.
pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let end = *pos + 4;
    if end > buf.len() {
        return Err(GdmError::Storage("u32 truncated".into()));
    }
    let v = u32::from_be_bytes(buf[*pos..end].try_into().expect("4 bytes"));
    *pos = end;
    Ok(v)
}

/// Appends a big-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Reads a big-endian u64.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let end = *pos + 8;
    if end > buf.len() {
        return Err(GdmError::Storage("u64 truncated".into()));
    }
    let v = u64::from_be_bytes(buf[*pos..end].try_into().expect("8 bytes"));
    *pos = end;
    Ok(v)
}

// ---------------------------------------------------------------------
// Order-preserving value encoding
// ---------------------------------------------------------------------

const TAG_NULL: u8 = 0x01;
const TAG_FALSE: u8 = 0x02;
const TAG_TRUE: u8 = 0x03;
const TAG_NUMBER: u8 = 0x04;
const TAG_STRING: u8 = 0x05;
const TAG_LIST: u8 = 0x06;
const LIST_END: u8 = 0x00;

/// Encodes `v` into `out` preserving [`Value::total_cmp`] order.
///
/// Numbers (int and float) share one tag and are encoded as IEEE-754
/// doubles mapped to a monotonically ordered 64-bit pattern. Integers
/// beyond 2^53 lose precision in ordering against floats exactly as
/// `total_cmp`'s float path does; the encoding additionally appends the
/// exact i64 for ints so equal doubles still order deterministically.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_NUMBER);
            put_u64(out, order_f64(*i as f64));
            // Tie tag 1 = int, followed by the exact value
            // (sign-flipped so equal-double ints still order).
            out.push(1);
            put_u64(out, (*i as u64) ^ (1 << 63));
        }
        Value::Float(f) => {
            out.push(TAG_NUMBER);
            put_u64(out, order_f64(*f));
            // Tie tag 0 = float (sorts before an equal-double int —
            // the pair is Equal under total_cmp, so any deterministic
            // order is acceptable).
            out.push(0);
        }
        Value::Str(s) => {
            out.push(TAG_STRING);
            escape_bytes(out, s.as_bytes());
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            for item in items {
                out.push(0x01); // element-present marker > LIST_END
                encode_value(out, item);
            }
            out.push(LIST_END);
        }
    }
}

/// Encodes a value into a fresh buffer.
pub fn encoded_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_value(&mut out, v);
    out
}

/// Decodes a value previously written by [`encode_value`], advancing
/// `pos`.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| GdmError::Storage("value tag truncated".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_NUMBER => {
            let ordered = get_u64(buf, pos)?;
            let tie_tag = *buf
                .get(*pos)
                .ok_or_else(|| GdmError::Storage("number tie tag truncated".into()))?;
            *pos += 1;
            if tie_tag == 0 {
                Ok(Value::Float(unorder_f64(ordered)))
            } else {
                let exact = get_u64(buf, pos)?;
                Ok(Value::Int((exact ^ (1 << 63)) as i64))
            }
        }
        TAG_STRING => {
            let bytes = unescape_bytes(buf, pos)?;
            String::from_utf8(bytes)
                .map(Value::Str)
                .map_err(|_| GdmError::Storage("invalid utf-8 in encoded string".into()))
        }
        TAG_LIST => {
            let mut items = Vec::new();
            loop {
                let marker = *buf
                    .get(*pos)
                    .ok_or_else(|| GdmError::Storage("list truncated".into()))?;
                *pos += 1;
                if marker == LIST_END {
                    return Ok(Value::List(items));
                }
                items.push(decode_value(buf, pos)?);
            }
        }
        other => Err(GdmError::Storage(format!("unknown value tag {other:#x}"))),
    }
}

/// Maps a f64 onto a u64 whose unsigned order equals IEEE total order.
fn order_f64(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits & (1 << 63) == 0 {
        bits | (1 << 63) // positive: set sign bit
    } else {
        !bits // negative: flip everything
    }
}

fn unorder_f64(u: u64) -> f64 {
    let bits = if u & (1 << 63) != 0 {
        u & !(1 << 63)
    } else {
        !u
    };
    f64::from_bits(bits)
}

/// Escapes a byte string so that the encoding is order-preserving and
/// self-terminating: 0x00 → 0x00 0xFF, terminator 0x00 0x00.
fn escape_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        if b == 0x00 {
            out.push(0x00);
            out.push(0xff);
        } else {
            out.push(b);
        }
    }
    out.push(0x00);
    out.push(0x00);
}

fn unescape_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| GdmError::Storage("escaped string truncated".into()))?;
        *pos += 1;
        if b != 0x00 {
            out.push(b);
            continue;
        }
        let next = *buf
            .get(*pos)
            .ok_or_else(|| GdmError::Storage("escape truncated".into()))?;
        *pos += 1;
        match next {
            0x00 => return Ok(out),
            0xff => out.push(0x00),
            other => return Err(GdmError::Storage(format!("invalid escape byte {other:#x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn roundtrip(v: &Value) -> Value {
        let enc = encoded_value(v);
        let mut pos = 0;
        let out = decode_value(&enc, &mut pos).unwrap();
        assert_eq!(pos, enc.len(), "decoder must consume everything");
        out
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(-12345),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(0.0),
            Value::Float(-1.5),
            Value::Float(f64::INFINITY),
            Value::Str("".into()),
            Value::Str("hello\0world".into()),
            Value::List(vec![Value::Int(1), Value::Str("x".into())]),
            Value::List(vec![]),
        ] {
            assert_eq!(roundtrip(&v), v, "round-trip of {v:?}");
        }
    }

    #[test]
    fn encoding_preserves_total_order() {
        let values = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-10),
            Value::Int(0),
            Value::Int(3),
            Value::Float(-2.5),
            Value::Float(3.5),
            Value::Str("a".into()),
            Value::Str("ab".into()),
            Value::Str("b".into()),
            Value::List(vec![Value::Int(1)]),
        ];
        for a in &values {
            for b in &values {
                let ea = encoded_value(a);
                let eb = encoded_value(b);
                let byte_ord = ea.cmp(&eb);
                let val_ord = a.total_cmp(b);
                // Byte order must refine value order: strictly ordered
                // values keep their order; equal values may differ only
                // via deterministic tie-breaks (none among these).
                if val_ord != Ordering::Equal {
                    assert_eq!(byte_ord, val_ord, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn int_float_equal_values_sort_adjacently() {
        // 2 (int) and 2.0 (float) are equal under total_cmp; their
        // encodings share the ordered-double prefix so both fall
        // between 1.9 and 2.1.
        let lo = encoded_value(&Value::Float(1.9));
        let a = encoded_value(&Value::Int(2));
        let b = encoded_value(&Value::Float(2.0));
        let hi = encoded_value(&Value::Float(2.1));
        assert!(lo < a && lo < b);
        assert!(a < hi && b < hi);
    }

    #[test]
    fn string_with_nul_orders_correctly() {
        // "a\0" < "a\0\0" < "a\x01"
        let a = encoded_value(&Value::Str("a\0".into()));
        let b = encoded_value(&Value::Str("a\0\0".into()));
        let c = encoded_value(&Value::Str("a\u{1}".into()));
        assert!(a < b, "nul-terminated prefix must sort first");
        assert!(b < c);
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncation_is_detected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1u64 << 40);
        buf.pop();
        let mut pos = 0;
        assert!(get_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn bytes_round_trip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        put_bytes(&mut buf, b"");
        put_bytes(&mut buf, b"world");
        let mut pos = 0;
        assert_eq!(get_bytes(&buf, &mut pos).unwrap(), b"hello");
        assert_eq!(get_bytes(&buf, &mut pos).unwrap(), b"");
        assert_eq!(get_bytes(&buf, &mut pos).unwrap(), b"world");
    }

    #[test]
    fn fixed_ints_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 3);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 7);
        assert_eq!(get_u64(&buf, &mut pos).unwrap(), u64::MAX - 3);
    }

    #[test]
    fn composite_keys_compose() {
        // property-symbol ++ value ++ id must be decodable in sequence.
        let mut key = Vec::new();
        put_u32(&mut key, 42);
        encode_value(&mut key, &Value::Str("alice".into()));
        put_u64(&mut key, 7);
        let mut pos = 0;
        assert_eq!(get_u32(&key, &mut pos).unwrap(), 42);
        assert_eq!(
            decode_value(&key, &mut pos).unwrap(),
            Value::Str("alice".into())
        );
        assert_eq!(get_u64(&key, &mut pos).unwrap(), 7);
        assert_eq!(pos, key.len());
    }
}
