//! An on-disk B-tree key/value store over the buffer pool.
//!
//! This is the stand-in for the disk B-tree backends the paper's
//! systems used (TokyoCabinet under VertexDB, BerkeleyDB-style stores
//! under HyperGraphDB and Filament): ordered byte keys, range scans via
//! a linked leaf chain, page-granular I/O through [`BufferPool`].
//!
//! Structure invariants (checked by [`DiskBTree::check_invariants`]):
//!
//! 1. every node's keys are strictly sorted,
//! 2. every key in child `i` of an internal node is `< keys[i]` and
//!    every key in child `i+1` is `≥ keys[i]`,
//! 3. leaves linked by `next` cover all entries in ascending order,
//! 4. every node's serialization fits a page.
//!
//! Deletion rebalances (borrow from a sibling, else merge) but tolerates
//! transient under-occupancy when both siblings would overflow — the
//! occupancy target is best-effort, the ordering invariants are not.

use crate::codec::{get_bytes, get_u32, get_u64, put_bytes, put_u32, put_u64};
use crate::memkv::{prefix_end, KvStore};
use crate::pager::{BufferPool, PageId, PAGE_SIZE};
use gdm_core::{GdmError, Result};

/// Maximum key length accepted by [`DiskBTree::put`].
pub const MAX_KEY_LEN: usize = 512;
/// Maximum value length accepted by [`DiskBTree::put`].
pub const MAX_VALUE_LEN: usize = 2048;

const LEAF_TAG: u8 = 1;
const INTERNAL_TAG: u8 = 2;
const META_MAGIC: &[u8; 2] = b"BT";
/// Nodes smaller than this try to rebalance after a delete.
const MIN_FILL: usize = PAGE_SIZE / 4;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        next: Option<PageId>,
    },
    Internal {
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                // tag + count(u32) + next(u32) + entries
                9 + entries
                    .iter()
                    .map(|(k, v)| 10 + k.len() + 10 + v.len())
                    .sum::<usize>()
            }
            Node::Internal { keys, children } => {
                9 + children.len() * 4 + keys.iter().map(|k| 10 + k.len()).sum::<usize>()
            }
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        match self {
            Node::Leaf { entries, next } => {
                buf.push(LEAF_TAG);
                put_u32(&mut buf, entries.len() as u32);
                put_u32(&mut buf, next.map_or(0, PageId::raw));
                for (k, v) in entries {
                    put_bytes(&mut buf, k);
                    put_bytes(&mut buf, v);
                }
            }
            Node::Internal { keys, children } => {
                buf.push(INTERNAL_TAG);
                put_u32(&mut buf, keys.len() as u32);
                put_u32(&mut buf, children[0].raw());
                for (key, child) in keys.iter().zip(children.iter().skip(1)) {
                    put_bytes(&mut buf, key);
                    put_u32(&mut buf, child.raw());
                }
            }
        }
        debug_assert!(buf.len() <= PAGE_SIZE, "node overflow: {} bytes", buf.len());
        buf
    }

    fn decode(buf: &[u8]) -> Result<Node> {
        let mut pos = 0;
        let tag = buf[0];
        pos += 1;
        let count = get_u32(buf, &mut pos)? as usize;
        match tag {
            LEAF_TAG => {
                let next_raw = get_u32(buf, &mut pos)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let k = get_bytes(buf, &mut pos)?.to_vec();
                    let v = get_bytes(buf, &mut pos)?.to_vec();
                    entries.push((k, v));
                }
                Ok(Node::Leaf {
                    entries,
                    next: (next_raw != 0).then_some(PageId(next_raw)),
                })
            }
            INTERNAL_TAG => {
                let first = get_u32(buf, &mut pos)?;
                let mut keys = Vec::with_capacity(count);
                let mut children = Vec::with_capacity(count + 1);
                children.push(PageId(first));
                for _ in 0..count {
                    keys.push(get_bytes(buf, &mut pos)?.to_vec());
                    children.push(PageId(get_u32(buf, &mut pos)?));
                }
                Ok(Node::Internal { keys, children })
            }
            other => Err(GdmError::Storage(format!("bad node tag {other}"))),
        }
    }
}

/// Outcome of a recursive insert: an optional split to propagate plus
/// the replaced value.
struct InsertOutcome {
    split: Option<(Vec<u8>, PageId)>,
    old: Option<Vec<u8>>,
}

/// A persistent ordered key/value store.
pub struct DiskBTree {
    pool: BufferPool,
    root: PageId,
    count: u64,
}

impl DiskBTree {
    /// Creates a fresh tree in `pool` (which must be empty) or reopens
    /// the tree recorded in the pool's metadata.
    pub fn new(mut pool: BufferPool) -> Result<Self> {
        let meta = pool.user_meta().to_vec();
        if meta.len() >= 14 && &meta[0..2] == META_MAGIC {
            let mut pos = 2;
            let root = PageId(get_u32(&meta, &mut pos)?);
            let count = get_u64(&meta, &mut pos)?;
            return Ok(Self { pool, root, count });
        }
        let root = pool.allocate_page()?;
        let node = Node::Leaf {
            entries: Vec::new(),
            next: None,
        };
        write_node(&mut pool, root, &node)?;
        let mut tree = Self {
            pool,
            root,
            count: 0,
        };
        tree.write_meta()?;
        Ok(tree)
    }

    /// Opens or creates a file-backed tree at `path` with a buffer pool
    /// of `pool_pages` frames.
    pub fn file(path: &std::path::Path, pool_pages: usize) -> Result<Self> {
        Self::new(BufferPool::file(path, pool_pages)?)
    }

    /// A memory-backed tree (for tests and simulated backends).
    pub fn memory(pool_pages: usize) -> Self {
        Self::new(BufferPool::memory(pool_pages)).expect("memory tree cannot fail")
    }

    /// Buffer-pool statistics (page faults drive the storage benches).
    pub fn pool_stats(&self) -> crate::pager::PoolStats {
        self.pool.stats()
    }

    /// Resets buffer-pool statistics.
    pub fn reset_pool_stats(&mut self) {
        self.pool.reset_stats();
    }

    fn write_meta(&mut self) -> Result<()> {
        let mut meta = Vec::with_capacity(14);
        meta.extend_from_slice(META_MAGIC);
        put_u32(&mut meta, self.root.raw());
        put_u64(&mut meta, self.count);
        self.pool.set_user_meta(&meta)
    }

    fn validate_entry(key: &[u8], value: &[u8]) -> Result<()> {
        if key.is_empty() {
            return Err(GdmError::InvalidArgument("empty key".into()));
        }
        if key.len() > MAX_KEY_LEN {
            return Err(GdmError::InvalidArgument(format!(
                "key longer than {MAX_KEY_LEN} bytes"
            )));
        }
        if value.len() > MAX_VALUE_LEN {
            return Err(GdmError::InvalidArgument(format!(
                "value longer than {MAX_VALUE_LEN} bytes"
            )));
        }
        Ok(())
    }

    fn insert_rec(&mut self, pid: PageId, key: &[u8], value: &[u8]) -> Result<InsertOutcome> {
        let mut node = read_node(&mut self.pool, pid)?;
        match &mut node {
            Node::Leaf { entries, next: _ } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value.to_vec())),
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                };
                if node.serialized_size() <= PAGE_SIZE {
                    write_node(&mut self.pool, pid, &node)?;
                    return Ok(InsertOutcome { split: None, old });
                }
                // Split the leaf by accumulated byte size.
                let (entries, next) = match node {
                    Node::Leaf { entries, next } => (entries, next),
                    _ => unreachable!(),
                };
                let split_at = split_point(
                    entries.len(),
                    entries.iter().map(|(k, v)| 20 + k.len() + v.len()),
                );
                let right_entries = entries[split_at..].to_vec();
                let left_entries = entries[..split_at].to_vec();
                let sep = right_entries[0].0.clone();
                let right_pid = self.pool.allocate_page()?;
                write_node(
                    &mut self.pool,
                    right_pid,
                    &Node::Leaf {
                        entries: right_entries,
                        next,
                    },
                )?;
                write_node(
                    &mut self.pool,
                    pid,
                    &Node::Leaf {
                        entries: left_entries,
                        next: Some(right_pid),
                    },
                )?;
                Ok(InsertOutcome {
                    split: Some((sep, right_pid)),
                    old,
                })
            }
            Node::Internal { keys, children } => {
                let idx = child_index(keys, key);
                let child = children[idx];
                let outcome = self.insert_rec(child, key, value)?;
                let Some((sep, new_child)) = outcome.split else {
                    return Ok(outcome);
                };
                keys.insert(idx, sep);
                children.insert(idx + 1, new_child);
                if node.serialized_size() <= PAGE_SIZE {
                    write_node(&mut self.pool, pid, &node)?;
                    return Ok(InsertOutcome {
                        split: None,
                        old: outcome.old,
                    });
                }
                // Split the internal node: middle key moves up.
                let (mut keys, mut children) = match node {
                    Node::Internal { keys, children } => (keys, children),
                    _ => unreachable!(),
                };
                let mid = keys.len() / 2;
                let up_key = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // remove up_key from the left
                let right_children = children.split_off(mid + 1);
                let right_pid = self.pool.allocate_page()?;
                write_node(
                    &mut self.pool,
                    right_pid,
                    &Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                )?;
                write_node(&mut self.pool, pid, &Node::Internal { keys, children })?;
                Ok(InsertOutcome {
                    split: Some((up_key, right_pid)),
                    old: outcome.old,
                })
            }
        }
    }

    fn delete_rec(&mut self, pid: PageId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut node = read_node(&mut self.pool, pid)?;
        match &mut node {
            Node::Leaf { entries, .. } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let (_, v) = entries.remove(i);
                        write_node(&mut self.pool, pid, &node)?;
                        Ok(Some(v))
                    }
                    Err(_) => Ok(None),
                }
            }
            Node::Internal { keys, children } => {
                let idx = child_index(keys, key);
                let child = children[idx];
                let removed = self.delete_rec(child, key)?;
                if removed.is_some() {
                    self.rebalance_child(pid, idx)?;
                }
                Ok(removed)
            }
        }
    }

    /// After a delete in `children[idx]` of internal node `pid`, restore
    /// occupancy by borrowing from or merging with a sibling.
    fn rebalance_child(&mut self, pid: PageId, idx: usize) -> Result<()> {
        let parent = read_node(&mut self.pool, pid)?;
        let (keys, children) = match &parent {
            Node::Internal { keys, children } => (keys.clone(), children.clone()),
            _ => unreachable!("rebalance_child called on a leaf"),
        };
        let child_pid = children[idx];
        let child = read_node(&mut self.pool, child_pid)?;
        let child_empty = match &child {
            Node::Leaf { entries, .. } => entries.is_empty(),
            Node::Internal { children, .. } => children.len() <= 1,
        };
        if child.serialized_size() >= MIN_FILL && !child_empty {
            return Ok(());
        }
        // Prefer merging with the right sibling, then the left; fall
        // back to borrowing; tolerate under-occupancy if nothing fits.
        let sib_idx = if idx + 1 < children.len() {
            idx + 1
        } else {
            idx - 1
        };
        let (left_idx, right_idx) = if sib_idx > idx {
            (idx, sib_idx)
        } else {
            (sib_idx, idx)
        };
        let left_pid = children[left_idx];
        let right_pid = children[right_idx];
        let left = read_node(&mut self.pool, left_pid)?;
        let right = read_node(&mut self.pool, right_pid)?;
        let sep = keys[left_idx].clone();

        // --- try merge --------------------------------------------------
        let merged: Option<Node> = match (&left, &right) {
            (
                Node::Leaf {
                    entries: le,
                    next: _,
                },
                Node::Leaf {
                    entries: re,
                    next: rnext,
                },
            ) => {
                let mut entries = le.clone();
                entries.extend(re.iter().cloned());
                let node = Node::Leaf {
                    entries,
                    next: *rnext,
                };
                (node.serialized_size() <= PAGE_SIZE).then_some(node)
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                let mut nk = lk.clone();
                nk.push(sep.clone());
                nk.extend(rk.iter().cloned());
                let mut nc = lc.clone();
                nc.extend(rc.iter().cloned());
                let node = Node::Internal {
                    keys: nk,
                    children: nc,
                };
                (node.serialized_size() <= PAGE_SIZE).then_some(node)
            }
            _ => None,
        };
        if let Some(node) = merged {
            write_node(&mut self.pool, left_pid, &node)?;
            self.pool.free_page(right_pid);
            let mut keys = keys;
            let mut children = children;
            keys.remove(left_idx);
            children.remove(right_idx);
            write_node(&mut self.pool, pid, &Node::Internal { keys, children })?;
            return Ok(());
        }

        // --- try borrow -------------------------------------------------
        let (new_left, new_right, new_sep): (Node, Node, Vec<u8>) = match (left, right) {
            (
                Node::Leaf {
                    entries: mut le,
                    next: lnext,
                },
                Node::Leaf {
                    entries: mut re,
                    next: rnext,
                },
            ) => {
                let left_small = left_idx == idx;
                if left_small {
                    if re.len() < 2 {
                        return Ok(());
                    }
                    le.push(re.remove(0));
                } else {
                    if le.len() < 2 {
                        return Ok(());
                    }
                    re.insert(0, le.pop().expect("len >= 2"));
                }
                let sep = re[0].0.clone();
                (
                    Node::Leaf {
                        entries: le,
                        next: lnext,
                    },
                    Node::Leaf {
                        entries: re,
                        next: rnext,
                    },
                    sep,
                )
            }
            (
                Node::Internal {
                    keys: mut lk,
                    children: mut lc,
                },
                Node::Internal {
                    keys: mut rk,
                    children: mut rc,
                },
            ) => {
                let left_small = left_idx == idx;
                let new_sep = if left_small {
                    if rc.len() < 3 {
                        return Ok(());
                    }
                    lk.push(sep);
                    lc.push(rc.remove(0));
                    rk.remove(0)
                } else {
                    if lc.len() < 3 {
                        return Ok(());
                    }
                    rk.insert(0, sep);
                    rc.insert(0, lc.pop().expect("len >= 3"));
                    lk.pop().expect("len >= 2")
                };
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                    new_sep,
                )
            }
            _ => return Ok(()),
        };
        if new_left.serialized_size() > PAGE_SIZE || new_right.serialized_size() > PAGE_SIZE {
            return Ok(()); // tolerate under-occupancy
        }
        write_node(&mut self.pool, left_pid, &new_left)?;
        write_node(&mut self.pool, right_pid, &new_right)?;
        let mut keys = keys;
        keys[left_idx] = new_sep;
        write_node(&mut self.pool, pid, &Node::Internal { keys, children })?;
        Ok(())
    }

    /// Walks the whole tree verifying the structure invariants listed in
    /// the module docs. Used by tests and the proptest harness.
    pub fn check_invariants(&mut self) -> Result<()> {
        let root = self.root;
        let mut leaf_count = 0usize;
        self.check_node(root, None, None, &mut leaf_count)?;
        if leaf_count as u64 != self.count {
            return Err(GdmError::Storage(format!(
                "entry count mismatch: walked {leaf_count}, recorded {}",
                self.count
            )));
        }
        // Leaf chain must be globally sorted and cover all entries.
        let mut pid = self.leftmost_leaf(root)?;
        let mut prev: Option<Vec<u8>> = None;
        let mut chained = 0usize;
        loop {
            let node = read_node(&mut self.pool, pid)?;
            let Node::Leaf { entries, next } = node else {
                return Err(GdmError::Storage("leaf chain reached internal node".into()));
            };
            for (k, _) in &entries {
                if let Some(p) = &prev {
                    if p >= k {
                        return Err(GdmError::Storage("leaf chain out of order".into()));
                    }
                }
                prev = Some(k.clone());
                chained += 1;
            }
            match next {
                Some(n) => pid = n,
                None => break,
            }
        }
        if chained != leaf_count {
            return Err(GdmError::Storage(format!(
                "leaf chain covers {chained} entries, tree has {leaf_count}"
            )));
        }
        Ok(())
    }

    fn check_node(
        &mut self,
        pid: PageId,
        lower: Option<&[u8]>,
        upper: Option<&[u8]>,
        leaf_count: &mut usize,
    ) -> Result<()> {
        let node = read_node(&mut self.pool, pid)?;
        if node.serialized_size() > PAGE_SIZE {
            return Err(GdmError::Storage("node exceeds page size".into()));
        }
        match node {
            Node::Leaf { entries, .. } => {
                for window in entries.windows(2) {
                    if window[0].0 >= window[1].0 {
                        return Err(GdmError::Storage("leaf keys not sorted".into()));
                    }
                }
                for (k, _) in &entries {
                    if lower.is_some_and(|lo| k.as_slice() < lo) {
                        return Err(GdmError::Storage("leaf key below lower bound".into()));
                    }
                    if upper.is_some_and(|hi| k.as_slice() >= hi) {
                        return Err(GdmError::Storage("leaf key above upper bound".into()));
                    }
                }
                *leaf_count += entries.len();
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err(GdmError::Storage("internal arity mismatch".into()));
                }
                for window in keys.windows(2) {
                    if window[0] >= window[1] {
                        return Err(GdmError::Storage("internal keys not sorted".into()));
                    }
                }
                for (i, &child) in children.iter().enumerate() {
                    let lo = if i == 0 {
                        lower
                    } else {
                        Some(keys[i - 1].as_slice())
                    };
                    let hi = if i == keys.len() {
                        upper
                    } else {
                        Some(keys[i].as_slice())
                    };
                    self.check_node(child, lo, hi, leaf_count)?;
                }
            }
        }
        Ok(())
    }

    fn leftmost_leaf(&mut self, mut pid: PageId) -> Result<PageId> {
        loop {
            match read_node(&mut self.pool, pid)? {
                Node::Leaf { .. } => return Ok(pid),
                Node::Internal { children, .. } => pid = children[0],
            }
        }
    }

    /// Descends to the leaf that would contain `key`.
    fn find_leaf(&mut self, key: &[u8]) -> Result<PageId> {
        let mut pid = self.root;
        loop {
            match read_node(&mut self.pool, pid)? {
                Node::Leaf { .. } => return Ok(pid),
                Node::Internal { keys, children } => {
                    pid = children[child_index(&keys, key)];
                }
            }
        }
    }

    /// All pairs whose key starts with `prefix` (delegates to the range
    /// scanner).
    pub fn prefix(&mut self, pfx: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match prefix_end(pfx) {
            Some(end) => self.scan_range(pfx, Some(&end)),
            None => self.scan_range(pfx, None),
        }
    }
}

impl KvStore for DiskBTree {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let leaf = self.find_leaf(key)?;
        match read_node(&mut self.pool, leaf)? {
            Node::Leaf { entries, .. } => Ok(entries
                .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                .ok()
                .map(|i| entries[i].1.clone())),
            _ => unreachable!("find_leaf returns a leaf"),
        }
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        Self::validate_entry(key, value)?;
        let outcome = self.insert_rec(self.root, key, value)?;
        if let Some((sep, right)) = outcome.split {
            let new_root = self.pool.allocate_page()?;
            let node = Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            write_node(&mut self.pool, new_root, &node)?;
            self.root = new_root;
        }
        if outcome.old.is_none() {
            self.count += 1;
        }
        self.write_meta()?;
        Ok(outcome.old)
    }

    fn delete(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let removed = self.delete_rec(self.root, key)?;
        if removed.is_some() {
            self.count -= 1;
            // Collapse a root with a single child.
            loop {
                match read_node(&mut self.pool, self.root)? {
                    Node::Internal { children, .. } if children.len() == 1 => {
                        let old_root = self.root;
                        self.root = children[0];
                        self.pool.free_page(old_root);
                    }
                    _ => break,
                }
            }
            self.write_meta()?;
        }
        Ok(removed)
    }

    fn scan_range(&mut self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut pid = self.find_leaf(start)?;
        loop {
            let node = read_node(&mut self.pool, pid)?;
            let Node::Leaf { entries, next } = node else {
                unreachable!("leaf chain")
            };
            for (k, v) in entries {
                if k.as_slice() < start {
                    continue;
                }
                if let Some(e) = end {
                    if k.as_slice() >= e {
                        return Ok(out);
                    }
                }
                out.push((k, v));
            }
            match next {
                Some(n) => pid = n,
                None => return Ok(out),
            }
        }
    }

    fn len(&mut self) -> Result<usize> {
        Ok(self.count as usize)
    }

    fn flush(&mut self) -> Result<()> {
        self.pool.flush()
    }
}

fn read_node(pool: &mut BufferPool, pid: PageId) -> Result<Node> {
    pool.with_page(pid, Node::decode)?
}

fn write_node(pool: &mut BufferPool, pid: PageId, node: &Node) -> Result<()> {
    let bytes = node.encode();
    if bytes.len() > PAGE_SIZE {
        return Err(GdmError::Storage(format!(
            "node of {} bytes exceeds page size",
            bytes.len()
        )));
    }
    pool.update_page(pid, |page| {
        page[..bytes.len()].copy_from_slice(&bytes);
    })
}

/// Index of the child to descend for `key`: first child whose separator
/// is greater than `key`.
fn child_index(keys: &[Vec<u8>], key: &[u8]) -> usize {
    match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
        Ok(i) => i + 1, // equal keys live in the right child
        Err(i) => i,
    }
}

/// Chooses a split index so both halves are non-empty and roughly equal
/// in bytes.
fn split_point(len: usize, sizes: impl Iterator<Item = usize>) -> usize {
    debug_assert!(len >= 2);
    let sizes: Vec<usize> = sizes.collect();
    let total: usize = sizes.iter().sum();
    let mut acc = 0;
    for (i, s) in sizes.iter().enumerate() {
        acc += s;
        if acc * 2 >= total {
            return (i + 1).min(len - 1).max(1);
        }
    }
    len / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> DiskBTree {
        DiskBTree::memory(64)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut t = tree();
        assert_eq!(t.put(b"k1", b"v1").unwrap(), None);
        assert_eq!(t.put(b"k1", b"v2").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(t.get(b"k1").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(t.get(b"nope").unwrap(), None);
        assert_eq!(t.len().unwrap(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn many_inserts_force_splits() {
        let mut t = tree();
        let n = 2000u32;
        for i in 0..n {
            let key = format!("key{i:06}");
            let val = format!("value-{i}-{}", "x".repeat(i as usize % 40));
            t.put(key.as_bytes(), val.as_bytes()).unwrap();
        }
        assert_eq!(t.len().unwrap(), n as usize);
        t.check_invariants().unwrap();
        for i in (0..n).step_by(97) {
            let key = format!("key{i:06}");
            assert!(t.get(key.as_bytes()).unwrap().is_some(), "{key}");
        }
    }

    #[test]
    fn scan_matches_insertion_order() {
        let mut t = tree();
        let mut keys: Vec<String> = (0..500)
            .map(|i| format!("{:04}", (i * 7919) % 10000))
            .collect();
        for k in &keys {
            t.put(k.as_bytes(), b"v").unwrap();
        }
        keys.sort();
        keys.dedup();
        let scanned: Vec<String> = t
            .scan_range(b"", None)
            .unwrap()
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(scanned, keys);
    }

    #[test]
    fn range_scan_bounds() {
        let mut t = tree();
        for i in 0..100u8 {
            t.put(&[b'k', i], &[i]).unwrap();
        }
        let got = t.scan_range(&[b'k', 10], Some(&[b'k', 20])).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, vec![b'k', 10]);
        assert_eq!(got[9].0, vec![b'k', 19]);
    }

    #[test]
    fn deletes_shrink_and_rebalance() {
        let mut t = tree();
        let n = 1200u32;
        for i in 0..n {
            t.put(format!("key{i:05}").as_bytes(), b"some-value-payload")
                .unwrap();
        }
        for i in 0..n {
            if i % 2 == 0 {
                assert!(t.delete(format!("key{i:05}").as_bytes()).unwrap().is_some());
            }
        }
        assert_eq!(t.len().unwrap(), (n / 2) as usize);
        t.check_invariants().unwrap();
        for i in 0..n {
            let got = t.get(format!("key{i:05}").as_bytes()).unwrap();
            assert_eq!(got.is_some(), i % 2 == 1, "i={i}");
        }
        // Delete everything.
        for i in 0..n {
            t.delete(format!("key{i:05}").as_bytes()).unwrap();
        }
        assert_eq!(t.len().unwrap(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn large_values_near_the_limit() {
        let mut t = tree();
        let big = vec![7u8; MAX_VALUE_LEN];
        for i in 0..50u8 {
            t.put(&[b'b', i], &big).unwrap();
        }
        t.check_invariants().unwrap();
        assert_eq!(t.get(&[b'b', 25]).unwrap(), Some(big));
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut t = tree();
        assert!(t.put(&vec![1u8; MAX_KEY_LEN + 1], b"v").is_err());
        assert!(t.put(b"k", &vec![1u8; MAX_VALUE_LEN + 1]).is_err());
        assert!(t.put(b"", b"v").is_err());
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = std::env::temp_dir().join(format!("gdm-btree-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut t = DiskBTree::file(&path, 16).unwrap();
            for i in 0..300u32 {
                t.put(format!("p{i:04}").as_bytes(), format!("{i}").as_bytes())
                    .unwrap();
            }
            t.flush().unwrap();
        }
        {
            let mut t = DiskBTree::file(&path, 16).unwrap();
            assert_eq!(t.len().unwrap(), 300);
            assert_eq!(t.get(b"p0123").unwrap(), Some(b"123".to_vec()));
            t.check_invariants().unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tiny_buffer_pool_still_correct() {
        // With only 3 frames, every operation churns the pool.
        let mut t = DiskBTree::memory(3);
        for i in 0..500u32 {
            t.put(format!("k{i:04}").as_bytes(), b"value").unwrap();
        }
        t.check_invariants().unwrap();
        assert!(t.pool_stats().evictions > 0);
        for i in (0..500).step_by(41) {
            assert!(t.get(format!("k{i:04}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn prefix_scan() {
        let mut t = tree();
        t.put(b"user/1", b"a").unwrap();
        t.put(b"user/2", b"b").unwrap();
        t.put(b"group/1", b"c").unwrap();
        assert_eq!(t.prefix(b"user/").unwrap().len(), 2);
        assert_eq!(t.prefix(b"group/").unwrap().len(), 1);
        assert_eq!(t.prefix(b"nope/").unwrap().len(), 0);
    }
}
