//! Secondary index ablation: hash vs B-tree vs DEX-style bitmap point
//! lookups, B-tree ranges, and bitmap intersection (the DEX idiom).

use criterion::{criterion_group, criterion_main, Criterion};
use gdm_core::Value;
use gdm_storage::{BTreeIndex, BitmapIndex, HashIndex, ValueIndex};
use std::hint::black_box;

const N: u64 = 50_000;

fn fill(index: &mut dyn ValueIndex) {
    for id in 0..N {
        index.insert(&Value::Int((id % 1000) as i64), id);
    }
}

fn bench_indexes(c: &mut Criterion) {
    let mut hash = HashIndex::new();
    let mut btree = BTreeIndex::new();
    let mut bitmap = BitmapIndex::new();
    fill(&mut hash);
    fill(&mut btree);
    fill(&mut bitmap);

    let mut group = c.benchmark_group("point_lookup");
    group.bench_function("hash", |b| {
        b.iter(|| black_box(hash.lookup(&Value::Int(123)).len()))
    });
    group.bench_function("btree", |b| {
        b.iter(|| black_box(btree.lookup(&Value::Int(123)).len()))
    });
    group.bench_function("bitmap", |b| {
        b.iter(|| black_box(bitmap.lookup(&Value::Int(123)).len()))
    });
    group.finish();

    let mut group = c.benchmark_group("range_lookup");
    group.bench_function("btree_100_values", |b| {
        b.iter(|| {
            black_box(
                btree
                    .range(Some(&Value::Int(100)), Some(&Value::Int(199)))
                    .expect("btree ranges")
                    .len(),
            )
        })
    });
    group.finish();

    let mut group = c.benchmark_group("bitmap_intersection");
    let a = bitmap.bitmap_for(&Value::Int(1)).expect("present").clone();
    let b2 = bitmap.bitmap_for(&Value::Int(2)).expect("present").clone();
    group.bench_function("and_50k_universe", |b| {
        b.iter(|| black_box(a.intersection(&b2).len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_indexes
}
criterion_main!(benches);
