//! The G-Store placement ablation: BFS over insertion-order placement
//! vs BFS-clustered placement. Wall time is reported by Criterion;
//! page-fault counts (the honest external-memory metric) print once to
//! stderr — clustering should cut both.

use criterion::{criterion_group, criterion_main, Criterion};
use gdm_bench::{ba_graph, load_into_engine};
use gdm_core::{GraphView, NodeId, PropertyMap};
use gdm_engines::gstore::GStoreEngine;
use gdm_engines::GraphEngine;
use gdm_graphs::PropertyGraph;
use std::hint::black_box;

fn build(tag: &str, recluster: bool) -> (GStoreEngine, Vec<NodeId>) {
    let dir = std::env::temp_dir().join(format!("gdm-bench-place-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("dir");
    let mut engine = GStoreEngine::open(&dir).expect("engine");
    // Community-free BA graph in *shuffled* insertion order, so
    // insertion-order placement scatters neighborhoods across pages.
    let ba = ba_graph(3000, 3, 77);
    let mut pg = PropertyGraph::new();
    let ids: Vec<NodeId> = (0..ba.node_count())
        .map(|_| pg.add_node("v", PropertyMap::new()))
        .collect();
    let mut edges = Vec::new();
    pg_collect_edges(&ba, &mut edges);
    // Deterministic shuffle.
    let mut shuffled = edges.clone();
    let mut state = 0x12345678u64;
    for i in (1..shuffled.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        shuffled.swap(i, j);
    }
    for (a, b) in shuffled {
        pg.add_edge(ids[a], ids[b], "e", PropertyMap::new())
            .expect("edge");
    }
    let nodes = load_into_engine(&mut engine, &pg).expect("load");
    if recluster {
        engine.recluster().expect("recluster");
    }
    engine.persist().expect("persist");
    (engine, nodes)
}

fn pg_collect_edges(g: &gdm_graphs::SimpleGraph, out: &mut Vec<(usize, usize)>) {
    g.visit_nodes(&mut |n| {
        g.visit_out_edges(n, &mut |e| {
            out.push((e.from.raw() as usize, e.to.raw() as usize));
        });
    });
}

fn full_bfs(engine: &GStoreEngine, start: NodeId) -> usize {
    gdm_algo::traverse::bfs_order(engine, start, gdm_core::Direction::Both).len()
}

fn bench_placement(c: &mut Criterion) {
    let (mut scattered, nodes_s) = build("scattered", false);
    let (mut clustered, nodes_c) = build("clustered", true);

    // One-shot page-fault report.
    scattered.reset_pool_stats();
    let visited = full_bfs(&scattered, nodes_s[0]);
    let faults_scattered = scattered.pool_stats().misses;
    clustered.reset_pool_stats();
    let visited_c = full_bfs(&clustered, nodes_c[0]);
    let faults_clustered = clustered.pool_stats().misses;
    eprintln!(
        "placement: BFS visited {visited}/{visited_c} nodes; page faults \
         scattered={faults_scattered} clustered={faults_clustered}"
    );

    let mut group = c.benchmark_group("gstore_bfs");
    group.bench_function("insertion_order", |b| {
        b.iter(|| black_box(full_bfs(&scattered, nodes_s[0])))
    });
    group.bench_function("bfs_clustered", |b| {
        b.iter(|| black_box(full_bfs(&clustered, nodes_c[0])))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_placement
}
criterion_main!(benches);
