//! Storage substrate benches: the on-disk B-tree vs the in-memory
//! store, and the effect of buffer-pool sizing (external-memory
//! behaviour is about fault counts; small pools make it visible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdm_storage::{BufferPool, DiskBTree, KvStore, MemKv};
use std::hint::black_box;

const N: u32 = 5_000;

fn keys() -> Vec<Vec<u8>> {
    (0..N)
        .map(|i| format!("key{:08}", i.wrapping_mul(2654435761) % N).into_bytes())
        .collect()
}

fn bench_storage(c: &mut Criterion) {
    let keys = keys();

    let mut group = c.benchmark_group("kv_insert_5k");
    group.bench_function("memkv", |b| {
        b.iter(|| {
            let mut kv = MemKv::new();
            for k in &keys {
                kv.put(k, b"value-payload").expect("put");
            }
            black_box(kv.len().expect("len"))
        })
    });
    group.bench_function("disk_btree_mem_backend", |b| {
        b.iter(|| {
            let mut kv = DiskBTree::memory(256);
            for k in &keys {
                kv.put(k, b"value-payload").expect("put");
            }
            black_box(kv.len().expect("len"))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("kv_point_lookup");
    let mut mem = MemKv::new();
    for k in &keys {
        mem.put(k, b"value-payload").expect("put");
    }
    group.bench_function("memkv", |b| {
        b.iter(|| {
            for k in keys.iter().step_by(37) {
                black_box(mem.get(k).expect("get"));
            }
        })
    });
    for pool in [16usize, 256] {
        let mut tree = DiskBTree::new(BufferPool::memory(pool)).expect("tree");
        for k in &keys {
            tree.put(k, b"value-payload").expect("put");
        }
        group.bench_function(BenchmarkId::new("disk_btree_pool", pool), |b| {
            b.iter(|| {
                for k in keys.iter().step_by(37) {
                    black_box(tree.get(k).expect("get"));
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kv_range_scan");
    let mut tree = DiskBTree::memory(256);
    for k in &keys {
        tree.put(k, b"value-payload").expect("put");
    }
    group.bench_function("disk_btree_full_scan", |b| {
        b.iter(|| black_box(tree.scan_range(b"", None).expect("scan").len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_storage
}
criterion_main!(benches);
