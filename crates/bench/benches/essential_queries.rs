//! Essential graph queries across the nine engine emulations — the
//! performance companion the paper's related work (Dominguez-Sal et
//! al. [11]) ran against real 2012 systems. Engines that do not
//! support a query are skipped, mirroring Table VII.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdm_bench::{load_into_engine, social_graph, SocialParams};
use gdm_core::NodeId;
use gdm_engines::{make_engine, EngineKind, GraphEngine, SummaryFunc};
use std::hint::black_box;

struct Fixture {
    kind: EngineKind,
    engine: Box<dyn GraphEngine>,
    nodes: Vec<NodeId>,
}

fn fixtures(people: usize) -> Vec<Fixture> {
    let graph = social_graph(SocialParams {
        people,
        communities: 8,
        intra_edges: 6,
        inter_edges: 2,
        seed: 42,
    });
    let base = std::env::temp_dir().join(format!("gdm-bench-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    EngineKind::all()
        .into_iter()
        .map(|kind| {
            let dir = base.join(kind.label().to_lowercase().replace('-', "_"));
            std::fs::create_dir_all(&dir).expect("temp dir");
            let mut engine = make_engine(kind, &dir).expect("engine");
            let nodes = load_into_engine(engine.as_mut(), &graph).expect("load");
            Fixture {
                kind,
                engine,
                nodes,
            }
        })
        .collect()
}

fn bench_essential(c: &mut Criterion) {
    let fixtures = fixtures(600);

    let mut group = c.benchmark_group("adjacency");
    for f in &fixtures {
        group.bench_function(BenchmarkId::from_parameter(f.kind.label()), |b| {
            b.iter(|| {
                for i in 0..32 {
                    let a = f.nodes[i * 7 % f.nodes.len()];
                    let bn = f.nodes[(i * 13 + 5) % f.nodes.len()];
                    black_box(f.engine.adjacent(a, bn).expect("supported everywhere"));
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("k_neighborhood_k2");
    for f in &fixtures {
        if f.engine.k_neighborhood(f.nodes[0], 2).is_err() {
            continue; // Table VII blank
        }
        group.bench_function(BenchmarkId::from_parameter(f.kind.label()), |b| {
            b.iter(|| {
                let n = f.nodes[17];
                black_box(f.engine.k_neighborhood(n, 2).expect("supported"));
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("shortest_path");
    for f in &fixtures {
        if f.engine.shortest_path(f.nodes[0], f.nodes[1]).is_err() {
            continue;
        }
        group.bench_function(BenchmarkId::from_parameter(f.kind.label()), |b| {
            b.iter(|| {
                black_box(
                    f.engine
                        .shortest_path(f.nodes[3], f.nodes[f.nodes.len() - 4])
                        .expect("supported"),
                );
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("summarization_order");
    for f in &fixtures {
        group.bench_function(BenchmarkId::from_parameter(f.kind.label()), |b| {
            b.iter(|| black_box(f.engine.summarize(SummaryFunc::Order).expect("supported")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_essential
}
criterion_main!(benches);
