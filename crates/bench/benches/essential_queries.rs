//! Essential graph queries across the nine engine emulations — the
//! performance companion the paper's related work (Dominguez-Sal et
//! al. [11]) ran against real 2012 systems. Engines that do not
//! support a query are skipped, mirroring Table VII.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdm_algo::pattern::{Pattern, PatternNode};
use gdm_bench::{load_into_engine, social_graph, SocialParams};
use gdm_core::{Direction, NodeId};
use gdm_engines::{make_engine, AnalysisFunc, EngineKind, GraphEngine, SummaryFunc};
use std::hint::black_box;

struct Fixture {
    kind: EngineKind,
    engine: Box<dyn GraphEngine>,
    nodes: Vec<NodeId>,
}

fn fixtures(people: usize) -> Vec<Fixture> {
    let graph = social_graph(SocialParams {
        people,
        communities: 8,
        intra_edges: 6,
        inter_edges: 2,
        seed: 42,
    });
    let base = std::env::temp_dir().join(format!("gdm-bench-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    EngineKind::all()
        .into_iter()
        .map(|kind| {
            let dir = base.join(kind.label().to_lowercase().replace('-', "_"));
            std::fs::create_dir_all(&dir).expect("temp dir");
            let mut engine = make_engine(kind, &dir).expect("engine");
            let nodes = load_into_engine(engine.as_mut(), &graph).expect("load");
            Fixture {
                kind,
                engine,
                nodes,
            }
        })
        .collect()
}

fn bench_essential(c: &mut Criterion) {
    let fixtures = fixtures(600);

    let mut group = c.benchmark_group("adjacency");
    for f in &fixtures {
        group.bench_function(BenchmarkId::from_parameter(f.kind.label()), |b| {
            b.iter(|| {
                for i in 0..32 {
                    let a = f.nodes[i * 7 % f.nodes.len()];
                    let bn = f.nodes[(i * 13 + 5) % f.nodes.len()];
                    black_box(f.engine.adjacent(a, bn).expect("supported everywhere"));
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("k_neighborhood_k2");
    for f in &fixtures {
        if f.engine.k_neighborhood(f.nodes[0], 2).is_err() {
            continue; // Table VII blank
        }
        group.bench_function(BenchmarkId::from_parameter(f.kind.label()), |b| {
            b.iter(|| {
                let n = f.nodes[17];
                black_box(f.engine.k_neighborhood(n, 2).expect("supported"));
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("shortest_path");
    for f in &fixtures {
        if f.engine.shortest_path(f.nodes[0], f.nodes[1]).is_err() {
            continue;
        }
        group.bench_function(BenchmarkId::from_parameter(f.kind.label()), |b| {
            b.iter(|| {
                black_box(
                    f.engine
                        .shortest_path(f.nodes[3], f.nodes[f.nodes.len() - 4])
                        .expect("supported"),
                );
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("summarization_order");
    for f in &fixtures {
        group.bench_function(BenchmarkId::from_parameter(f.kind.label()), |b| {
            b.iter(|| black_box(f.engine.summarize(SummaryFunc::Order).expect("supported")))
        });
    }
    group.finish();
}

/// Live vs frozen vs frozen+parallel on one representative engine:
/// the CSR snapshot fast path whose numbers `perf_report` records in
/// `BENCH_essential.json`.
fn bench_frozen(c: &mut Criterion) {
    let fixtures = fixtures(600);
    let f = fixtures
        .iter()
        .find(|f| f.kind == EngineKind::Neo4j)
        .expect("neo4j fixture");
    let fz = f.engine.snapshot().expect("snapshot");
    let threads = gdm_algo::default_threads().clamp(2, 8);

    let mut group = c.benchmark_group("snapshot_build");
    group.bench_function("freeze", |b| {
        b.iter(|| black_box(f.engine.snapshot().expect("snapshot")))
    });
    group.finish();

    let (a, z) = (f.nodes[3], f.nodes[f.nodes.len() - 4]);
    let mut group = c.benchmark_group("bfs_shortest_path");
    group.bench_function("live", |b| {
        b.iter(|| black_box(f.engine.shortest_path(a, z).expect("supported")))
    });
    group.bench_function("frozen", |b| b.iter(|| black_box(fz.frozen_distance(a, z))));
    group.finish();

    let mut group = c.benchmark_group("diameter");
    group.sample_size(10);
    group.bench_function("live", |b| {
        b.iter(|| {
            black_box(
                f.engine
                    .summarize(SummaryFunc::Diameter)
                    .expect("supported"),
            )
        })
    });
    group.bench_function("frozen_seq", |b| {
        b.iter(|| black_box(gdm_algo::par_diameter(&fz, Direction::Both, 1)))
    });
    group.bench_function("frozen_par", |b| {
        b.iter(|| black_box(gdm_algo::par_diameter(&fz, Direction::Both, threads)))
    });
    group.finish();

    let mut group = c.benchmark_group("connected_components");
    if let Some(live) = fixtures
        .iter()
        .find(|f| f.engine.analyze(AnalysisFunc::ConnectedComponents).is_ok())
    {
        group.bench_function(BenchmarkId::new("live", live.kind.label()), |b| {
            b.iter(|| {
                black_box(
                    live.engine
                        .analyze(AnalysisFunc::ConnectedComponents)
                        .expect("supported"),
                )
            })
        });
    }
    group.bench_function("frozen_seq", |b| {
        b.iter(|| black_box(gdm_algo::par_connected_components(&fz, 1).len()))
    });
    group.bench_function("frozen_par", |b| {
        b.iter(|| black_box(gdm_algo::par_connected_components(&fz, threads).len()))
    });
    group.finish();

    let mut pattern = Pattern::new();
    let x = pattern.node(PatternNode::var("x").with_label("person"));
    let y = pattern.node(PatternNode::var("y").with_label("person"));
    let z = pattern.node(PatternNode::var("z").with_label("person"));
    pattern.edge(x, y, Some("knows")).expect("vars exist");
    pattern.edge(y, z, Some("knows")).expect("vars exist");
    // Pattern matching is compared on the one engine that executes it
    // live, against that engine's own snapshot, so all three rows
    // answer the same question on the same data.
    let mut group = c.benchmark_group("pattern_two_hop");
    group.sample_size(10);
    if let Some(live) = fixtures
        .iter()
        .find(|f| f.engine.pattern_match(&pattern).is_ok())
    {
        let pfz = live.engine.snapshot().expect("snapshot");
        group.bench_function(BenchmarkId::new("live", live.kind.label()), |b| {
            b.iter(|| black_box(live.engine.pattern_match(&pattern).expect("supported")))
        });
        group.bench_function("frozen_seq", |b| {
            b.iter(|| black_box(gdm_algo::pattern::match_pattern(&pfz, &pattern).len()))
        });
        group.bench_function("frozen_par", |b| {
            b.iter(|| black_box(gdm_algo::par_match_pattern(&pfz, &pattern, threads).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_essential, bench_frozen
}
criterion_main!(benches);
