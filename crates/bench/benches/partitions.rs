//! The InfiniteGraph distribution ablation: remote hops (the
//! simulated network cost) during a full traversal, by partition count
//! and placement strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdm_bench::{social_graph, SocialParams};
use gdm_core::{Direction, GraphView};
use gdm_graphs::partitioned::{PartitionedGraph, Strategy};
use std::hint::black_box;

fn traverse_all(pg: &PartitionedGraph) -> u64 {
    pg.reset_hops();
    let mut nodes = Vec::new();
    pg.visit_nodes(&mut |n| nodes.push(n));
    for n in nodes {
        pg.visit_edges_dir(n, Direction::Outgoing, &mut |_| {});
    }
    pg.remote_hops()
}

fn bench_partitions(c: &mut Criterion) {
    let graph = social_graph(SocialParams {
        people: 2000,
        communities: 16,
        intra_edges: 6,
        inter_edges: 1,
        seed: 31,
    });

    // One-shot hop report across the sweep.
    for parts in [2u32, 4, 8, 16] {
        for (name, strategy) in [("hash", Strategy::Hash), ("bfs", Strategy::BfsCluster)] {
            let pg = PartitionedGraph::new(graph.clone(), parts, strategy);
            let hops = traverse_all(&pg);
            eprintln!(
                "partitions={parts} strategy={name}: remote_hops={hops} edge_cut={}",
                pg.edge_cut()
            );
        }
    }

    let mut group = c.benchmark_group("partitioned_traversal");
    for parts in [4u32, 16] {
        let hash = PartitionedGraph::new(graph.clone(), parts, Strategy::Hash);
        let bfs = PartitionedGraph::new(graph.clone(), parts, Strategy::BfsCluster);
        group.bench_function(BenchmarkId::new("hash", parts), |b| {
            b.iter(|| black_box(traverse_all(&hash)))
        });
        group.bench_function(BenchmarkId::new("bfs_cluster", parts), |b| {
            b.iter(|| black_box(traverse_all(&bfs)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partitions
}
criterion_main!(benches);
