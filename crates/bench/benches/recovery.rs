//! Recovery-throughput benches for the durability subsystem.
//!
//! Two questions the numbers answer: how fast does [`DurableKv`] replay
//! a raw log tail (records applied per second), and how much of that
//! work does a checkpoint save (snapshot load + short tail vs full
//! replay of the same history)? Both run against the in-memory
//! fault-injection backend so the bench measures the recovery code
//! path, not disk latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdm_storage::{KvStore, MemKv};
use gdm_wal::{DurableKv, FaultFs, SyncPolicy, WalFs, WalOptions};
use std::hint::black_box;

fn opts() -> WalOptions {
    WalOptions {
        segment_bytes: 256 * 1024,
        sync: SyncPolicy::Always,
        ..WalOptions::default()
    }
}

/// Runs `n` autocommitted puts (plus a committed multi-op transaction
/// every 64 writes, so replay exercises the txn-buffering path) and
/// returns the resulting log directory image as (name, bytes) pairs.
fn build_log_image(n: usize, checkpoint_at: Option<usize>) -> Vec<(String, Vec<u8>)> {
    let fs = FaultFs::new();
    let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
    for i in 0..n {
        let key = format!("key{i:08}");
        if i % 64 == 0 {
            kv.begin().unwrap();
            kv.put(key.as_bytes(), b"txn-payload").unwrap();
            kv.put(format!("{key}/extra").as_bytes(), b"x").unwrap();
            kv.commit().unwrap();
        } else {
            kv.put(key.as_bytes(), b"autocommit-payload").unwrap();
        }
        if checkpoint_at == Some(i) {
            kv.checkpoint().unwrap();
        }
    }
    kv.flush().unwrap();
    drop(kv);
    let mut files: Vec<(String, Vec<u8>)> = fs
        .list()
        .unwrap()
        .into_iter()
        .map(|name| {
            let bytes = fs.snapshot(&name).unwrap();
            (name, bytes)
        })
        .collect();
    files.sort();
    files
}

fn restore(files: &[(String, Vec<u8>)]) -> FaultFs {
    let fs = FaultFs::new();
    for (name, bytes) in files {
        fs.install(name, bytes);
    }
    fs
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery_replay");
    for &n in &[1_000usize, 5_000] {
        let image = build_log_image(n, None);
        group.bench_function(BenchmarkId::new("full_replay", n), |b| {
            b.iter(|| {
                let fs = restore(&image);
                let (kv, report) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
                assert_eq!(report.discarded_txns, 0);
                black_box((kv.end_lsn(), report.records_applied))
            })
        });
    }
    group.finish();

    // Same 5k-record history, with and without a checkpoint taken at
    // 90% of the way through: recovery should only replay the tail.
    let n = 5_000usize;
    let full = build_log_image(n, None);
    let ckpt = build_log_image(n, Some(n * 9 / 10));
    let mut group = c.benchmark_group("wal_recovery_checkpoint");
    group.bench_function("no_checkpoint", |b| {
        b.iter(|| {
            let fs = restore(&full);
            let (kv, report) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
            assert!(!report.used_checkpoint);
            black_box((kv.end_lsn(), report.records_applied))
        })
    });
    group.bench_function("checkpoint_at_90pct", |b| {
        b.iter(|| {
            let fs = restore(&ckpt);
            let (kv, report) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
            assert!(report.used_checkpoint);
            black_box((kv.end_lsn(), report.records_applied))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
