//! Pattern matching: VF2-style search vs the brute-force oracle, and
//! scaling with graph size — the paper notes subgraph isomorphism is
//! NP-complete; candidate-driven search is what makes it usable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdm_algo::pattern::{match_pattern, match_pattern_brute, Pattern, PatternNode};
use gdm_bench::{social_graph, SocialParams};
use std::hint::black_box;

fn triangle_pattern() -> Pattern {
    let mut p = Pattern::new();
    let a = p.node(PatternNode::var("a"));
    let b = p.node(PatternNode::var("b"));
    let c = p.node(PatternNode::var("c"));
    p.edge(a, b, Some("knows")).expect("valid");
    p.edge(b, c, Some("knows")).expect("valid");
    p.edge(c, a, Some("knows")).expect("valid");
    p
}

fn bench_pattern(c: &mut Criterion) {
    let small = social_graph(SocialParams {
        people: 40,
        communities: 4,
        intra_edges: 3,
        inter_edges: 1,
        seed: 5,
    });
    let mut group = c.benchmark_group("triangle_40_nodes");
    group.bench_function("vf2", |b| {
        b.iter(|| black_box(match_pattern(&small, &triangle_pattern()).len()))
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| black_box(match_pattern_brute(&small, &triangle_pattern()).len()))
    });
    group.finish();

    let mut group = c.benchmark_group("vf2_scaling");
    for people in [100usize, 400, 1600] {
        let g = social_graph(SocialParams {
            people,
            communities: people / 25,
            intra_edges: 4,
            inter_edges: 1,
            seed: 5,
        });
        group.bench_function(BenchmarkId::from_parameter(people), |b| {
            b.iter(|| black_box(match_pattern(&g, &triangle_pattern()).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_pattern
}
criterion_main!(benches);
