//! Regular path queries: product-automaton reachability (polynomial,
//! walk semantics) vs budgeted simple-path enumeration (NP-complete in
//! general — the paper's Section IV.2 complexity note, measurable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdm_algo::regular::{regular_path_exists, regular_simple_paths, LabelRegex};
use gdm_bench::er_graph;
use gdm_core::NodeId;
use std::hint::black_box;

fn bench_regular(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_reachability");
    for n in [100usize, 400, 1600] {
        let g = er_graph(n, n * 4, 21);
        let regex = LabelRegex::compile("e e e+").expect("valid");
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                black_box(regular_path_exists(
                    &g,
                    NodeId(0),
                    NodeId((n - 1) as u64),
                    &regex,
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("simple_path_enumeration");
    let g = er_graph(60, 150, 21);
    for budget in [1_000usize, 10_000, 100_000] {
        let regex = LabelRegex::compile("e e e e?").expect("valid");
        group.bench_function(BenchmarkId::from_parameter(budget), |b| {
            b.iter(|| {
                // Budget exhaustion is an expected outcome at small
                // budgets; both outcomes are the measured work.
                black_box(regular_simple_paths(&g, NodeId(0), NodeId(59), &regex, budget).ok())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_regular
}
criterion_main!(benches);
