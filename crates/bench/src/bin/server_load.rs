//! Multi-tenant server load generator.
//!
//! Stands up the `gdm-server` TCP front over a frozen social-graph
//! snapshot and drives it with two tenants of unequal weight — `alpha`
//! (weight 3, cheap interactive lookups) and `beta` (weight 1, a
//! greedy two-hop join it cannot afford) — then reports per-tenant
//! completed queries, throttles, and client-side p50/p95 latency,
//! plus the server's own `STATS` counters.
//!
//! ```text
//! cargo run --release --bin server_load              # ~2s load run
//! cargo run --release --bin server_load -- --smoke   # CI: one scripted
//!     session (query, query again, STATS, shutdown); exits non-zero
//!     unless the repeat hit the plan cache and the drain completed
//! cargo run --release --bin server_load -- --refresh-smoke   # CI: live
//!     refresh proof — query, mutate, incremental re-freeze via
//!     ServerHandle::refresh_with, and the very next query of the same
//!     text must see the new row on a freshly planned (epoch-evicted)
//!     plan, with STATS reporting the refresh
//! cargo run --release --bin server_load -- --chaos-smoke   # CI: route
//!     two retrying tenants through the seed-driven fault-injecting
//!     proxy (garbage, truncation, disconnects, partial writes,
//!     slowloris, delays); every tenant must finish its query budget
//!     with exact rows, every fault category must fire at least once,
//!     and the final STATS must show the faults absorbed as counters
//! cargo run --release --bin server_load -- --smoke --workers 2   # pin
//!     the morsel executor's worker pool (any mode); STATS must echo it
//! ```

use gdm_bench::workload::{load_into_engine, social_graph, SocialParams};
use gdm_engines::{make_engine, EngineKind};
use gdm_govern::RetryPolicy;
use gdm_server::chaos::{ChaosConfig, ChaosProxy};
use gdm_server::protocol::Response;
use gdm_server::{serve, Client, RetryingClient, ServerConfig, TenantConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LIGHT_QUERY: &str = "MATCH (p:person) WHERE p.name = 'person42' RETURN p.age";
const GREEDY_QUERY: &str =
    "MATCH (a:person)-[:knows]->(b:person)-[:knows]->(c:person) RETURN c.community";

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

fn fail(msg: &str) -> ! {
    eprintln!("server_load: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let refresh_smoke = args.iter().any(|a| a == "--refresh-smoke");
    let chaos_smoke = args.iter().any(|a| a == "--chaos-smoke");
    let quick = smoke || refresh_smoke || chaos_smoke;
    let workers: usize = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--workers wants a number"))
        })
        .unwrap_or(0);

    let dir = std::env::temp_dir().join(format!("gdm-server-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut db = make_engine(EngineKind::Neo4j, &dir).expect("engine");
    let graph = social_graph(SocialParams {
        people: if quick { 150 } else { 500 },
        communities: 5,
        intra_edges: 6,
        inter_edges: 2,
        seed: 2012,
    });
    load_into_engine(db.as_mut(), &graph).expect("load");

    // Supply sized just below the greedy join's natural demand (≈285k
    // credits/s at 500 people, measured in release), so beta finishes
    // some queries but visibly throttles, while alpha's 1-credit
    // lookups never come close to their weighted share.
    let mut config = ServerConfig {
        slots: 3,
        queue: 8,
        refill_interval: Duration::from_millis(10),
        refill_credits: if quick { 50_000 } else { 2_000 },
        executor_workers: workers,
        ..ServerConfig::default()
    };
    let mut alpha = TenantConfig::new("alpha", 3);
    alpha.burst_cap = 50_000;
    let mut beta = TenantConfig::new("beta", 1);
    beta.burst_cap = 100_000;
    config.tenants.push(alpha);
    config.tenants.push(beta);
    if chaos_smoke {
        // Chaos probes the transport, not fairness: generous budgets,
        // and a tight frame deadline so slowloris reaping is fast.
        config.frame_deadline = Duration::from_millis(500);
        config.refill_credits = 500_000;
        for t in &mut config.tenants {
            t.burst_cap = 1_000_000;
        }
    }

    let handle = serve(db.serving_snapshot().expect("snapshot"), config).expect("serve");
    let addr = handle.addr();

    if chaos_smoke {
        const CHAOS_SEED: u64 = 0x5EED_C4A0;
        const QUERIES_PER_TENANT: u64 = 30;
        let proxy =
            ChaosProxy::start(addr, ChaosConfig::full_menu(CHAOS_SEED)).expect("chaos proxy");
        let proxy_addr = proxy.addr();

        let tenants: Vec<_> = ["alpha", "beta"]
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let name = name.to_string();
                std::thread::spawn(move || {
                    let mut c = RetryingClient::new(proxy_addr, &name, None)
                        .expect("client")
                        .with_policy(RetryPolicy {
                            attempts: 30,
                            base_backoff_ms: 5,
                            max_backoff_ms: 200,
                            jitter: true,
                        })
                        .with_jitter_seed(i as u64);
                    for q in 0..QUERIES_PER_TENANT {
                        // Cycle sessions so the proxy's fault schedule
                        // keeps advancing even on a clean connection.
                        if q > 0 && q % 5 == 0 {
                            c.goodbye();
                        }
                        match c.query(LIGHT_QUERY).expect("query exhausted retries") {
                            Response::Rows(r) if r.rows.len() == 1 => {}
                            other => fail(&format!("expected 1 row, got {other:?}")),
                        }
                    }
                    c.goodbye();
                    (c.connects(), c.retries())
                })
            })
            .collect();

        let mut connects = 0u64;
        let mut retries = 0u64;
        for t in tenants {
            let (co, re) = t.join().expect("chaos tenant panicked");
            connects += co;
            retries += re;
        }

        let faults = proxy.stats();
        println!(
            "chaos proxy (seed {CHAOS_SEED:#x}): {} connections — \
             {} clean, {} garbage, {} truncated, {} disconnects, \
             {} partial writes, {} slowloris, {} delays",
            faults.connections,
            faults.passthrough,
            faults.garbage_frames,
            faults.truncated_frames,
            faults.disconnects,
            faults.partial_writes,
            faults.slowloris,
            faults.delays
        );
        for (n, what) in [
            (faults.passthrough, "clean connections"),
            (faults.garbage_frames, "garbage frames"),
            (faults.truncated_frames, "truncated frames"),
            (faults.disconnects, "disconnects"),
            (faults.partial_writes, "partial writes"),
            (faults.slowloris, "slowloris drips"),
            (faults.delays, "delay faults"),
        ] {
            if n == 0 {
                fail(&format!("chaos schedule never injected {what}"));
            }
        }

        let stats = handle.stats();
        println!(
            "server under chaos: {} frame errors, {} sessions reaped, \
             {} queries poisoned; clients: {connects} connects, {retries} retries",
            stats.frame_errors, stats.sessions_reaped, stats.queries_poisoned
        );
        if stats.frame_errors == 0 {
            fail("garbage/truncated frames must be counted in STATS");
        }
        if stats.sessions_reaped == 0 {
            fail("slowloris connections must be reaped");
        }
        if stats.queries_poisoned != 0 {
            fail("chaos must never poison a query");
        }
        if connects <= 2 {
            fail("chaos must force reconnects");
        }

        proxy.stop();
        handle.shutdown();
        println!("server_load: chaos smoke OK");
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }

    if refresh_smoke {
        // Scripted live-refresh proof: the CI evidence that a mutation
        // plus an *incremental* re-freeze reaches the very next query
        // over the wire — fresh rows, a freshly planned (epoch-evicted)
        // plan, and refresh counters in STATS.
        const COUNT_QUERY: &str = "MATCH (p:person) RETURN p.name";
        let mut c = Client::connect(addr).expect("connect");
        c.hello("alpha", None).expect("hello");
        let before = match c.query(COUNT_QUERY).expect("query") {
            Response::Rows(r) => r.rows.len(),
            other => fail(&format!("expected Rows, got {other:?}")),
        };
        match c.query(COUNT_QUERY).expect("query again") {
            Response::Rows(r) if r.cached_plan => {}
            other => fail(&format!("expected a plan-cache hit, got {other:?}")),
        }

        let epoch0 = handle.stats().snapshot_epoch;
        db.create_node(Some("person"), gdm_core::props! { "name" => "newcomer" })
            .expect("create node");
        let t0 = Instant::now();
        let epoch1 = handle
            .refresh_with(|prev| db.refreeze(prev))
            .expect("refresh");
        println!(
            "refreshed serving snapshot: epoch {epoch0} -> {epoch1} in {:?}",
            t0.elapsed()
        );
        if epoch1 <= epoch0 {
            fail("refresh must advance the serving epoch");
        }

        match c.query(COUNT_QUERY).expect("query after refresh") {
            Response::Rows(r) => {
                if r.rows.len() != before + 1 {
                    fail(&format!(
                        "refresh must expose the new node: expected {} rows, got {}",
                        before + 1,
                        r.rows.len()
                    ));
                }
                if r.cached_plan {
                    fail("the epoch-stale plan must be evicted, not served");
                }
            }
            other => fail(&format!("expected Rows, got {other:?}")),
        }
        let stats = c.stats().expect("stats");
        if stats.snapshot_epoch != epoch1 {
            fail("STATS must report the refreshed epoch");
        }
        if stats.refreshes != 1 || stats.last_refresh_us == 0 {
            fail("STATS must count the refresh and its latency");
        }
        if stats.plan_cache.epoch_evictions == 0 {
            fail("STATS must show the stale plan's epoch eviction");
        }
        match c.shutdown().expect("shutdown") {
            Response::Bye => {}
            other => fail(&format!("expected Bye, got {other:?}")),
        }
        handle.join();
        println!("server_load: refresh smoke OK");
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }

    if smoke {
        // One scripted session, asserting every step: this is the CI
        // proof that a fresh build serves queries over the wire, hits
        // the plan cache, reports stats, and drains cleanly.
        let mut c = Client::connect(addr).expect("connect");
        match c.hello("alpha", None).expect("hello") {
            Response::Welcome(w) => println!("connected to {} as {}", w.engine, w.tenant),
            other => fail(&format!("expected Welcome, got {other:?}")),
        }
        match c.query(LIGHT_QUERY).expect("query") {
            Response::Rows(r) => {
                if r.rows.len() != 1 {
                    fail(&format!("expected 1 row, got {}", r.rows.len()));
                }
                if r.cached_plan {
                    fail("first run cannot be a plan-cache hit");
                }
            }
            other => fail(&format!("expected Rows, got {other:?}")),
        }
        match c.query(LIGHT_QUERY).expect("query again") {
            Response::Rows(r) if r.cached_plan => {}
            other => fail(&format!("expected a plan-cache hit, got {other:?}")),
        }
        let stats = c.stats().expect("stats");
        println!(
            "plan cache: {} hits / {} misses / {} entries; executor workers: {}",
            stats.plan_cache.hits,
            stats.plan_cache.misses,
            stats.plan_cache.entries,
            stats.executor_workers
        );
        if stats.plan_cache.hits == 0 {
            fail("STATS must show a plan-cache hit rate > 0");
        }
        if stats.executor_workers == 0 {
            fail("STATS must report the executor worker-pool size");
        }
        if workers > 0 && stats.executor_workers != workers as u64 {
            fail(&format!(
                "STATS must echo the --workers override: expected {workers}, got {}",
                stats.executor_workers
            ));
        }
        match c.shutdown().expect("shutdown") {
            Response::Bye => {}
            other => fail(&format!("expected Bye, got {other:?}")),
        }
        handle.join();
        println!("server_load: smoke OK");
        return;
    }

    // Load run: one paced alpha session, two saturating beta sessions.
    const WINDOW: Duration = Duration::from_secs(2);
    let stop = Arc::new(AtomicBool::new(false));
    let beta_threads: Vec<_> = (0..2)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.hello("beta", None).expect("hello");
                let (mut done, mut throttled) = (0u64, 0u64);
                let mut latencies = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    match c.query(GREEDY_QUERY).expect("beta query") {
                        Response::Rows(_) => {
                            done += 1;
                            latencies.push(t0.elapsed());
                        }
                        Response::Interrupted(_) => {
                            throttled += 1;
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Response::Overloaded(_) => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        other => fail(&format!("unexpected beta reply {other:?}")),
                    }
                }
                c.goodbye().ok();
                (done, throttled, latencies)
            })
        })
        .collect();

    let mut alpha_client = Client::connect(addr).expect("connect");
    alpha_client.hello("alpha", None).expect("hello");
    let (mut alpha_done, mut alpha_lat) = (0u64, Vec::new());
    let start = Instant::now();
    while start.elapsed() < WINDOW {
        let t0 = Instant::now();
        match alpha_client.query(LIGHT_QUERY).expect("alpha query") {
            Response::Rows(_) => {
                alpha_done += 1;
                alpha_lat.push(t0.elapsed());
            }
            other => fail(&format!("alpha must never be throttled, got {other:?}")),
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);

    let (mut beta_done, mut beta_throttled, mut beta_lat) = (0u64, 0u64, Vec::new());
    for t in beta_threads {
        let (d, th, lat) = t.join().expect("beta thread");
        beta_done += d;
        beta_throttled += th;
        beta_lat.extend(lat);
    }
    let stats = alpha_client.stats().expect("stats");
    alpha_client.goodbye().ok();
    handle.shutdown();

    alpha_lat.sort();
    beta_lat.sort();
    let secs = WINDOW.as_secs_f64();
    println!("multi-tenant server load ({}s window):", secs);
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "tenant", "weight", "queries/s", "throttled", "p50", "p95"
    );
    println!(
        "{:<8} {:>8} {:>12.1} {:>12} {:>12?} {:>12?}",
        "alpha",
        3,
        alpha_done as f64 / secs,
        0,
        percentile(&alpha_lat, 50),
        percentile(&alpha_lat, 95),
    );
    println!(
        "{:<8} {:>8} {:>12.1} {:>12} {:>12?} {:>12?}",
        "beta",
        1,
        beta_done as f64 / secs,
        beta_throttled,
        percentile(&beta_lat, 50),
        percentile(&beta_lat, 95),
    );
    println!("\nserver STATS:");
    for t in &stats.tenants {
        println!(
            "  {:<8} credits={} charged={} throttled={} shed={}",
            t.name, t.credits, t.charged, t.throttled, t.shed
        );
    }
    println!(
        "  plan cache: {} hits / {} misses / {} entries; queue sheds: {}; executor workers: {}",
        stats.plan_cache.hits,
        stats.plan_cache.misses,
        stats.plan_cache.entries,
        stats.queue_shed,
        stats.executor_workers
    );

    let _ = std::fs::remove_dir_all(&dir);
}
