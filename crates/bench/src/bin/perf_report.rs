//! A compact cross-engine performance report in the style of the
//! paper's related work (Dominguez-Sal et al. \[11\], who benchmarked
//! DEX, Neo4j, HypergraphDB, and Jena on typical graph operations and
//! found "DEX and Neo4j were the most efficient implementations").
//!
//! Loads one social-network workload into all nine emulations and
//! reports microseconds per operation for each essential query the
//! engine supports (`-` = unsupported, mirroring Table VII).
//!
//! ```sh
//! cargo run --release -p gdm-bench --bin perf_report [-- --people 2000]
//! ```

use gdm_bench::{load_into_engine, social_graph, SocialParams};
use gdm_core::NodeId;
use gdm_engines::{make_engine, EngineKind, SummaryFunc};
use std::hint::black_box;
use std::time::Instant;

fn time_us(mut op: impl FnMut(), iters: u32) -> f64 {
    // Warm up once, then measure.
    op();
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

fn main() {
    let mut people = 1000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--people" {
            people = args.next().and_then(|v| v.parse().ok()).unwrap_or(people);
        }
    }

    let graph = social_graph(SocialParams {
        people,
        communities: 10,
        intra_edges: 6,
        inter_edges: 2,
        seed: 2012,
    });
    println!(
        "workload: {people} people, {} knows-edges (community-structured)\n",
        gdm_core::GraphView::edge_count(&graph)
    );

    let base = std::env::temp_dir().join(format!("gdm-perf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    println!(
        "{:<14} {:>10} {:>12} {:>14} {:>14} {:>14}",
        "engine", "load ms", "adjacency us", "k-neigh(2) us", "shortest us", "order us"
    );
    for kind in EngineKind::all() {
        let dir = base.join(kind.label().to_lowercase().replace('-', "_"));
        std::fs::create_dir_all(&dir).expect("dir");
        let mut engine = make_engine(kind, &dir).expect("engine");
        let start = Instant::now();
        let nodes = load_into_engine(engine.as_mut(), &graph).expect("load");
        let load_ms = start.elapsed().as_secs_f64() * 1e3;

        let pair = |i: usize| -> (NodeId, NodeId) {
            (
                nodes[i * 7 % nodes.len()],
                nodes[(i * 13 + 5) % nodes.len()],
            )
        };
        let adjacency = {
            let e = engine.as_ref();
            let mut i = 0usize;
            time_us(
                move || {
                    let (a, b) = pair(i);
                    i = i.wrapping_add(1);
                    black_box(e.adjacent(a, b).expect("universal"));
                },
                2000,
            )
        };
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) if x >= 1000.0 => format!("{:.0}", x),
            Some(x) => format!("{x:.1}"),
            None => "-".to_owned(),
        };
        let k_neigh = engine.k_neighborhood(nodes[17], 2).ok().map(|_| {
            let e = engine.as_ref();
            time_us(
                || {
                    black_box(e.k_neighborhood(nodes[17], 2).expect("supported"));
                },
                200,
            )
        });
        let shortest = engine
            .shortest_path(nodes[0], nodes[nodes.len() - 1])
            .ok()
            .map(|_| {
                let e = engine.as_ref();
                time_us(
                    || {
                        black_box(
                            e.shortest_path(nodes[3], nodes[nodes.len() - 4])
                                .expect("supported"),
                        );
                    },
                    50,
                )
            });
        let order = {
            let e = engine.as_ref();
            time_us(
                || {
                    black_box(e.summarize(SummaryFunc::Order).expect("universal"));
                },
                500,
            )
        };
        println!(
            "{:<14} {:>10.1} {:>12.2} {:>14} {:>14} {:>14.1}",
            kind.label(),
            load_ms,
            adjacency,
            fmt_opt(k_neigh),
            fmt_opt(shortest),
            order
        );
    }
    let _ = std::fs::remove_dir_all(&base);
    println!(
        "\n'-' = the 2012 system did not answer this essential query (Table VII);\n\
         compare with [11]'s finding that DEX and Neo4j were the most efficient."
    );
}
