//! A compact cross-engine performance report in the style of the
//! paper's related work (Dominguez-Sal et al. \[11\], who benchmarked
//! DEX, Neo4j, HypergraphDB, and Jena on typical graph operations and
//! found "DEX and Neo4j were the most efficient implementations").
//!
//! Loads one social-network workload into all nine emulations and
//! reports microseconds per operation for each essential query the
//! engine supports (`-` = unsupported, mirroring Table VII).
//!
//! ```sh
//! cargo run --release -p gdm-bench --bin perf_report [-- --people 2000]
//! ```
//!
//! After the per-engine table it measures the CSR snapshot fast path
//! (live vs frozen vs frozen+parallel) and writes the numbers to a
//! machine-readable `BENCH_essential.json` (path configurable with
//! `--json PATH`). `--smoke` shrinks the workload and iteration
//! counts for a quick CI sanity run. `--workers N` pins the morsel
//! executor's worker pool (default: the machine's available
//! parallelism) so parallel rows are reproducible across machines.
//!
//! `--deadline-ms N` switches to the **governor gauntlet** instead of
//! benchmarking: an expensive governed pattern match runs on every
//! engine under an `N`-millisecond deadline and the report shows, per
//! engine, whether the query completed or was interrupted (with the
//! governor's structured reason). The process exits 0 only if every
//! engine either finishes or is cleanly interrupted — any hang, panic,
//! or non-governor error is a failure. CI uses this as the
//! responsiveness smoke test.

use gdm_algo::pattern::{Pattern, PatternNode};
use gdm_bench::{load_into_engine, social_graph, SocialParams};
use gdm_core::{Direction, NodeId, Value};
use gdm_engines::{make_engine, AnalysisFunc, EngineKind, GovernedOp, SummaryFunc};
use gdm_govern::{ExecutionGuard, Limits};
use gdm_query::{BinOp, Expr, Projection, SelectQuery};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn time_us(mut op: impl FnMut(), iters: u32) -> f64 {
    // Warm up once, then measure.
    op();
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// One live/frozen/parallel comparison row, in ops/s (`None` = the
/// live engine does not execute this query).
struct Row {
    name: &'static str,
    live_ops_s: Option<f64>,
    frozen_ops_s: f64,
    parallel_ops_s: Option<f64>,
}

impl Row {
    /// Worker threads the row's widest measurement used: the machine's
    /// available parallelism when the query has a parallel path, 1 for
    /// serial-only rows — so a stored report says whether a number was
    /// taken single-threaded without consulting the machine it ran on.
    fn parallelism(&self, threads: usize) -> usize {
        if self.parallel_ops_s.is_some() {
            threads
        } else {
            1
        }
    }
}

fn ops_s(us: f64) -> f64 {
    1e6 / us
}

fn json_num(v: Option<f64>) -> String {
    v.map_or("null".to_owned(), |x| format!("{x:.1}"))
}

/// Run the governor gauntlet: load the workload into every engine and
/// fire an expensive governed pattern match under `deadline`. Returns
/// the number of engines that neither completed nor were cleanly
/// interrupted (the process exit code).
fn governor_gauntlet(
    graph: &gdm_graphs::PropertyGraph,
    base: &std::path::Path,
    deadline: Duration,
) -> i32 {
    // A 3-hop unconstrained chain: no label constraints, because some
    // engine models drop labels on load — so the match stays expensive
    // on every engine regardless of its data model.
    let mut pattern = Pattern::new();
    let a = pattern.node(PatternNode::var("a"));
    let b = pattern.node(PatternNode::var("b"));
    let c = pattern.node(PatternNode::var("c"));
    let d = pattern.node(PatternNode::var("d"));
    pattern.edge(a, b, None).expect("vars exist");
    pattern.edge(b, c, None).expect("vars exist");
    pattern.edge(c, d, None).expect("vars exist");

    println!(
        "governor gauntlet: 3-hop pattern match, {} ms deadline\n",
        deadline.as_millis()
    );
    println!("{:<14} {:>10} outcome", "engine", "wall ms");
    let mut failures = 0;
    for kind in EngineKind::all() {
        let dir = base.join(kind.label().to_lowercase().replace('-', "_"));
        std::fs::create_dir_all(&dir).expect("dir");
        let mut engine = make_engine(kind, &dir).expect("engine");
        load_into_engine(engine.as_mut(), graph).expect("load");

        let guard = ExecutionGuard::new(Limits::none().with_deadline(deadline));
        let start = Instant::now();
        let outcome = engine.run_governed(GovernedOp::PatternMatch(&pattern), &guard);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let desc = match outcome {
            Ok(answer) => format!("completed: {answer:?}"),
            Err(e) if e.is_interrupted() => format!("interrupted: {e}"),
            Err(e) => {
                failures += 1;
                format!("FAILED (non-governor error): {e}")
            }
        };
        println!("{:<14} {:>10.1} {desc}", kind.label(), wall_ms);
    }
    if failures == 0 {
        println!("\nall engines completed or were cleanly interrupted");
    } else {
        println!("\n{failures} engine(s) failed with non-governor errors");
    }
    failures
}

fn main() {
    let mut people = 1000usize;
    let mut smoke = false;
    let mut json_path = "BENCH_essential.json".to_owned();
    let mut deadline_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--people" => {
                people = args.next().and_then(|v| v.parse().ok()).unwrap_or(people);
            }
            "--smoke" => {
                smoke = true;
                people = 200;
            }
            "--json" => {
                if let Some(p) = args.next() {
                    json_path = p;
                }
            }
            "--deadline-ms" => {
                deadline_ms = args.next().and_then(|v| v.parse().ok());
            }
            "--workers" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    gdm_algo::set_executor_workers(n);
                }
            }
            _ => {}
        }
    }

    let graph = social_graph(SocialParams {
        people,
        communities: 10,
        intra_edges: 6,
        inter_edges: 2,
        seed: 2012,
    });
    println!(
        "workload: {people} people, {} knows-edges (community-structured)\n",
        gdm_core::GraphView::edge_count(&graph)
    );

    let base = std::env::temp_dir().join(format!("gdm-perf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Governor mode: no benchmarking, just the responsiveness check.
    if let Some(ms) = deadline_ms {
        let failures = governor_gauntlet(&graph, &base, Duration::from_millis(ms));
        let _ = std::fs::remove_dir_all(&base);
        std::process::exit(failures);
    }

    println!(
        "{:<14} {:>10} {:>12} {:>14} {:>14} {:>14}",
        "engine", "load ms", "adjacency us", "k-neigh(2) us", "shortest us", "order us"
    );
    for kind in EngineKind::all() {
        let dir = base.join(kind.label().to_lowercase().replace('-', "_"));
        std::fs::create_dir_all(&dir).expect("dir");
        let mut engine = make_engine(kind, &dir).expect("engine");
        let start = Instant::now();
        let nodes = load_into_engine(engine.as_mut(), &graph).expect("load");
        let load_ms = start.elapsed().as_secs_f64() * 1e3;

        let pair = |i: usize| -> (NodeId, NodeId) {
            (
                nodes[i * 7 % nodes.len()],
                nodes[(i * 13 + 5) % nodes.len()],
            )
        };
        let adjacency = {
            let e = engine.as_ref();
            let mut i = 0usize;
            time_us(
                move || {
                    let (a, b) = pair(i);
                    i = i.wrapping_add(1);
                    black_box(e.adjacent(a, b).expect("universal"));
                },
                2000,
            )
        };
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) if x >= 1000.0 => format!("{:.0}", x),
            Some(x) => format!("{x:.1}"),
            None => "-".to_owned(),
        };
        let k_neigh = engine.k_neighborhood(nodes[17], 2).ok().map(|_| {
            let e = engine.as_ref();
            time_us(
                || {
                    black_box(e.k_neighborhood(nodes[17], 2).expect("supported"));
                },
                200,
            )
        });
        let shortest = engine
            .shortest_path(nodes[0], nodes[nodes.len() - 1])
            .ok()
            .map(|_| {
                let e = engine.as_ref();
                time_us(
                    || {
                        black_box(
                            e.shortest_path(nodes[3], nodes[nodes.len() - 4])
                                .expect("supported"),
                        );
                    },
                    50,
                )
            });
        let order = {
            let e = engine.as_ref();
            time_us(
                || {
                    black_box(e.summarize(SummaryFunc::Order).expect("universal"));
                },
                500,
            )
        };
        println!(
            "{:<14} {:>10.1} {:>12.2} {:>14} {:>14} {:>14.1}",
            kind.label(),
            load_ms,
            adjacency,
            fmt_opt(k_neigh),
            fmt_opt(shortest),
            order
        );
    }
    println!(
        "\n'-' = the 2012 system did not answer this essential query (Table VII);\n\
         compare with [11]'s finding that DEX and Neo4j were the most efficient."
    );

    // ---- CSR snapshot fast path: live vs frozen vs frozen+parallel ----
    let threads = gdm_algo::executor_workers();
    let (diam_iters, comp_iters) = if smoke { (2u32, 5u32) } else { (3, 20) };

    // Neo4j is the representative live engine for the structural
    // queries; AllegroGraph is the one engine that executes pattern
    // matching live. Each is compared against its own snapshot.
    let dir = base.join("fastpath_neo4j");
    std::fs::create_dir_all(&dir).expect("dir");
    let mut engine = make_engine(EngineKind::Neo4j, &dir).expect("engine");
    let nodes = load_into_engine(engine.as_mut(), &graph).expect("load");
    let fz = engine.snapshot().expect("snapshot");
    let e = engine.as_ref();

    let mut rows: Vec<Row> = Vec::new();

    let pair = |i: usize| -> (NodeId, NodeId) {
        (
            nodes[i * 7 % nodes.len()],
            nodes[(i * 13 + 5) % nodes.len()],
        )
    };
    let mut i = 0usize;
    let live_adj = time_us(
        || {
            let (a, b) = pair(i);
            i = i.wrapping_add(1);
            black_box(e.adjacent(a, b).expect("universal"));
        },
        2000,
    );
    let mut i = 0usize;
    let frozen_adj = time_us(
        || {
            let (a, b) = pair(i);
            i = i.wrapping_add(1);
            black_box(gdm_algo::nodes_adjacent(&fz, a, b));
        },
        2000,
    );
    rows.push(Row {
        name: "adjacency",
        live_ops_s: Some(ops_s(live_adj)),
        frozen_ops_s: ops_s(frozen_adj),
        parallel_ops_s: None,
    });

    let (sa, sb) = (nodes[3], nodes[nodes.len() - 4]);
    let live_bfs = time_us(
        || {
            black_box(e.shortest_path(sa, sb).expect("supported"));
        },
        200,
    );
    let frozen_bfs = time_us(
        || {
            black_box(fz.frozen_distance(sa, sb));
        },
        200,
    );
    rows.push(Row {
        name: "bfs_distance",
        live_ops_s: Some(ops_s(live_bfs)),
        frozen_ops_s: ops_s(frozen_bfs),
        parallel_ops_s: None,
    });

    let live_diam = time_us(
        || {
            black_box(e.summarize(SummaryFunc::Diameter).expect("supported"));
        },
        diam_iters,
    );
    let frozen_diam = time_us(
        || {
            black_box(gdm_algo::par_diameter(&fz, Direction::Both, 1));
        },
        diam_iters,
    );
    let par_diam = time_us(
        || {
            black_box(gdm_algo::par_diameter(&fz, Direction::Both, threads));
        },
        diam_iters,
    );
    rows.push(Row {
        name: "diameter",
        live_ops_s: Some(ops_s(live_diam)),
        frozen_ops_s: ops_s(frozen_diam),
        parallel_ops_s: Some(ops_s(par_diam)),
    });

    let mut pattern = Pattern::new();
    let x = pattern.node(PatternNode::var("x"));
    let y = pattern.node(PatternNode::var("y"));
    let z = pattern.node(PatternNode::var("z"));
    pattern.edge(x, y, Some("knows")).expect("vars exist");
    pattern.edge(y, z, Some("knows")).expect("vars exist");
    {
        let dir = base.join("fastpath_allegro");
        std::fs::create_dir_all(&dir).expect("dir");
        let mut pe = make_engine(EngineKind::Allegro, &dir).expect("engine");
        load_into_engine(pe.as_mut(), &graph).expect("load");
        let pfz = pe.snapshot().expect("snapshot");
        let pe = pe.as_ref();
        let live_comp = time_us(
            || {
                black_box(
                    pe.analyze(AnalysisFunc::ConnectedComponents)
                        .expect("supported"),
                );
            },
            comp_iters,
        );
        let frozen_comp = time_us(
            || {
                black_box(gdm_algo::par_connected_components(&pfz, 1).len());
            },
            comp_iters,
        );
        let par_comp = time_us(
            || {
                black_box(gdm_algo::par_connected_components(&pfz, threads).len());
            },
            comp_iters,
        );
        rows.push(Row {
            name: "components",
            live_ops_s: Some(ops_s(live_comp)),
            frozen_ops_s: ops_s(frozen_comp),
            parallel_ops_s: Some(ops_s(par_comp)),
        });
        let live_pat = time_us(
            || {
                black_box(pe.pattern_match(&pattern).expect("supported"));
            },
            comp_iters,
        );
        // The frozen cell measures the execution path a snapshot query
        // actually takes — the planner routes frozen inputs to the
        // vectorized batch executor. (The unplanned reference matcher
        // stays the correctness oracle in tests; its per-row HashMap
        // bindings are not the serving path.)
        let frozen_pat = time_us(
            || {
                black_box(gdm_algo::match_pattern_vectorized_auto(&pfz, &pattern).len());
            },
            comp_iters,
        );
        let par_pat = time_us(
            || {
                black_box(gdm_algo::par_match_pattern(&pfz, &pattern, threads).len());
            },
            comp_iters,
        );
        rows.push(Row {
            name: "pattern",
            live_ops_s: Some(ops_s(live_pat)),
            frozen_ops_s: ops_s(frozen_pat),
            parallel_ops_s: Some(ops_s(par_pat)),
        });
        // The CSR snapshot exists to be the *fast* layout. A frozen
        // pattern match slower than the live engine means the matcher
        // fell back to per-node generic dispatch (the PR-6 regression:
        // 40 ops/s frozen vs 342 live) — fail loudly rather than
        // letting the report normalize it.
        assert!(
            frozen_pat <= live_pat,
            "frozen pattern match ({:.1} ops/s) regressed below live ({:.1} ops/s)",
            ops_s(frozen_pat),
            ops_s(live_pat),
        );

        // Same pattern through the cost-based planner: selectivity
        // ordering plus the flat MatchTable (no per-match hash maps).
        let planned_pat = time_us(
            || {
                black_box(gdm_algo::planned::match_pattern_auto(&pfz, &pattern).len());
            },
            comp_iters,
        );
        rows.push(Row {
            name: "pattern_planned",
            live_ops_s: None,
            frozen_ops_s: ops_s(planned_pat),
            parallel_ops_s: None,
        });

        // The batch-at-a-time executor: dense-id selection vectors
        // straight off the CSR arrays, no per-node view dispatch. This
        // is what the planner actually runs on frozen snapshots.
        let vectorized_pat = time_us(
            || {
                black_box(gdm_algo::match_pattern_vectorized_auto(&pfz, &pattern).len());
            },
            comp_iters,
        );
        rows.push(Row {
            name: "pattern_vectorized",
            live_ops_s: None,
            frozen_ops_s: ops_s(vectorized_pat),
            parallel_ops_s: None,
        });

        // The morsel-driven parallel executor over the same vectorized
        // pipeline (DESIGN.md §15). The frozen cell repeats the
        // sequential vectorized baseline so the row is self-contained:
        // parallel/frozen within this row is the executor's speedup.
        let par_vec_pat = time_us(
            || {
                black_box(gdm_algo::match_pattern_par_vectorized(&pfz, &pattern, threads).len());
            },
            comp_iters,
        );
        rows.push(Row {
            name: "pattern_par_vectorized",
            live_ops_s: None,
            frozen_ops_s: ops_s(vectorized_pat),
            parallel_ops_s: Some(ops_s(par_vec_pat)),
        });
        // Byte-identical results are the executor's contract on every
        // machine; the speedup claim only holds where there are cores
        // to speed up on, so it gates on real parallelism.
        assert!(
            gdm_algo::match_pattern_par_vectorized(&pfz, &pattern, threads)
                == gdm_algo::match_pattern_vectorized_auto(&pfz, &pattern),
            "parallel vectorized match must be byte-identical to sequential vectorized",
        );
        if gdm_algo::default_threads() > 1 && threads > 1 {
            assert!(
                par_vec_pat <= vectorized_pat,
                "morsel-driven parallel pattern match ({:.1} ops/s) regressed below the \
                 sequential vectorized executor ({:.1} ops/s) on a {}-core machine",
                ops_s(par_vec_pat),
                ops_s(vectorized_pat),
                gdm_algo::default_threads(),
            );
        }

        // Planning + EXPLAIN rendering throughput for the equivalent
        // algebra query (pushdown of `x.community = 3`).
        let mut q = SelectQuery {
            pattern: pattern.clone(),
            ..SelectQuery::default()
        };
        q.filter = Some(Expr::bin(
            BinOp::Eq,
            Expr::Prop("x".to_owned(), "community".to_owned()),
            Expr::Lit(Value::from(3)),
        ));
        q.projections = vec![Projection::Expr {
            name: "x.name".to_owned(),
            expr: Expr::Prop("x".to_owned(), "name".to_owned()),
        }];
        let explain_us = time_us(
            || {
                let planned = gdm_query::plan_select(&pfz, &q).expect("plans");
                black_box(planned.explain.render());
            },
            if smoke { 200 } else { 2000 },
        );
        rows.push(Row {
            name: "pattern_explain",
            live_ops_s: None,
            frozen_ops_s: ops_s(explain_us),
            parallel_ops_s: None,
        });
    }
    // ---- snapshot refresh: O(changes) re-freeze vs full rebuild -------
    //
    // The serving story (DESIGN.md §14): a mutation batch of ≤1% of the
    // graph should re-freeze in time proportional to the batch, not the
    // graph. Measured on the workload graph directly — a PropertyGraph
    // plus DeltaTracker is exactly what every engine's refreeze() path
    // reduces to.
    let refresh_iters = if smoke { 20u32 } else { 50 };
    let (refresh_full_us, refresh_inc_us, refresh_changes) = {
        let mut live = graph.clone();
        let mut ids: Vec<NodeId> = Vec::new();
        gdm_core::GraphView::visit_nodes(&live, &mut |n| ids.push(n));
        let prev = gdm_algo::FrozenGraph::freeze_attributed(&live);
        let mut tracker = gdm_core::DeltaTracker::new();
        tracker.reset(prev.epoch());
        // ≤1% mutation batch on the 1k workload: 6 property updates
        // plus 2 new edges touch at most 10 distinct rows.
        for i in 0..6 {
            let n = ids[(i * 37 + 11) % ids.len()];
            live.set_node_property(n, "age", Value::from(200 + i as i64))
                .expect("node exists");
            tracker.touch_node(n.raw());
        }
        for i in 0..2usize {
            let a = ids[(i * 53 + 7) % ids.len()];
            let b = ids[(i * 71 + 29) % ids.len()];
            live.add_edge(a, b, "knows", gdm_core::PropertyMap::new())
                .expect("endpoints exist");
            tracker.touch_node(a.raw());
            tracker.touch_node(b.raw());
        }
        let delta = tracker.peek();
        let changes = delta.change_count();
        let full_us = time_us(
            || {
                black_box(gdm_algo::FrozenGraph::freeze_attributed(&live).len());
            },
            refresh_iters,
        );
        let inc_us = time_us(
            || {
                black_box(gdm_algo::incremental_refreeze(&live, &prev, delta).len());
            },
            refresh_iters,
        );
        (full_us, inc_us, changes)
    };
    rows.push(Row {
        name: "refresh_full_rebuild",
        live_ops_s: None,
        frozen_ops_s: ops_s(refresh_full_us),
        parallel_ops_s: None,
    });
    rows.push(Row {
        name: "refresh_incremental",
        live_ops_s: None,
        frozen_ops_s: ops_s(refresh_inc_us),
        parallel_ops_s: None,
    });
    let refresh_speedup = refresh_full_us / refresh_inc_us;
    // The acceptance bar: on the full (non-smoke) workload a ≤1%
    // mutation batch must re-freeze at least 10× faster than a full
    // rebuild, or the incremental path has silently degraded to
    // O(graph). The smoke workload is too small for a stable ratio.
    if !smoke {
        assert!(
            refresh_speedup >= 10.0,
            "incremental re-freeze ({:.1} ops/s) is only {refresh_speedup:.1}x the full \
             rebuild ({:.1} ops/s); the O(changes) bar is 10x",
            ops_s(refresh_inc_us),
            ops_s(refresh_full_us),
        );
    }
    println!(
        "\nsnapshot refresh after a {refresh_changes}-change batch (≤1% of {people} nodes): \
         incremental {:.0} ops/s vs full {:.0} ops/s ({refresh_speedup:.1}x)",
        ops_s(refresh_inc_us),
        ops_s(refresh_full_us),
    );

    println!("\nCSR snapshot fast path ({} threads available):", threads);
    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "query", "live ops/s", "frozen ops/s", "parallel ops/s"
    );
    for r in &rows {
        println!(
            "{:<14} {:>14} {:>14} {:>14}",
            r.name,
            json_num(r.live_ops_s),
            json_num(Some(r.frozen_ops_s)),
            json_num(r.parallel_ops_s),
        );
    }

    // ---- machine-readable report --------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"workload\": {{ \"people\": {people}, \"edges\": {}, \"seed\": 2012 }},\n",
        gdm_core::GraphView::edge_count(&graph)
    ));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        gdm_algo::default_threads()
    ));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"snapshot_refresh\": {{ \"changes\": {refresh_changes}, \
         \"incremental_ops_s\": {:.1}, \"full_rebuild_ops_s\": {:.1}, \
         \"speedup\": {refresh_speedup:.1} }},\n",
        ops_s(refresh_inc_us),
        ops_s(refresh_full_us),
    ));
    let single_core_warning = if threads == 1 {
        "WARNING: available_parallelism is 1 on this machine, so parallel rows measure \
         thread-pool overhead with no speedup — compare frozen columns only. "
    } else {
        ""
    };
    json.push_str(&format!(
        "  \"note\": \"{single_core_warning}ops/s, higher is better; parallel rows use all \
         available threads, so speedup over frozen is bounded by the machine's core count\",\n",
    ));
    json.push_str("  \"queries\": {\n");
    for (idx, r) in rows.iter().enumerate() {
        let comma = if idx + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {{ \"live_ops_s\": {}, \"frozen_ops_s\": {}, \"parallel_ops_s\": {}, \"parallelism\": {} }}{comma}\n",
            r.name,
            json_num(r.live_ops_s),
            json_num(Some(r.frozen_ops_s)),
            json_num(r.parallel_ops_s),
            r.parallelism(threads),
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&json_path, json).expect("write json report");
    println!("\nwrote {json_path}");

    let _ = std::fs::remove_dir_all(&base);
}
