//! Regenerates the paper's Tables I–VIII.
//!
//! ```text
//! tables                      # verify engines, print all eight tables
//! tables --table 7            # one table
//! tables --format md          # text (default), md, or csv
//! tables --out results/       # additionally write one file per table
//! tables --skip-verify        # render without the probe pass
//! ```

use gdm_compare::probes;
use gdm_compare::tables::{build_table_unverified, TableId};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut table: Option<TableId> = None;
    let mut format = "text".to_owned();
    let mut out: Option<PathBuf> = None;
    let mut skip_verify = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--table" | "-t" => {
                let Some(v) = args.next().and_then(|v| TableId::parse(&v)) else {
                    eprintln!("--table expects 1..8");
                    return ExitCode::FAILURE;
                };
                table = Some(v);
            }
            "--format" | "-f" => {
                format = args.next().unwrap_or_default();
                if !["text", "md", "csv"].contains(&format.as_str()) {
                    eprintln!("--format expects text, md, or csv");
                    return ExitCode::FAILURE;
                }
            }
            "--out" | "-o" => {
                out = args.next().map(PathBuf::from);
            }
            "--skip-verify" => skip_verify = true,
            "--help" | "-h" => {
                println!(
                    "tables [--table N] [--format text|md|csv] [--out DIR] [--skip-verify]\n\
                     Regenerates the comparison tables of 'A Comparison of Current Graph\n\
                     Database Models' by probing the nine engine emulations."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if !skip_verify {
        let workdir = std::env::temp_dir().join(format!("gdm-tables-{}", std::process::id()));
        if let Err(e) = std::fs::create_dir_all(&workdir) {
            eprintln!("cannot create workdir: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("verifying the nine engine emulations against the paper's cells ...");
        match probes::classify(&workdir) {
            Ok((databases, stores)) => {
                eprintln!(
                    "graph databases (transaction engine probed): {}",
                    databases.join(", ")
                );
                eprintln!("graph stores: {}\n", stores.join(", "));
            }
            Err(e) => {
                eprintln!("classification failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        match probes::verify_all(&workdir) {
            Ok(mismatches) if mismatches.is_empty() => {
                eprintln!("all probes match the recorded cells.\n");
            }
            Ok(mismatches) => {
                eprintln!("MISMATCHES:\n{}", mismatches.join("\n"));
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("verification failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        let _ = std::fs::remove_dir_all(&workdir);
    }

    let ids: Vec<TableId> = match table {
        Some(t) => vec![t],
        None => TableId::all().to_vec(),
    };
    for id in ids {
        let matrix = build_table_unverified(id);
        let rendered = match format.as_str() {
            "md" => matrix.to_markdown(),
            "csv" => matrix.to_csv(),
            _ => matrix.render(),
        };
        println!("{rendered}");
        if let Some(dir) = &out {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {dir:?}: {e}");
                return ExitCode::FAILURE;
            }
            let ext = match format.as_str() {
                "md" => "md",
                "csv" => "csv",
                _ => "txt",
            };
            let path = dir.join(format!("table_{id:?}.{ext}").to_lowercase());
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("cannot write {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
