//! Synthetic workload generators.
//!
//! The paper motivates graph databases with social networks, biology,
//! Web mining, and the Semantic Web; the generators here produce those
//! shapes deterministically (seeded `StdRng`) so benches and examples
//! are reproducible:
//!
//! * [`er_graph`] — Erdős–Rényi G(n, m): the uniform baseline,
//! * [`ba_graph`] — Barabási–Albert preferential attachment: the
//!   heavy-tailed degree shape real networks show,
//! * [`social_graph`] — community-structured attributed people graph
//!   (the SNA workload),
//! * [`rdf_family_tree`] — generational triples for the reasoning and
//!   SPARQL workloads.

use gdm_core::{GraphView, NodeId, PropertyMap, Result, Value};
use gdm_engines::GraphEngine;
use gdm_graphs::rdf::{RdfGraph, Term};
use gdm_graphs::{PropertyGraph, SimpleGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi G(n, m): `n` nodes, `m` uniformly random directed
/// edges (duplicates allowed — multigraph semantics).
pub fn er_graph(n: usize, m: usize, seed: u64) -> SimpleGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = SimpleGraph::directed();
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
    for _ in 0..m {
        let a = nodes[rng.gen_range(0..n)];
        let b = nodes[rng.gen_range(0..n)];
        g.add_labeled_edge(a, b, "e").expect("nodes exist");
    }
    g
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_per_node` existing nodes with probability proportional to degree.
pub fn ba_graph(n: usize, m_per_node: usize, seed: u64) -> SimpleGraph {
    assert!(n > m_per_node && m_per_node >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = SimpleGraph::directed();
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
    // Degree-weighted target pool: every edge endpoint appears once.
    let mut pool: Vec<usize> = (0..=m_per_node).collect();
    for i in 1..=m_per_node.min(n - 1) {
        g.add_labeled_edge(nodes[i], nodes[i - 1], "e")
            .expect("exists");
    }
    for i in (m_per_node + 1)..n {
        for _ in 0..m_per_node {
            let target = pool[rng.gen_range(0..pool.len())];
            if target != i {
                g.add_labeled_edge(nodes[i], nodes[target], "e")
                    .expect("exists");
                pool.push(target);
                pool.push(i);
            }
        }
    }
    g
}

/// Parameters for [`social_graph`].
#[derive(Debug, Clone, Copy)]
pub struct SocialParams {
    /// Number of people.
    pub people: usize,
    /// Number of communities.
    pub communities: usize,
    /// Outgoing `knows` edges per person inside their community.
    pub intra_edges: usize,
    /// Outgoing `knows` edges per person to other communities.
    pub inter_edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialParams {
    fn default() -> Self {
        Self {
            people: 1000,
            communities: 10,
            intra_edges: 8,
            inter_edges: 2,
            seed: 42,
        }
    }
}

/// A community-structured attributed social network: `person` nodes
/// with `name`, `age`, and `community` attributes; `knows` edges
/// weighted by closeness.
pub fn social_graph(params: SocialParams) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut g = PropertyGraph::new();
    let per_community = params.people.div_ceil(params.communities.max(1));
    let nodes: Vec<NodeId> = (0..params.people)
        .map(|i| {
            let community = i / per_community;
            let mut props = PropertyMap::new();
            props.set("name", format!("person{i}"));
            props.set("age", rng.gen_range(18..80) as i64);
            props.set("community", community as i64);
            g.add_node("person", props)
        })
        .collect();
    let community_of = |i: usize| i / per_community;
    for (i, &node) in nodes.iter().enumerate() {
        let c = community_of(i);
        let lo = c * per_community;
        let hi = ((c + 1) * per_community).min(params.people);
        for _ in 0..params.intra_edges {
            let j = rng.gen_range(lo..hi);
            if j != i {
                let mut props = PropertyMap::new();
                props.set("weight", rng.gen_range(0.1..1.0));
                g.add_edge(node, nodes[j], "knows", props).expect("exists");
            }
        }
        for _ in 0..params.inter_edges {
            let j = rng.gen_range(0..params.people);
            if community_of(j) != c {
                let mut props = PropertyMap::new();
                props.set("weight", rng.gen_range(1.0..4.0));
                g.add_edge(node, nodes[j], "knows", props).expect("exists");
            }
        }
    }
    g
}

/// Generational family triples: `gen{g}_p{i} parent gen{g+1}_p{j}`
/// plus `age` literals — the reasoning / SPARQL workload.
pub fn rdf_family_tree(generations: usize, per_generation: usize, seed: u64) -> RdfGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RdfGraph::new();
    let parent = Term::iri("parent");
    let age = Term::iri("age");
    for gen in 0..generations {
        for i in 0..per_generation {
            let person = Term::iri(format!("gen{gen}_p{i}"));
            g.add(
                &person,
                &age,
                &Term::lit((20 + (generations - gen) * 25 + i % 5).to_string()),
            )
            .expect("valid triple");
            if gen + 1 < generations {
                for _ in 0..2 {
                    let child = Term::iri(format!(
                        "gen{}_p{}",
                        gen + 1,
                        rng.gen_range(0..per_generation)
                    ));
                    g.add(&person, &parent, &child).expect("valid triple");
                }
            }
        }
    }
    g
}

/// Loads a property graph into any engine through the facade,
/// adapting to the engine's model (labels and attributes applied only
/// where supported). Returns the engine node id for each source node,
/// indexed positionally.
pub fn load_into_engine(
    engine: &mut dyn GraphEngine,
    graph: &PropertyGraph,
) -> Result<Vec<NodeId>> {
    let mut source_nodes = Vec::new();
    graph.visit_nodes(&mut |n| source_nodes.push(n));
    let mut mapping = Vec::with_capacity(source_nodes.len());
    for &n in &source_nodes {
        let label = graph.node_label_text(n).expect("live node");
        let props = graph.node_properties(n).expect("live node").clone();
        let id = match engine.create_node(Some(label), props.clone()) {
            Ok(id) => id,
            Err(e) if e.is_unsupported() => {
                // Try label without attributes, then fully plain.
                match engine.create_node(Some(label), PropertyMap::new()) {
                    Ok(id) => id,
                    Err(e2) if e2.is_unsupported() => {
                        engine.create_node(None, PropertyMap::new())?
                    }
                    Err(e2) => return Err(e2),
                }
            }
            Err(e) => return Err(e),
        };
        mapping.push(id);
    }
    let index_of = |n: NodeId| {
        source_nodes
            .binary_search(&n)
            .expect("edges reference live nodes")
    };
    for e in graph.edge_ids() {
        let (from, to) = graph.edge_endpoints(e).expect("live edge");
        let label = graph.edge_label_text(e).expect("live edge");
        let props = graph.edge_properties(e).expect("live edge").clone();
        let (f, t) = (mapping[index_of(from)], mapping[index_of(to)]);
        match engine.create_edge(f, t, Some(label), props) {
            Ok(_) => {}
            Err(err) if err.is_unsupported() => {
                match engine.create_edge(f, t, Some(label), PropertyMap::new()) {
                    Ok(_) => {}
                    Err(err2) if err2.is_unsupported() => {
                        engine.create_edge(f, t, None, PropertyMap::new())?;
                    }
                    Err(err2) => return Err(err2),
                }
            }
            Err(err) => return Err(err),
        }
    }
    Ok(mapping)
}

/// Convenience: a `Value` view of an integer for assertions.
pub fn int(v: i64) -> Value {
    Value::Int(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_engines::{make_engine, EngineKind};

    #[test]
    fn er_graph_shape() {
        let g = er_graph(100, 300, 7);
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.edge_count(), 300);
        // Determinism.
        let g2 = er_graph(100, 300, 7);
        assert_eq!(g2.out_degree(NodeId(0)), g.out_degree(NodeId(0)));
    }

    #[test]
    fn ba_graph_has_heavy_tail() {
        let g = ba_graph(500, 3, 11);
        assert_eq!(g.node_count(), 500);
        let mut degrees: Vec<usize> = (0..500).map(|i| g.degree(NodeId(i))).collect();
        degrees.sort_unstable();
        let max = *degrees.last().expect("non-empty");
        let median = degrees[250];
        assert!(
            max > median * 4,
            "preferential attachment should produce hubs: max {max}, median {median}"
        );
    }

    #[test]
    fn social_graph_attributes_and_communities() {
        let g = social_graph(SocialParams {
            people: 120,
            communities: 4,
            intra_edges: 5,
            inter_edges: 1,
            seed: 3,
        });
        assert_eq!(g.node_count(), 120);
        assert!(g.edge_count() > 300);
        let people = g.nodes_with_label("person");
        assert_eq!(people.len(), 120);
        let c0 = gdm_core::AttributedView::node_property(&g, people[0], "community").unwrap();
        assert_eq!(c0, Value::Int(0));
    }

    #[test]
    fn rdf_tree_generates_parents() {
        let g = rdf_family_tree(3, 10, 5);
        let parents = g.match_terms(None, Some(&Term::iri("parent")), None);
        assert!(!parents.is_empty());
        let ages = g.match_terms(None, Some(&Term::iri("age")), None);
        assert_eq!(ages.len(), 30);
    }

    #[test]
    fn loads_into_every_engine() {
        let small = social_graph(SocialParams {
            people: 30,
            communities: 3,
            intra_edges: 3,
            inter_edges: 1,
            seed: 9,
        });
        let base = std::env::temp_dir().join(format!("gdm-workload-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        for kind in EngineKind::all() {
            let dir = base.join(kind.label().to_lowercase().replace('-', "_"));
            std::fs::create_dir_all(&dir).unwrap();
            let mut engine = make_engine(kind, &dir).unwrap();
            let mapping = load_into_engine(engine.as_mut(), &small).unwrap();
            assert_eq!(mapping.len(), 30, "{}", kind.label());
            assert_eq!(engine.node_count(), 30, "{}", kind.label());
            assert!(engine.edge_count() > 0, "{}", kind.label());
        }
        std::fs::remove_dir_all(&base).unwrap();
    }
}
