//! # gdm-bench
//!
//! Workload generation and the benchmark/regeneration harness.
//!
//! The paper's own evaluation is the eight feature tables — regenerate
//! them with the `tables` binary (`cargo run -p gdm-bench --bin
//! tables`). The Criterion benches go beyond the paper in the spirit
//! of its related work (Dominguez-Sal et al. \[11\], who benchmarked
//! DEX/Neo4j/HypergraphDB/Jena on typical graph operations):
//!
//! | bench | measures |
//! |---|---|
//! | `essential_queries` | the Section IV queries across all nine engine emulations |
//! | `storage` | DiskBTree vs MemKv, buffer-pool sizing |
//! | `pattern` | VF2 vs brute-force subgraph matching |
//! | `regular_paths` | product-automaton reachability scaling |
//! | `placement` | G-Store BFS-clustered vs insertion-order page placement |
//! | `partitions` | InfiniteGraph-style remote hops vs partition count/strategy |
//! | `indexes` | hash vs B-tree vs bitmap secondary indexes |

pub mod workload;

pub use workload::{
    ba_graph, er_graph, load_into_engine, rdf_family_tree, social_graph, SocialParams,
};
