//! The segmented log writer: LSNs, rotation, and group commit.
//!
//! The log is a sequence of segment files `wal-<n>.seg` holding framed
//! records (see [`crate::record`]). Appends accumulate in a memory
//! buffer; [`Wal::commit`] writes the buffer through and fsyncs
//! according to the [`SyncPolicy`] — `Batch` is group commit,
//! amortizing one fsync over `commits` transaction commits at the cost
//! of losing at most the last `commits − 1` *acknowledged* commits on
//! power loss, with a `window_ms` deadline bounding how long a light
//! trickle of commits can sit unsynced.
//! Rotation happens at commit boundaries only, so a transaction's
//! records never straddle a segment edge and checkpoint truncation can
//! drop whole files.

use crate::fs::{WalFile, WalFs};
use crate::record::Record;
use gdm_core::{GdmError, Result};

/// Position of a record in the log: segment number plus byte offset of
/// its frame within the segment. Ordered lexicographically, so LSNs are
/// totally ordered across the whole log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Lsn {
    /// Segment number the record lives in.
    pub segment: u64,
    /// Byte offset of the frame within the segment.
    pub offset: u64,
}

/// When the log forces appended records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync on every commit — the strict durability contract.
    Always,
    /// Group commit: fsync once per `commits` commits **or** once the
    /// oldest unsynced commit is `window_ms` old, whichever comes
    /// first (plus on rotation and explicit flush). The count
    /// amortizes fsyncs under heavy load; the window bounds commit
    /// latency under light load, where a trickle of commits would
    /// otherwise sit unsynced until the batch fills. The deadline is
    /// checked at commit boundaries (there is no background timer), so
    /// the bound holds while commits keep arriving; a truly idle log
    /// syncs on the next commit or [`Wal::flush`].
    Batch {
        /// Fsync after this many unsynced commits.
        commits: u32,
        /// ... or once the first unsynced commit is this many
        /// milliseconds old. `0` degenerates to `Always`; `u64::MAX`
        /// is count-only group commit (see [`SyncPolicy::batch`]).
        window_ms: u64,
    },
    /// Never fsync automatically; only [`Wal::flush`] syncs. For
    /// benchmarks isolating fsync cost.
    Manual,
}

impl SyncPolicy {
    /// Count-only group commit: fsync every `n` commits, no time bound.
    pub fn batch(n: u32) -> Self {
        SyncPolicy::Batch {
            commits: n,
            window_ms: u64::MAX,
        }
    }
}

/// Bounded retry for the log's write/fsync calls. Real disks and
/// network filesystems fail *transiently* (signal interruption,
/// momentary congestion) far more often than they fail permanently;
/// retrying those inside the log keeps one blip from killing a
/// durable commit, while non-transient errors (corruption, missing
/// file) still surface immediately. The policy type itself lives in
/// `gdm-govern` so the WAL and the serving tier's retrying client
/// share one backoff vocabulary.
pub use gdm_govern::RetryPolicy;

/// Is `e` a *transient* I/O failure — one a bounded retry may cure?
/// Interrupted/would-block/timed-out syscalls qualify; everything
/// else (corruption, permission, missing file) is permanent and must
/// surface to the caller.
pub fn is_transient(e: &GdmError) -> bool {
    use std::io::ErrorKind;
    matches!(
        e,
        GdmError::Io(io) if matches!(
            io.kind(),
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
        )
    )
}

/// Runs `op`, retrying transient failures per `policy` with
/// exponential backoff. The first non-transient error — or the last
/// transient one once attempts are exhausted — is returned as-is.
fn with_retry<T>(policy: RetryPolicy, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let attempts = policy.attempts.max(1);
    for attempt in 1..=attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < attempts && is_transient(&e) => {
                let backoff = policy.backoff(attempt - 1, 0);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("loop returns on the final attempt")
}

/// Tuning knobs for the log writer.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Fsync cadence.
    pub sync: SyncPolicy,
    /// Transient-fault retry for write/fsync calls.
    pub retry: RetryPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::Always,
            retry: RetryPolicy::default(),
        }
    }
}

/// File name of segment `n` (zero-padded so lexicographic order is
/// numeric order).
pub fn segment_name(n: u64) -> String {
    format!("wal-{n:010}.seg")
}

/// Parses a segment file name back to its number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// File name of checkpoint `seq`.
pub fn checkpoint_name(seq: u64) -> String {
    format!("checkpoint-{seq:010}.ckpt")
}

/// Parses a checkpoint file name back to its sequence number.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("checkpoint-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// The append side of the write-ahead log.
pub struct Wal<F: WalFs> {
    fs: F,
    opts: WalOptions,
    segment: u64,
    file: F::File,
    /// Frames encoded but not yet written to the file.
    buf: Vec<u8>,
    /// Commits since the last fsync (group-commit counter).
    unsynced_commits: u32,
    /// When the oldest unsynced commit happened — drives the
    /// time-window half of [`SyncPolicy::Batch`].
    first_unsynced: Option<std::time::Instant>,
    next_txn: u64,
}

impl<F: WalFs> Wal<F> {
    /// Starts a fresh log in `fs` with segment 0.
    pub fn create(fs: F, opts: WalOptions) -> Result<Self> {
        let file = fs.create(&segment_name(0))?;
        Ok(Wal {
            fs,
            opts,
            segment: 0,
            file,
            buf: Vec::new(),
            unsynced_commits: 0,
            first_unsynced: None,
            next_txn: 1,
        })
    }

    /// Reconstructs the writer at a known tail position — used by
    /// recovery after it has validated (and possibly truncated) the
    /// last segment.
    pub(crate) fn resume(
        fs: F,
        opts: WalOptions,
        segment: u64,
        file: F::File,
        next_txn: u64,
    ) -> Self {
        Wal {
            fs,
            opts,
            segment,
            file,
            buf: Vec::new(),
            unsynced_commits: 0,
            first_unsynced: None,
            next_txn,
        }
    }

    /// Allocates a fresh transaction id (> 0; 0 is the autocommit
    /// stream).
    pub fn allocate_txn(&mut self) -> u64 {
        let id = self.next_txn;
        self.next_txn += 1;
        id
    }

    /// Appends a record to the in-memory buffer and returns the LSN it
    /// will occupy. Nothing reaches the file until [`Wal::commit`] or
    /// [`Wal::flush`].
    pub fn append(&mut self, record: &Record) -> Lsn {
        let lsn = Lsn {
            segment: self.segment,
            offset: self.file.len() + self.buf.len() as u64,
        };
        record.encode_frame(&mut self.buf);
        lsn
    }

    /// Marks a commit boundary: writes buffered frames to the segment
    /// and fsyncs per the [`SyncPolicy`], then rotates if the segment
    /// is full.
    pub fn commit(&mut self) -> Result<()> {
        self.write_through()?;
        self.unsynced_commits += 1;
        let first = *self
            .first_unsynced
            .get_or_insert_with(std::time::Instant::now);
        let should_sync = match self.opts.sync {
            SyncPolicy::Always => true,
            SyncPolicy::Batch { commits, window_ms } => {
                self.unsynced_commits >= commits.max(1)
                    || first.elapsed().as_millis() >= u128::from(window_ms)
            }
            SyncPolicy::Manual => false,
        };
        if should_sync {
            let retry = self.opts.retry;
            let file = &mut self.file;
            with_retry(retry, || file.sync())?;
            self.unsynced_commits = 0;
            self.first_unsynced = None;
        }
        if self.file.len() >= self.opts.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Writes and fsyncs everything buffered, unconditionally.
    pub fn flush(&mut self) -> Result<()> {
        self.write_through()?;
        let retry = self.opts.retry;
        let file = &mut self.file;
        with_retry(retry, || file.sync())?;
        self.unsynced_commits = 0;
        self.first_unsynced = None;
        Ok(())
    }

    /// Seals the current segment (fsync) and starts the next one.
    pub fn rotate(&mut self) -> Result<u64> {
        self.flush()?;
        self.segment += 1;
        self.file = self.fs.create(&segment_name(self.segment))?;
        Ok(self.segment)
    }

    /// The LSN one past the last appended record.
    pub fn end_lsn(&self) -> Lsn {
        Lsn {
            segment: self.segment,
            offset: self.file.len() + self.buf.len() as u64,
        }
    }

    /// Current segment number.
    pub fn current_segment(&self) -> u64 {
        self.segment
    }

    /// The backing filesystem handle.
    pub fn fs(&self) -> &F {
        &self.fs
    }

    fn write_through(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            let retry = self.opts.retry;
            let file = &mut self.file;
            let buf = &self.buf;
            with_retry(retry, || file.append(buf))?;
            self.buf.clear();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultFs;

    #[test]
    fn segment_names_roundtrip_and_sort() {
        assert_eq!(segment_name(7), "wal-0000000007.seg");
        assert_eq!(parse_segment_name("wal-0000000007.seg"), Some(7));
        assert_eq!(parse_segment_name("checkpoint-0000000001.ckpt"), None);
        assert_eq!(parse_checkpoint_name("checkpoint-0000000001.ckpt"), Some(1));
        assert!(segment_name(9) < segment_name(10));
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let fs = FaultFs::new();
        let mut wal = Wal::create(
            fs.clone(),
            WalOptions {
                segment_bytes: 1 << 20,
                sync: SyncPolicy::batch(4),
                ..WalOptions::default()
            },
        )
        .unwrap();
        for i in 0..8u64 {
            wal.append(&Record::Put {
                txn: 0,
                key: vec![i as u8],
                value: b"v".to_vec(),
            });
            wal.commit().unwrap();
        }
        // 8 commits, batch of 4 → exactly 2 fsyncs.
        assert_eq!(fs.sync_count(), 2);
    }

    #[test]
    fn zero_window_degenerates_to_always() {
        let fs = FaultFs::new();
        let mut wal = Wal::create(
            fs.clone(),
            WalOptions {
                segment_bytes: 1 << 20,
                sync: SyncPolicy::Batch {
                    commits: 1000,
                    window_ms: 0,
                },
                ..WalOptions::default()
            },
        )
        .unwrap();
        for i in 0..5u64 {
            wal.append(&Record::Put {
                txn: 0,
                key: vec![i as u8],
                value: b"v".to_vec(),
            });
            wal.commit().unwrap();
        }
        // The batch size never fills, but an expired (zero) window
        // forces a sync on every commit.
        assert_eq!(fs.sync_count(), 5);
    }

    #[test]
    fn batch_window_syncs_stale_group_under_light_load() {
        let fs = FaultFs::new();
        let mut wal = Wal::create(
            fs.clone(),
            WalOptions {
                segment_bytes: 1 << 20,
                sync: SyncPolicy::Batch {
                    commits: 1000,
                    window_ms: 5,
                },
                ..WalOptions::default()
            },
        )
        .unwrap();
        wal.append(&Record::Put {
            txn: 0,
            key: b"a".to_vec(),
            value: b"v".to_vec(),
        });
        wal.commit().unwrap();
        // One commit, batch far from full, window not yet expired.
        assert_eq!(fs.sync_count(), 0);
        std::thread::sleep(std::time::Duration::from_millis(20));
        wal.append(&Record::Put {
            txn: 0,
            key: b"b".to_vec(),
            value: b"v".to_vec(),
        });
        wal.commit().unwrap();
        // The second commit finds the group older than the window and
        // syncs both.
        assert_eq!(fs.sync_count(), 1);
    }

    #[test]
    fn always_policy_syncs_every_commit() {
        let fs = FaultFs::new();
        let mut wal = Wal::create(fs.clone(), WalOptions::default()).unwrap();
        for _ in 0..3 {
            wal.append(&Record::Commit { txn: 1 });
            wal.commit().unwrap();
        }
        assert_eq!(fs.sync_count(), 3);
    }

    #[test]
    fn rotation_starts_new_segment_at_commit_boundary() {
        let fs = FaultFs::new();
        let mut wal = Wal::create(
            fs.clone(),
            WalOptions {
                segment_bytes: 32,
                sync: SyncPolicy::Always,
                ..WalOptions::default()
            },
        )
        .unwrap();
        for i in 0..4u64 {
            wal.append(&Record::Put {
                txn: 0,
                key: vec![i as u8; 8],
                value: vec![0; 8],
            });
            wal.commit().unwrap();
        }
        assert!(wal.current_segment() >= 1);
        let names = fs.list().unwrap();
        assert!(names.contains(&segment_name(0)));
        assert!(names.contains(&segment_name(1)));
    }

    #[test]
    fn transient_classifier_separates_retryable_from_permanent() {
        use std::io::{Error, ErrorKind};
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
        ] {
            assert!(is_transient(&GdmError::Io(Error::new(kind, "blip"))));
        }
        assert!(!is_transient(&GdmError::Io(Error::new(
            ErrorKind::PermissionDenied,
            "no"
        ))));
        assert!(!is_transient(&GdmError::Storage("corrupt".into())));
    }

    #[test]
    fn commit_retries_through_two_transient_append_failures() {
        let fs = FaultFs::new();
        let mut wal = Wal::create(fs.clone(), WalOptions::default()).unwrap();
        wal.append(&Record::Put {
            txn: 0,
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        });
        wal.append(&Record::Commit { txn: 0 });
        fs.fail_appends(2); // default policy = 3 attempts: 2 blips are absorbed
        wal.commit().unwrap();
        assert_eq!(fs.transient_failure_count(), 2);
        // Exactly one copy of the frames landed — failed attempts had
        // no side effect, and the successful one wrote the whole buffer.
        let bytes = fs.read(&segment_name(0)).unwrap();
        let mut pos = 0usize;
        let mut records = Vec::new();
        while let crate::record::Frame::Ok { record, consumed } =
            crate::record::read_frame(&bytes, pos)
        {
            records.push(record);
            pos += consumed;
        }
        assert_eq!(records.len(), 2);
        assert!(matches!(records[1], Record::Commit { txn: 0 }));
    }

    #[test]
    fn sync_retries_transient_failures_without_double_counting() {
        let fs = FaultFs::new();
        let mut wal = Wal::create(fs.clone(), WalOptions::default()).unwrap();
        wal.append(&Record::Commit { txn: 7 });
        fs.fail_syncs(2);
        wal.commit().unwrap();
        assert_eq!(fs.transient_failure_count(), 2);
        assert_eq!(fs.sync_count(), 1); // only the successful attempt counted
        fs.crash(); // durable: the retried sync advanced the watermark
        assert!(!fs.read(&segment_name(0)).unwrap().is_empty());
    }

    #[test]
    fn retries_exhaust_and_surface_the_transient_error() {
        let fs = FaultFs::new();
        let mut wal = Wal::create(
            fs.clone(),
            WalOptions {
                retry: RetryPolicy::none(),
                ..WalOptions::default()
            },
        )
        .unwrap();
        wal.append(&Record::Commit { txn: 1 });
        fs.fail_appends(1);
        let err = wal.commit().unwrap_err();
        assert!(is_transient(&err), "unexpected error: {err}");
        // The buffer is retained, so a later commit still lands the record.
        wal.commit().unwrap();
        assert!(!fs.read(&segment_name(0)).unwrap().is_empty());
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let fs = FaultFs::new();
        let mut wal = Wal::create(fs.clone(), WalOptions::default()).unwrap();
        wal.append(&Record::Commit { txn: 1 });
        fs.remove(&segment_name(0)).unwrap(); // file vanishes: permanent
        let err = wal.commit().unwrap_err();
        assert!(!is_transient(&err));
    }

    #[test]
    fn lsn_tracks_buffer_position() {
        let fs = FaultFs::new();
        let mut wal = Wal::create(fs, WalOptions::default()).unwrap();
        let a = wal.append(&Record::Begin { txn: 1 });
        let b = wal.append(&Record::Commit { txn: 1 });
        assert_eq!(
            a,
            Lsn {
                segment: 0,
                offset: 0
            }
        );
        assert!(b > a);
        assert_eq!(wal.end_lsn().offset, wal.file.len() + wal.buf.len() as u64);
    }
}
