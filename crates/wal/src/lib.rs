//! # gdm-wal
//!
//! The durability subsystem: a segmented write-ahead log with group
//! commit, snapshot checkpoints, crash recovery, and a deterministic
//! fault-injection backend for testing all of it.
//!
//! The paper's graph-database-vs-graph-store split (Section II) turns
//! on whether a system ships real database machinery — transactions
//! *and* the recovery that makes them mean something after a crash.
//! The seed repo had the first half ([`gdm_storage::UndoKv`]); this
//! crate adds the second:
//!
//! * [`record`] — length-prefixed, CRC-checksummed log records,
//! * [`log`] — segmented append-only log writer with LSNs, rotation,
//!   [`SyncPolicy`]-driven group commit, and [`RetryPolicy`]-bounded
//!   retry of transient write/fsync failures,
//! * [`durable`] — [`DurableKv`], wrapping any [`gdm_storage::KvStore`]
//!   with log-first journaling, checkpointing, and [`DurableKv::recover`],
//! * [`fs`] — the narrow filesystem seam ([`WalFs`]/[`WalFile`]) with
//!   the real-disk implementation [`DiskFs`],
//! * [`fault`] — [`FaultFs`], an in-memory backend that models power
//!   loss, lying fsyncs, torn writes, and bit rot, so crash safety is
//!   tested deterministically at every byte offset.
//!
//! The crash-safety contract: after recovery, the store state equals
//! the result of applying a *prefix* of the committed transaction
//! history — never a partial transaction, never a reordering, and
//! under [`SyncPolicy::Always`] the prefix includes every acknowledged
//! commit. See `DESIGN.md` ("Durability & recovery") for the format
//! diagrams and invariants.

pub mod durable;
pub mod fault;
pub mod fs;
pub mod log;
pub mod record;

pub use durable::{DurableKv, RecoveryReport};
pub use fault::{FaultFile, FaultFs};
pub use fs::{DiskFile, DiskFs, WalFile, WalFs};
pub use log::{is_transient, Lsn, RetryPolicy, SyncPolicy, Wal, WalOptions};
pub use record::{crc32, Record};
