//! [`DurableKv`]: write-ahead logging and crash recovery over any
//! [`KvStore`].
//!
//! Discipline is classic log-first: every mutation is appended to the
//! WAL *before* it touches the inner store, and a transaction's effects
//! become final exactly when its commit record is durable. Rollback
//! reuses [`UndoKv`]'s undo log for the in-memory side; the WAL side
//! just writes a rollback record so replay discards the transaction.
//!
//! # Checkpoints
//!
//! [`DurableKv::checkpoint`] serializes the full store into a snapshot
//! file (`checkpoint-<seq>.ckpt`, written atomically), rotates to a
//! fresh segment, and prunes: the newest *two* checkpoints are kept, as
//! are all segments the older of the two still needs. Keeping two means
//! a corrupted newest checkpoint (a real failure mode — it is the
//! largest single write in the system) degrades to the previous
//! checkpoint plus a longer replay instead of data loss.
//!
//! Snapshot format: `magic "GDMCKPT1" · start-segment u64 · pair count
//! varint · (key bytes · value bytes)* · crc32 u32` — the CRC covers
//! everything before it.
//!
//! # Recovery
//!
//! [`DurableKv::recover`] loads the newest usable checkpoint, replays
//! every later record, and stops at the first torn or corrupt frame —
//! everything after it is discarded (the tail is physically truncated
//! so the log is append-consistent again). Transactions without a
//! durable commit record are discarded. The resulting state is always
//! a *prefix* of the committed history: every transaction acknowledged
//! under [`crate::log::SyncPolicy::Always`] survives, and under `Batch(n)` at most
//! the trailing unsynced window is lost, never an interior transaction.

use crate::fs::WalFs;
use crate::log::{
    checkpoint_name, parse_checkpoint_name, parse_segment_name, segment_name, Lsn, Wal, WalOptions,
};
use crate::record::{crc32, read_frame, Frame, Record};
use gdm_core::{GdmError, Result};
use gdm_storage::{codec, KvStore, UndoKv};
use std::collections::BTreeMap;

const CKPT_MAGIC: &[u8; 8] = b"GDMCKPT1";

/// What recovery found and did. Returned alongside the reopened store
/// so tests (and operators) can assert on the exact outcome.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed into the store (checkpoint pairs not counted).
    pub records_applied: usize,
    /// Committed transactions replayed.
    pub committed_txns: usize,
    /// Transactions discarded for lack of a durable commit record.
    pub discarded_txns: usize,
    /// Log bytes discarded as torn or corrupt suffix.
    pub discarded_bytes: u64,
    /// True when a checksum failure (not a clean tear) stopped replay.
    pub corruption_detected: bool,
    /// True when state was seeded from a checkpoint snapshot.
    pub used_checkpoint: bool,
    /// Checkpoints that failed validation and were skipped.
    pub checkpoints_skipped: usize,
}

/// A [`KvStore`] with write-ahead durability and crash recovery.
pub struct DurableKv<S: KvStore, F: WalFs> {
    inner: UndoKv<S>,
    wal: Wal<F>,
    open_txn: Option<u64>,
    next_ckpt: u64,
    /// Oldest segment still needed by a retained checkpoint (pruning
    /// floor).
    retain_from: u64,
}

impl<S: KvStore, F: WalFs> DurableKv<S, F> {
    /// Wraps `inner` with a fresh log in `fs`. `inner`'s existing
    /// contents (if any) are NOT journaled; start from an empty store
    /// unless you immediately checkpoint.
    pub fn create(fs: F, opts: WalOptions, inner: S) -> Result<Self> {
        let wal = Wal::create(fs, opts)?;
        Ok(DurableKv {
            inner: UndoKv::new(inner),
            wal,
            open_txn: None,
            next_ckpt: 0,
            retain_from: 0,
        })
    }

    /// Opens the log in `fs`: recovers if log files exist, otherwise
    /// starts fresh. `empty_inner` must be an empty store; recovery
    /// fills it.
    pub fn open(fs: F, opts: WalOptions, empty_inner: S) -> Result<(Self, RecoveryReport)> {
        let has_log = fs
            .list()?
            .iter()
            .any(|n| parse_segment_name(n).is_some() || parse_checkpoint_name(n).is_some());
        if has_log {
            Self::recover(fs, opts, empty_inner)
        } else {
            Ok((
                Self::create(fs, opts, empty_inner)?,
                RecoveryReport::default(),
            ))
        }
    }

    /// True while a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.open_txn.is_some()
    }

    /// Starts a transaction. Nested transactions are rejected.
    pub fn begin(&mut self) -> Result<()> {
        if self.open_txn.is_some() {
            return Err(GdmError::InvalidArgument(
                "transaction already in progress".into(),
            ));
        }
        let txn = self.wal.allocate_txn();
        self.wal.append(&Record::Begin { txn });
        self.inner.begin()?;
        self.open_txn = Some(txn);
        Ok(())
    }

    /// Commits: the transaction is durable once this returns (under
    /// [`crate::log::SyncPolicy::Always`]; under group commit, once the batch
    /// syncs).
    pub fn commit(&mut self) -> Result<()> {
        let Some(txn) = self.open_txn else {
            return Err(GdmError::InvalidArgument("no open transaction".into()));
        };
        self.wal.append(&Record::Commit { txn });
        self.wal.commit()?;
        self.inner.commit()?;
        self.open_txn = None;
        Ok(())
    }

    /// Rolls back: in-memory effects are undone and replay will discard
    /// the transaction.
    pub fn rollback(&mut self) -> Result<()> {
        let Some(txn) = self.open_txn else {
            return Err(GdmError::InvalidArgument("no open transaction".into()));
        };
        self.wal.append(&Record::Rollback { txn });
        self.wal.commit()?;
        self.inner.rollback()?;
        self.open_txn = None;
        Ok(())
    }

    /// The LSN one past the last appended record.
    pub fn end_lsn(&self) -> Lsn {
        self.wal.end_lsn()
    }

    /// Unwraps the inner store. Panics in debug builds if a transaction
    /// is open — callers must commit or roll back first, because the
    /// unwrapped store silently keeps the uncommitted effects.
    pub fn into_inner(self) -> S {
        debug_assert!(
            self.open_txn.is_none(),
            "DurableKv::into_inner with an open transaction"
        );
        self.inner.into_inner()
    }

    /// Writes a snapshot checkpoint and prunes old log files. Refused
    /// while a transaction is open (the snapshot would capture
    /// uncommitted state).
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.open_txn.is_some() {
            return Err(GdmError::InvalidArgument(
                "checkpoint with a transaction in progress".into(),
            ));
        }
        self.wal.flush()?;
        let start_segment = self.wal.rotate()?;

        let pairs = self.inner.scan_range(b"", None)?;
        let mut snap = Vec::with_capacity(64 + pairs.len() * 16);
        snap.extend_from_slice(CKPT_MAGIC);
        codec::put_u64(&mut snap, start_segment);
        codec::put_varint(&mut snap, pairs.len() as u64);
        for (k, v) in &pairs {
            codec::put_bytes(&mut snap, k);
            codec::put_bytes(&mut snap, v);
        }
        let crc = crc32(&snap);
        codec::put_u32(&mut snap, crc);

        let seq = self.next_ckpt;
        self.wal.fs().write_atomic(&checkpoint_name(seq), &snap)?;
        self.next_ckpt += 1;

        // Prune: keep this checkpoint and the previous one; drop
        // everything older, and every segment below what the previous
        // checkpoint still needs.
        let (mut ckpts, segs) = list_log_files(self.wal.fs())?;
        ckpts.sort_unstable();
        let keep: Vec<u64> = ckpts.iter().rev().take(2).copied().collect();
        for &old in ckpts.iter().filter(|c| !keep.contains(c)) {
            self.wal.fs().remove(&checkpoint_name(old))?;
        }
        // The previous retained checkpoint's start segment is this
        // checkpoint's pruning floor from the *last* call.
        let floor = if keep.len() == 2 {
            self.retain_from
        } else {
            start_segment
        };
        for seg in segs {
            if seg < floor {
                self.wal.fs().remove(&segment_name(seg))?;
            }
        }
        self.retain_from = start_segment;
        Ok(())
    }

    /// Rebuilds state from the log in `fs`: newest usable checkpoint
    /// plus replay of every later durable, committed record.
    pub fn recover(fs: F, opts: WalOptions, mut empty_inner: S) -> Result<(Self, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        let (mut ckpts, mut segs) = list_log_files(&fs)?;
        ckpts.sort_unstable();
        segs.sort_unstable();

        // Pick the newest checkpoint that parses, checksums, and whose
        // replay range is still on disk.
        let mut start_segment = segs.first().copied().unwrap_or(0);
        let mut snapshot: Option<Vec<(Vec<u8>, Vec<u8>)>> = None;
        for &seq in ckpts.iter().rev() {
            match read_checkpoint(&fs, seq) {
                Ok((from, pairs)) => {
                    // Usable only if no needed segment is missing: every
                    // existing segment ≥ `from` must chain contiguously
                    // from `from` (or there are none, right after a
                    // checkpoint).
                    let later: Vec<u64> = segs.iter().copied().filter(|&s| s >= from).collect();
                    let contiguous = later.iter().enumerate().all(|(i, &s)| s == from + i as u64);
                    if contiguous {
                        start_segment = from;
                        snapshot = Some(pairs);
                        break;
                    }
                    report.checkpoints_skipped += 1;
                }
                Err(_) => report.checkpoints_skipped += 1,
            }
        }
        if let Some(pairs) = snapshot {
            for (k, v) in pairs {
                empty_inner.put(&k, &v)?;
            }
            report.used_checkpoint = true;
        }

        // Replay segments from the checkpoint onward, stopping at the
        // first torn or corrupt frame.
        let replay: Vec<u64> = segs
            .iter()
            .copied()
            .filter(|&s| s >= start_segment)
            .collect();
        let mut open: BTreeMap<u64, Vec<Record>> = BTreeMap::new();
        let mut max_txn = 0u64;
        let mut tail = None; // (segment, valid_len)
        let mut stopped = false;
        for (idx, &seg) in replay.iter().enumerate() {
            if stopped {
                // A bad frame invalidates everything after it; later
                // segments are discarded wholesale.
                report.discarded_bytes += fs.read(&segment_name(seg))?.len() as u64;
                fs.remove(&segment_name(seg))?;
                continue;
            }
            if seg != start_segment + idx as u64 {
                // Gap in the chain (should have been caught above for
                // checkpointed ranges; defends the no-checkpoint path).
                report.corruption_detected = true;
                stopped = true;
                report.discarded_bytes += fs.read(&segment_name(seg))?.len() as u64;
                fs.remove(&segment_name(seg))?;
                continue;
            }
            let bytes = fs.read(&segment_name(seg))?;
            let mut pos = 0usize;
            loop {
                match read_frame(&bytes, pos) {
                    Frame::Ok { record, consumed } => {
                        max_txn = max_txn.max(record.txn());
                        apply_record(&mut empty_inner, &mut open, record, &mut report)?;
                        pos += consumed;
                    }
                    Frame::Torn => {
                        if pos < bytes.len() {
                            // Partial frame: only legitimate at the very
                            // end of the log; anywhere else the
                            // remainder is discarded too.
                            report.discarded_bytes += (bytes.len() - pos) as u64;
                            if idx + 1 < replay.len() {
                                report.corruption_detected = true;
                                stopped = true;
                            }
                        }
                        break;
                    }
                    Frame::Corrupt => {
                        report.corruption_detected = true;
                        report.discarded_bytes += (bytes.len() - pos) as u64;
                        stopped = true;
                        break;
                    }
                }
            }
            if !stopped || idx + 1 >= replay.len() || tail.is_none() {
                tail = Some((seg, pos as u64));
            }
        }
        report.discarded_txns += open.len();

        // Reopen the tail segment truncated to its last valid frame so
        // future appends extend a consistent log.
        let (tail_seg, tail_len) = match tail {
            Some(t) => t,
            None => (start_segment, 0),
        };
        let file = if replay.contains(&tail_seg) {
            fs.open_truncated(&segment_name(tail_seg), tail_len)?
        } else {
            fs.create(&segment_name(tail_seg))?
        };
        let next_ckpt = ckpts.last().map_or(0, |c| c + 1);
        let wal = Wal::resume(fs, opts, tail_seg, file, max_txn + 1);
        Ok((
            DurableKv {
                inner: UndoKv::new(empty_inner),
                wal,
                open_txn: None,
                next_ckpt,
                retain_from: start_segment,
            },
            report,
        ))
    }
}

/// Applies one replayed record, buffering transactional mutations until
/// their commit record shows up.
fn apply_record<S: KvStore>(
    store: &mut S,
    open: &mut BTreeMap<u64, Vec<Record>>,
    record: Record,
    report: &mut RecoveryReport,
) -> Result<()> {
    match record {
        Record::Begin { txn } => {
            open.insert(txn, Vec::new());
        }
        Record::Put { txn: 0, key, value } => {
            store.put(&key, &value)?;
            report.records_applied += 1;
        }
        Record::Delete { txn: 0, key } => {
            store.delete(&key)?;
            report.records_applied += 1;
        }
        Record::Put { txn, .. } | Record::Delete { txn, .. } => {
            // Records of a transaction whose Begin predates a corruption
            // stop (impossible in a well-formed log) are dropped.
            if let Some(buf) = open.get_mut(&txn) {
                buf.push(record);
            }
        }
        Record::Commit { txn } => {
            if let Some(buf) = open.remove(&txn) {
                for rec in buf {
                    match rec {
                        Record::Put { key, value, .. } => {
                            store.put(&key, &value)?;
                        }
                        Record::Delete { key, .. } => {
                            store.delete(&key)?;
                        }
                        _ => unreachable!("only mutations are buffered"),
                    }
                    report.records_applied += 1;
                }
                report.committed_txns += 1;
            }
        }
        Record::Rollback { txn } => {
            open.remove(&txn);
        }
    }
    Ok(())
}

/// Key/value pairs captured by a checkpoint snapshot.
type SnapshotPairs = Vec<(Vec<u8>, Vec<u8>)>;

fn read_checkpoint<F: WalFs>(fs: &F, seq: u64) -> Result<(u64, SnapshotPairs)> {
    let bytes = fs.read(&checkpoint_name(seq))?;
    if bytes.len() < CKPT_MAGIC.len() + 12 || &bytes[..8] != CKPT_MAGIC {
        return Err(GdmError::Storage("malformed checkpoint header".into()));
    }
    let body = &bytes[..bytes.len() - 4];
    let mut pos = bytes.len() - 4;
    let stored_crc = codec::get_u32(&bytes, &mut pos)?;
    if crc32(body) != stored_crc {
        return Err(GdmError::Storage("checkpoint checksum mismatch".into()));
    }
    let mut pos = 8usize;
    let start_segment = codec::get_u64(body, &mut pos)?;
    let count = codec::get_varint(body, &mut pos)? as usize;
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let k = codec::get_bytes(body, &mut pos)?.to_vec();
        let v = codec::get_bytes(body, &mut pos)?.to_vec();
        pairs.push((k, v));
    }
    if pos != body.len() {
        return Err(GdmError::Storage("trailing bytes in checkpoint".into()));
    }
    Ok((start_segment, pairs))
}

fn list_log_files<F: WalFs>(fs: &F) -> Result<(Vec<u64>, Vec<u64>)> {
    let mut ckpts = Vec::new();
    let mut segs = Vec::new();
    for name in fs.list()? {
        if let Some(seq) = parse_checkpoint_name(&name) {
            ckpts.push(seq);
        } else if let Some(seg) = parse_segment_name(&name) {
            segs.push(seg);
        }
    }
    Ok((ckpts, segs))
}

impl<S: KvStore, F: WalFs> KvStore for DurableKv<S, F> {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        let txn = self.open_txn.unwrap_or(0);
        self.wal.append(&Record::Put {
            txn,
            key: key.to_vec(),
            value: value.to_vec(),
        });
        if self.open_txn.is_none() {
            // Autocommit: the single record is its own committed unit.
            self.wal.commit()?;
        }
        self.inner.put(key, value)
    }

    fn delete(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let txn = self.open_txn.unwrap_or(0);
        self.wal.append(&Record::Delete {
            txn,
            key: key.to_vec(),
        });
        if self.open_txn.is_none() {
            self.wal.commit()?;
        }
        self.inner.delete(key)
    }

    fn scan_range(&mut self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner.scan_range(start, end)
    }

    fn len(&mut self) -> Result<usize> {
        self.inner.len()
    }

    fn flush(&mut self) -> Result<()> {
        self.wal.flush()?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultFs;
    use crate::log::SyncPolicy;
    use gdm_storage::MemKv;

    fn opts() -> WalOptions {
        WalOptions {
            segment_bytes: 256,
            sync: SyncPolicy::Always,
            ..WalOptions::default()
        }
    }

    fn contents<S: KvStore>(kv: &mut S) -> Vec<(Vec<u8>, Vec<u8>)> {
        kv.scan_range(b"", None).unwrap()
    }

    #[test]
    fn autocommit_survives_crash() {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        kv.delete(b"a").unwrap();
        let before = contents(&mut kv);
        drop(kv); // simulated kill: no clean shutdown path exists
        fs.crash();
        let (mut kv, report) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
        assert_eq!(contents(&mut kv), before);
        assert_eq!(report.records_applied, 3);
        assert!(!report.corruption_detected);
    }

    #[test]
    fn two_transient_write_failures_still_commit_exactly_once() {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
        fs.fail_appends(2); // default RetryPolicy absorbs both blips
        kv.put(b"k", b"v").unwrap();
        assert_eq!(fs.transient_failure_count(), 2);
        drop(kv);
        fs.crash();
        // Durable, and exactly one logical record — the retries did not
        // duplicate the put.
        let (mut kv, report) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
        assert_eq!(kv.get(b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(report.records_applied, 1);
        assert_eq!(contents(&mut kv).len(), 1);
    }

    #[test]
    fn committed_txns_survive_uncommitted_discarded() {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
        kv.begin().unwrap();
        kv.put(b"committed", b"yes").unwrap();
        kv.commit().unwrap();
        kv.begin().unwrap();
        kv.put(b"uncommitted", b"no").unwrap();
        // Crash with the second transaction open.
        drop(kv);
        fs.crash();
        let (mut kv, report) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
        assert_eq!(kv.get(b"committed").unwrap(), Some(b"yes".to_vec()));
        assert_eq!(kv.get(b"uncommitted").unwrap(), None);
        assert_eq!(report.committed_txns, 1);
        assert!(report.discarded_txns <= 1); // Begin may not even be durable
    }

    #[test]
    fn rollback_is_clean_in_memory_and_on_replay() {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
        kv.put(b"base", b"0").unwrap();
        kv.begin().unwrap();
        kv.put(b"base", b"dirty").unwrap();
        kv.put(b"extra", b"x").unwrap();
        kv.rollback().unwrap();
        assert_eq!(kv.get(b"base").unwrap(), Some(b"0".to_vec()));
        assert_eq!(kv.get(b"extra").unwrap(), None);
        drop(kv);
        fs.crash();
        let (mut kv, _) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
        assert_eq!(kv.get(b"base").unwrap(), Some(b"0".to_vec()));
        assert_eq!(kv.get(b"extra").unwrap(), None);
    }

    #[test]
    fn checkpoint_prunes_and_recovery_uses_it() {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
        for i in 0..50u32 {
            kv.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        kv.checkpoint().unwrap();
        kv.put(b"after", b"ckpt").unwrap();
        let before = contents(&mut kv);
        drop(kv);
        fs.crash();
        let (mut kv, report) = DurableKv::recover(fs.clone(), opts(), MemKv::new()).unwrap();
        assert!(report.used_checkpoint);
        assert_eq!(report.records_applied, 1); // only the post-checkpoint put
        assert_eq!(contents(&mut kv), before);
    }

    #[test]
    fn second_checkpoint_prunes_old_segments() {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
        for round in 0..3 {
            for i in 0..40u32 {
                kv.put(format!("r{round}k{i:03}").as_bytes(), b"v").unwrap();
            }
            kv.checkpoint().unwrap();
        }
        let (ckpts, segs) = list_log_files(&fs).unwrap();
        assert_eq!(ckpts.len(), 2, "only two checkpoints retained");
        // Segments below the older retained checkpoint's range are gone.
        let min_needed = ckpts.iter().min().copied().unwrap();
        let _ = min_needed;
        assert!(segs.len() < 20, "old segments pruned, got {segs:?}");
        let before = contents(&mut kv);
        drop(kv);
        fs.crash();
        let (mut kv, _) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
        assert_eq!(contents(&mut kv), before);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_previous() {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
        kv.put(b"one", b"1").unwrap();
        kv.checkpoint().unwrap();
        kv.put(b"two", b"2").unwrap();
        kv.checkpoint().unwrap();
        let before = contents(&mut kv);
        drop(kv);
        let (ckpts, _) = list_log_files(&fs).unwrap();
        let newest = ckpts.iter().max().copied().unwrap();
        fs.flip_bit(&checkpoint_name(newest), 20, 2);
        let (mut kv, report) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
        assert_eq!(report.checkpoints_skipped, 1);
        assert!(report.used_checkpoint);
        assert_eq!(contents(&mut kv), before);
    }

    #[test]
    fn dropped_fsyncs_lose_only_the_tail() {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
        kv.put(b"durable", b"1").unwrap();
        fs.set_drop_syncs(true);
        kv.put(b"lost", b"2").unwrap(); // acked, but the disk lied
        drop(kv);
        fs.crash();
        fs.set_drop_syncs(false);
        let (mut kv, _) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
        assert_eq!(kv.get(b"durable").unwrap(), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"lost").unwrap(), None);
    }

    #[test]
    fn recovered_store_keeps_accepting_writes() {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
        kv.put(b"a", b"1").unwrap();
        drop(kv);
        fs.crash();
        let (mut kv, _) = DurableKv::recover(fs.clone(), opts(), MemKv::new()).unwrap();
        kv.put(b"b", b"2").unwrap();
        drop(kv);
        fs.crash();
        let (mut kv, _) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
        assert_eq!(kv.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn open_is_create_then_recover() {
        let fs = FaultFs::new();
        let (mut kv, report) = DurableKv::open(fs.clone(), opts(), MemKv::new()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        kv.put(b"x", b"y").unwrap();
        drop(kv);
        let (mut kv, _) = DurableKv::open(fs, opts(), MemKv::new()).unwrap();
        assert_eq!(kv.get(b"x").unwrap(), Some(b"y".to_vec()));
    }

    #[test]
    fn checkpoint_refused_mid_transaction() {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs, opts(), MemKv::new()).unwrap();
        kv.begin().unwrap();
        assert!(kv.checkpoint().is_err());
        kv.rollback().unwrap();
        assert!(kv.checkpoint().is_ok());
    }
}
