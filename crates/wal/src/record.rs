//! Log record types and their wire format.
//!
//! Every record is framed as
//!
//! ```text
//! ┌───────────┬───────────┬──────────────────┐
//! │ len  u32  │ crc32 u32 │ payload (len B)  │
//! └───────────┴───────────┴──────────────────┘
//! ```
//!
//! with both integers big-endian and the CRC taken over the payload
//! only. The frame is what makes torn writes detectable: a crash can
//! leave a partial frame at the end of a segment, and replay stops at
//! the first frame whose length runs past the file or whose CRC does
//! not match.
//!
//! The payload starts with a one-byte record type and the transaction
//! id as a varint; transaction id 0 is the autocommit stream (each such
//! record is its own committed unit).

use gdm_core::{GdmError, Result};
use gdm_storage::codec;

/// Bytes in a frame header (length + CRC).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single record payload; anything larger read from a
/// segment is treated as corruption, not an allocation request.
pub const MAX_PAYLOAD: u32 = 1 << 28;

/// CRC-32 (IEEE 802.3, the polynomial used by zip/png), bitwise
/// implementation — fast enough for the record sizes involved and
/// dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// One logical entry in the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A transaction opened.
    Begin {
        /// Transaction id (> 0).
        txn: u64,
    },
    /// A key was written.
    Put {
        /// Owning transaction, 0 for autocommit.
        txn: u64,
        /// The key.
        key: Vec<u8>,
        /// The new value.
        value: Vec<u8>,
    },
    /// A key was removed.
    Delete {
        /// Owning transaction, 0 for autocommit.
        txn: u64,
        /// The key.
        key: Vec<u8>,
    },
    /// The transaction's effects are final once this record is durable.
    Commit {
        /// Transaction id (> 0).
        txn: u64,
    },
    /// The transaction was abandoned; replay discards its records.
    Rollback {
        /// Transaction id (> 0).
        txn: u64,
    },
}

const TAG_BEGIN: u8 = 1;
const TAG_PUT: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_ROLLBACK: u8 = 5;

impl Record {
    /// Encodes the payload (no frame) into `out`.
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Record::Begin { txn } => {
                out.push(TAG_BEGIN);
                codec::put_varint(out, *txn);
            }
            Record::Put { txn, key, value } => {
                out.push(TAG_PUT);
                codec::put_varint(out, *txn);
                codec::put_bytes(out, key);
                codec::put_bytes(out, value);
            }
            Record::Delete { txn, key } => {
                out.push(TAG_DELETE);
                codec::put_varint(out, *txn);
                codec::put_bytes(out, key);
            }
            Record::Commit { txn } => {
                out.push(TAG_COMMIT);
                codec::put_varint(out, *txn);
            }
            Record::Rollback { txn } => {
                out.push(TAG_ROLLBACK);
                codec::put_varint(out, *txn);
            }
        }
    }

    /// Decodes a payload produced by [`Record::encode_payload`].
    /// Trailing bytes are an error — a frame holds exactly one record.
    pub fn decode_payload(buf: &[u8]) -> Result<Record> {
        let mut pos = 0usize;
        let tag = *buf
            .first()
            .ok_or_else(|| GdmError::Storage("empty record payload".into()))?;
        pos += 1;
        let txn = codec::get_varint(buf, &mut pos)?;
        let record = match tag {
            TAG_BEGIN => Record::Begin { txn },
            TAG_PUT => {
                let key = codec::get_bytes(buf, &mut pos)?.to_vec();
                let value = codec::get_bytes(buf, &mut pos)?.to_vec();
                Record::Put { txn, key, value }
            }
            TAG_DELETE => {
                let key = codec::get_bytes(buf, &mut pos)?.to_vec();
                Record::Delete { txn, key }
            }
            TAG_COMMIT => Record::Commit { txn },
            TAG_ROLLBACK => Record::Rollback { txn },
            other => return Err(GdmError::Storage(format!("unknown WAL record tag {other}"))),
        };
        if pos != buf.len() {
            return Err(GdmError::Storage(format!(
                "{} trailing bytes after WAL record",
                buf.len() - pos
            )));
        }
        Ok(record)
    }

    /// Appends the full frame (header + payload) to `out`.
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::new();
        self.encode_payload(&mut payload);
        codec::put_u32(out, payload.len() as u32);
        codec::put_u32(out, crc32(&payload));
        out.extend_from_slice(&payload);
    }

    /// The transaction id this record belongs to.
    pub fn txn(&self) -> u64 {
        match self {
            Record::Begin { txn }
            | Record::Put { txn, .. }
            | Record::Delete { txn, .. }
            | Record::Commit { txn }
            | Record::Rollback { txn } => *txn,
        }
    }
}

/// Outcome of reading one frame from a byte buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete, checksum-valid record occupying `consumed` bytes.
    Ok {
        /// The decoded record.
        record: Record,
        /// Total frame size (header + payload).
        consumed: usize,
    },
    /// The buffer ends before the frame does — a torn write. Replay
    /// treats everything from here on as never written.
    Torn,
    /// The frame is complete but its checksum (or its payload encoding)
    /// is invalid — corruption rather than a clean tear.
    Corrupt,
}

/// Reads the frame starting at `buf[pos..]`.
pub fn read_frame(buf: &[u8], pos: usize) -> Frame {
    let rest = &buf[pos.min(buf.len())..];
    if rest.is_empty() {
        return Frame::Torn; // clean end-of-log
    }
    if rest.len() < FRAME_HEADER {
        return Frame::Torn;
    }
    let mut p = 0usize;
    let len = codec::get_u32(rest, &mut p).expect("8 bytes checked") as usize;
    let crc = codec::get_u32(rest, &mut p).expect("8 bytes checked");
    if len as u32 > MAX_PAYLOAD {
        return Frame::Corrupt;
    }
    if rest.len() < FRAME_HEADER + len {
        return Frame::Torn;
    }
    let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
    if crc32(payload) != crc {
        return Frame::Corrupt;
    }
    match Record::decode_payload(payload) {
        Ok(record) => Frame::Ok {
            record,
            consumed: FRAME_HEADER + len,
        },
        Err(_) => Frame::Corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::Begin { txn: 1 },
            Record::Put {
                txn: 0,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            Record::Put {
                txn: 7,
                key: vec![0u8; 300],
                value: Vec::new(),
            },
            Record::Delete {
                txn: u64::MAX,
                key: b"gone".to_vec(),
            },
            Record::Commit { txn: 1 },
            Record::Rollback { txn: 2 },
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        for record in samples() {
            let mut buf = Vec::new();
            record.encode_frame(&mut buf);
            match read_frame(&buf, 0) {
                Frame::Ok {
                    record: got,
                    consumed,
                } => {
                    assert_eq!(got, record);
                    assert_eq!(consumed, buf.len());
                }
                other => panic!("expected Ok, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_torn() {
        let mut buf = Vec::new();
        Record::Put {
            txn: 3,
            key: b"key".to_vec(),
            value: b"value".to_vec(),
        }
        .encode_frame(&mut buf);
        for cut in 0..buf.len() {
            assert_eq!(read_frame(&buf[..cut], 0), Frame::Torn, "cut at {cut}");
        }
    }

    #[test]
    fn payload_bit_flips_are_corrupt() {
        let mut buf = Vec::new();
        Record::Commit { txn: 42 }.encode_frame(&mut buf);
        for byte in FRAME_HEADER..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[byte] ^= 1 << bit;
                assert_eq!(read_frame(&bad, 0), Frame::Corrupt, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn crc_bit_flips_are_corrupt() {
        let mut buf = Vec::new();
        Record::Commit { txn: 42 }.encode_frame(&mut buf);
        for byte in 4..8 {
            let mut bad = buf.clone();
            bad[byte] ^= 0x01;
            assert_eq!(read_frame(&bad, 0), Frame::Corrupt, "crc byte {byte}");
        }
    }

    #[test]
    fn absurd_length_is_corrupt_not_alloc() {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, u32::MAX);
        codec::put_u32(&mut buf, 0);
        buf.extend_from_slice(&[0u8; 16]);
        assert_eq!(read_frame(&buf, 0), Frame::Corrupt);
    }
}
