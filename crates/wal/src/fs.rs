//! The filesystem seam the log writes through.
//!
//! Everything the WAL does to stable storage goes through [`WalFs`] and
//! [`WalFile`], so the same log and recovery code runs over the real
//! filesystem ([`DiskFs`]) and over the deterministic fault-injection
//! backend ([`crate::fault::FaultFs`]). The trait is deliberately
//! narrow: append, sync, whole-file read, atomic whole-file replace,
//! list, remove, and truncate-reopen — the only operations a
//! write-ahead log needs, and each one with crash semantics we can
//! model exactly in the fault backend.

use gdm_core::{GdmError, Result};
use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// An append-only file handle.
pub trait WalFile {
    /// Appends bytes at the end of the file. Appended data is *not*
    /// durable until [`WalFile::sync`] returns.
    fn append(&mut self, bytes: &[u8]) -> Result<()>;

    /// Forces all appended bytes to stable storage.
    fn sync(&mut self) -> Result<()>;

    /// Current file length in bytes (including unsynced appends).
    fn len(&self) -> u64;

    /// True when nothing has been appended yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A flat directory of named files.
pub trait WalFs {
    /// The file handle type this backend produces.
    type File: WalFile;

    /// Creates `name` empty, replacing any existing file.
    fn create(&self, name: &str) -> Result<Self::File>;

    /// Opens `name`, truncates it to `len` bytes, and positions the
    /// handle for appending. Used by recovery to cut a torn tail.
    fn open_truncated(&self, name: &str, len: u64) -> Result<Self::File>;

    /// Reads the entire contents of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>>;

    /// All file names in the directory, in unspecified order.
    fn list(&self) -> Result<Vec<String>>;

    /// Removes `name`. Missing files are not an error (recovery retries
    /// cleanup that may have half-happened before a crash).
    fn remove(&self, name: &str) -> Result<()>;

    /// Writes `name` so that after a crash the file holds either its
    /// old contents or the new contents, never a mixture. Disk backends
    /// implement this as write-to-temporary + fsync + rename.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<()>;
}

/// The real-filesystem backend: one directory, `fsync` on [`WalFile::sync`].
#[derive(Debug, Clone)]
pub struct DiskFs {
    dir: PathBuf,
}

impl DiskFs {
    /// Opens (creating if needed) `dir` as the log directory.
    pub fn open(dir: &Path) -> Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(DiskFs {
            dir: dir.to_path_buf(),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

/// A real file opened for appending.
pub struct DiskFile {
    file: fs::File,
    len: u64,
}

impl WalFile for DiskFile {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

impl WalFs for DiskFs {
    type File = DiskFile;

    fn create(&self, name: &str) -> Result<DiskFile> {
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.path(name))?;
        Ok(DiskFile { file, len: 0 })
    }

    fn open_truncated(&self, name: &str, len: u64) -> Result<DiskFile> {
        let mut file = fs::OpenOptions::new().write(true).open(self.path(name))?;
        file.set_len(len)?;
        file.seek(SeekFrom::Start(len))?;
        file.sync_data()?;
        Ok(DiskFile { file, len })
    }

    fn read(&self, name: &str) -> Result<Vec<u8>> {
        Ok(fs::read(self.path(name))?)
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                match entry.file_name().into_string() {
                    Ok(name) => names.push(name),
                    Err(raw) => {
                        return Err(GdmError::Storage(format!(
                            "non-UTF-8 file name in log directory: {raw:?}"
                        )))
                    }
                }
            }
        }
        Ok(names)
    }

    fn remove(&self, name: &str) -> Result<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_data()?;
        }
        fs::rename(&tmp, self.path(name))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gdm-wal-fs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_roundtrip_and_truncate() {
        let dir = tmp_dir("rt");
        let fs_ = DiskFs::open(&dir).unwrap();
        let mut f = fs_.create("a.seg").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.len(), 11);
        drop(f);
        assert_eq!(fs_.read("a.seg").unwrap(), b"hello world");

        let mut f = fs_.open_truncated("a.seg", 5).unwrap();
        f.append(b"!").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(fs_.read("a.seg").unwrap(), b"hello!");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_and_listing() {
        let dir = tmp_dir("atomic");
        let fs_ = DiskFs::open(&dir).unwrap();
        fs_.write_atomic("snap", b"v1").unwrap();
        fs_.write_atomic("snap", b"v2").unwrap();
        assert_eq!(fs_.read("snap").unwrap(), b"v2");
        let names = fs_.list().unwrap();
        assert_eq!(names, vec!["snap".to_owned()]);
        fs_.remove("snap").unwrap();
        fs_.remove("snap").unwrap(); // idempotent
        assert!(fs_.list().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
