//! Deterministic fault injection for crash-safety tests.
//!
//! [`FaultFs`] is an in-memory [`WalFs`] that models exactly what a
//! kernel page cache does to an unsynced file: every file carries a
//! *synced length* watermark, appends extend the in-memory contents
//! only, and [`FaultFs::crash`] discards everything past each
//! watermark — simulating power loss. On top of that it can:
//!
//! * drop `fsync` calls silently ([`FaultFs::set_drop_syncs`]), so a
//!   "crash" loses data an engine believed durable,
//! * truncate a file to an arbitrary byte length
//!   ([`FaultFs::truncate_to`]), simulating a torn write at any offset,
//! * flip a single bit ([`FaultFs::flip_bit`]), simulating media
//!   corruption that the record CRCs must catch,
//! * fail the next *N* appends or syncs with a *transient* I/O error
//!   ([`FaultFs::fail_appends`], [`FaultFs::fail_syncs`]) — an
//!   `Interrupted` that leaves no side effect, exercising the log's
//!   [`crate::RetryPolicy`].
//!
//! Handles share state through `Rc<RefCell<…>>`, so a test can hold the
//! `FaultFs`, hand clones to a [`crate::DurableKv`], kill the store,
//! mutilate the bytes, and reopen — all without touching the real disk.

use crate::fs::{WalFile, WalFs};
use gdm_core::{GdmError, Result};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

#[derive(Debug, Default, Clone)]
struct FileState {
    data: Vec<u8>,
    synced_len: usize,
}

#[derive(Debug, Default)]
struct FsState {
    files: BTreeMap<String, FileState>,
    drop_syncs: bool,
    syncs: u64,
    dropped_syncs: u64,
    fail_appends: u32,
    fail_syncs: u32,
    transient_failures: u64,
}

fn transient_error(what: &str) -> GdmError {
    GdmError::Io(std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!("injected transient {what} failure"),
    ))
}

/// In-memory filesystem with injectable faults. Cloning yields a handle
/// to the same shared state.
#[derive(Debug, Default, Clone)]
pub struct FaultFs {
    state: Rc<RefCell<FsState>>,
}

/// A handle to one file inside a [`FaultFs`].
pub struct FaultFile {
    fs: FaultFs,
    name: String,
}

impl FaultFs {
    /// An empty filesystem with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// When set, subsequent [`WalFile::sync`] calls succeed but do
    /// *not* advance the durable watermark — the classic lying-disk
    /// fault. A later [`FaultFs::crash`] then loses the "synced" data.
    pub fn set_drop_syncs(&self, drop: bool) {
        self.state.borrow_mut().drop_syncs = drop;
    }

    /// Simulates power loss: every file reverts to its last synced
    /// prefix. Open handles stay usable but see the rolled-back state.
    pub fn crash(&self) {
        let mut st = self.state.borrow_mut();
        for file in st.files.values_mut() {
            file.data.truncate(file.synced_len);
        }
    }

    /// Truncates `name` to `len` bytes (torn write at a chosen offset).
    /// The synced watermark moves down with it.
    pub fn truncate_to(&self, name: &str, len: usize) {
        let mut st = self.state.borrow_mut();
        if let Some(file) = st.files.get_mut(name) {
            file.data.truncate(len);
            file.synced_len = file.synced_len.min(len);
        }
    }

    /// Flips bit `bit` (0–7) of byte `offset` in `name` — media
    /// corruption the CRC layer must detect.
    pub fn flip_bit(&self, name: &str, offset: usize, bit: u8) {
        let mut st = self.state.borrow_mut();
        if let Some(file) = st.files.get_mut(name) {
            if let Some(byte) = file.data.get_mut(offset) {
                *byte ^= 1 << (bit & 7);
            }
        }
    }

    /// Current contents of `name` (for byte-level test assertions).
    pub fn snapshot(&self, name: &str) -> Option<Vec<u8>> {
        self.state.borrow().files.get(name).map(|f| f.data.clone())
    }

    /// Replaces the contents of `name` wholesale, marking them synced.
    /// Lets crash-sweep tests install a prepared byte image.
    pub fn install(&self, name: &str, bytes: &[u8]) {
        let mut st = self.state.borrow_mut();
        st.files.insert(
            name.to_owned(),
            FileState {
                data: bytes.to_vec(),
                synced_len: bytes.len(),
            },
        );
    }

    /// Number of honored sync calls so far (group-commit batching
    /// assertions).
    pub fn sync_count(&self) -> u64 {
        self.state.borrow().syncs
    }

    /// Number of sync calls swallowed while `drop_syncs` was set.
    pub fn dropped_sync_count(&self) -> u64 {
        self.state.borrow().dropped_syncs
    }

    /// Arms the next `n` [`WalFile::append`] calls (on any file) to
    /// fail with a transient `Interrupted` I/O error and **no side
    /// effect** — no bytes land. Models an interrupted write syscall
    /// that a bounded retry should cure.
    pub fn fail_appends(&self, n: u32) {
        self.state.borrow_mut().fail_appends = n;
    }

    /// Arms the next `n` [`WalFile::sync`] calls to fail transiently
    /// with no side effect (the durable watermark does not move).
    pub fn fail_syncs(&self, n: u32) {
        self.state.borrow_mut().fail_syncs = n;
    }

    /// Total transient failures served by [`FaultFs::fail_appends`] /
    /// [`FaultFs::fail_syncs`] — lets tests assert the retry layer
    /// actually absorbed the injected faults.
    pub fn transient_failure_count(&self) -> u64 {
        self.state.borrow().transient_failures
    }
}

impl WalFile for FaultFile {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        let mut st = self.fs.state.borrow_mut();
        if st.fail_appends > 0 {
            st.fail_appends -= 1;
            st.transient_failures += 1;
            return Err(transient_error("append"));
        }
        let file = st.files.get_mut(&self.name).ok_or_else(|| {
            GdmError::Storage(format!("file removed under handle: {}", self.name))
        })?;
        file.data.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        let mut st = self.fs.state.borrow_mut();
        if st.fail_syncs > 0 {
            st.fail_syncs -= 1;
            st.transient_failures += 1;
            return Err(transient_error("sync"));
        }
        if st.drop_syncs {
            st.dropped_syncs += 1;
            return Ok(()); // the lie: success without durability
        }
        st.syncs += 1;
        let file = st.files.get_mut(&self.name).ok_or_else(|| {
            GdmError::Storage(format!("file removed under handle: {}", self.name))
        })?;
        file.synced_len = file.data.len();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.fs
            .state
            .borrow()
            .files
            .get(&self.name)
            .map_or(0, |f| f.data.len() as u64)
    }
}

impl WalFs for FaultFs {
    type File = FaultFile;

    fn create(&self, name: &str) -> Result<FaultFile> {
        self.state
            .borrow_mut()
            .files
            .insert(name.to_owned(), FileState::default());
        Ok(FaultFile {
            fs: self.clone(),
            name: name.to_owned(),
        })
    }

    fn open_truncated(&self, name: &str, len: u64) -> Result<FaultFile> {
        let mut st = self.state.borrow_mut();
        let file = st
            .files
            .get_mut(name)
            .ok_or_else(|| GdmError::Storage(format!("no such file: {name}")))?;
        file.data.truncate(len as usize);
        file.synced_len = file.synced_len.min(len as usize);
        drop(st);
        Ok(FaultFile {
            fs: self.clone(),
            name: name.to_owned(),
        })
    }

    fn read(&self, name: &str) -> Result<Vec<u8>> {
        self.state
            .borrow()
            .files
            .get(name)
            .map(|f| f.data.clone())
            .ok_or_else(|| GdmError::Storage(format!("no such file: {name}")))
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.state.borrow().files.keys().cloned().collect())
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.state.borrow_mut().files.remove(name);
        Ok(())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<()> {
        // Atomic by construction: the whole contents land (and count as
        // synced) or the call never happened.
        self.install(name, bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_discards_unsynced_tail() {
        let fs = FaultFs::new();
        let mut f = fs.create("seg").unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        f.append(b" volatile").unwrap();
        fs.crash();
        assert_eq!(fs.read("seg").unwrap(), b"durable");
        // The handle keeps working after the crash.
        f.append(b"!").unwrap();
        assert_eq!(fs.read("seg").unwrap(), b"durable!");
    }

    #[test]
    fn dropped_syncs_lose_data_on_crash() {
        let fs = FaultFs::new();
        let mut f = fs.create("seg").unwrap();
        fs.set_drop_syncs(true);
        f.append(b"believed durable").unwrap();
        f.sync().unwrap(); // reports success
        fs.crash();
        assert_eq!(fs.read("seg").unwrap(), b"");
        assert_eq!(fs.dropped_sync_count(), 1);
        assert_eq!(fs.sync_count(), 0);
    }

    #[test]
    fn bit_flip_and_truncate() {
        let fs = FaultFs::new();
        fs.install("seg", &[0b0000_0000, 0xff]);
        fs.flip_bit("seg", 0, 3);
        assert_eq!(fs.read("seg").unwrap(), vec![0b0000_1000, 0xff]);
        fs.truncate_to("seg", 1);
        assert_eq!(fs.read("seg").unwrap().len(), 1);
    }

    #[test]
    fn open_truncated_cuts_tail() {
        let fs = FaultFs::new();
        fs.install("seg", b"0123456789");
        let mut f = fs.open_truncated("seg", 4).unwrap();
        assert_eq!(f.len(), 4);
        f.append(b"X").unwrap();
        assert_eq!(fs.read("seg").unwrap(), b"0123X");
    }
}
