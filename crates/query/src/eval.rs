//! Evaluates the shared logical algebra over any attributed graph.
//!
//! The pipeline: match the fixed pattern (VF2 from `gdm-algo`), expand
//! variable-length path constraints (label-filtered BFS in the hop
//! range), filter, project (row or aggregate), order, skip, limit.
//! Bare variables project as node ids; `var.key` projects the bound
//! node's property; the pseudo-properties `id`, `label`, and `degree`
//! are always available (the paper's engines all expose them through
//! their APIs).

use crate::ast::{BinOp, Expr, Projection, SelectQuery};
use gdm_algo::pattern::{match_pattern, Binding};
use gdm_algo::summary::aggregate;
use gdm_core::{AttributedView, FxHashSet, GdmError, NodeId, Result, Value};
use std::collections::VecDeque;

/// A tabular query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Column names, in projection order.
    pub columns: Vec<String>,
    /// Rows of values.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value at `(row, column-name)`, if present.
    pub fn get(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row)?.get(idx)
    }

    /// Renders the result as simple aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(ToString::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Executes `query` against `g` through the cost-based planner:
/// equality predicates are pushed into the pattern, each variable is
/// seeded from the view's indexes when they can bound its candidates,
/// and variables are matched smallest-domain first. Result rows are
/// identical to [`evaluate_select_unplanned`]'s.
pub fn evaluate_select<G: AttributedView + ?Sized>(
    g: &G,
    query: &SelectQuery,
) -> Result<ResultSet> {
    crate::plan::evaluate_select_planned(g, query).map(|(rs, _)| rs)
}

/// Executes `query` without planning: full VF2 over all nodes, the
/// WHERE clause applied only after matching. Kept as the reference
/// path the property tests compare the planner against.
pub fn evaluate_select_unplanned<G: AttributedView + ?Sized>(
    g: &G,
    query: &SelectQuery,
) -> Result<ResultSet> {
    query.validate()?;
    // 1. Fixed pattern.
    let bindings = match_pattern(g, &query.pattern);
    finish_select(g, query, bindings)
}

/// Steps 2–7 of the pipeline, shared by the planned and unplanned
/// paths: var-length paths, filter, deterministic sort, projection,
/// distinct, order, skip/limit. The deterministic sort guarantees both
/// paths produce byte-identical row order regardless of how the
/// bindings were found.
pub(crate) fn finish_select<G: AttributedView + ?Sized>(
    g: &G,
    query: &SelectQuery,
    mut bindings: Vec<Binding>,
) -> Result<ResultSet> {
    // 2. Variable-length path constraints.
    for vp in &query.var_paths {
        bindings.retain(|b| {
            let from = b[&vp.from];
            let to = b[&vp.to];
            within_hops(g, from, to, vp.label.as_deref(), vp.min, vp.max)
        });
    }
    // 3. Filter.
    if let Some(filter) = &query.filter {
        let mut kept = Vec::with_capacity(bindings.len());
        for b in bindings {
            if eval_expr(g, &b, filter)?.as_bool().unwrap_or(false) {
                kept.push(b);
            }
        }
        bindings = kept;
    }
    // Deterministic row order before projection.
    bindings.sort_by_key(|b| {
        let mut key: Vec<(String, u64)> = b.iter().map(|(k, v)| (k.clone(), v.raw())).collect();
        key.sort();
        key
    });

    let columns: Vec<String> = query
        .projections
        .iter()
        .map(|p| p.name().to_owned())
        .collect();

    // 4. Aggregate, grouped, or row projection.
    let is_aggregate = query.projections.iter().any(Projection::is_aggregate);
    // `ORDER BY alias` sorts by a projected column after projection;
    // detect it up front so group keys are not evaluated for it.
    let order_column_idx: Option<usize> = match &query.order_by {
        Some((Expr::Var(name), _)) => columns.iter().position(|c| c == name),
        _ => None,
    };
    let mut group_order_keys: Vec<Value> = Vec::new();
    let mut rows: Vec<Vec<Value>> = if is_aggregate && !query.group_by.is_empty() {
        // Group bindings by the grouping-key tuple (order-preserving
        // over the sorted bindings, so output order is deterministic).
        let mut groups: Vec<(Vec<Value>, Vec<&Binding>)> = Vec::new();
        for b in &bindings {
            let key: Vec<Value> = query
                .group_by
                .iter()
                .map(|e| eval_expr(g, b, e))
                .collect::<Result<_>>()?;
            match groups.iter_mut().find(|(k, _)| {
                k.len() == key.len() && k.iter().zip(&key).all(|(a, c)| a.loose_eq(c))
            }) {
                Some((_, members)) => members.push(b),
                None => groups.push((key, vec![b])),
            }
        }
        let mut out = Vec::with_capacity(groups.len());
        for (_, members) in &groups {
            let representative = members[0];
            if order_column_idx.is_none() {
                if let Some((key_expr, _)) = &query.order_by {
                    group_order_keys.push(eval_expr(g, representative, key_expr)?);
                }
            }
            let mut row = Vec::with_capacity(query.projections.len());
            for p in &query.projections {
                match p {
                    Projection::Expr { expr, .. } => {
                        // Validated to be a grouping key: constant
                        // within the group.
                        row.push(eval_expr(g, representative, expr)?);
                    }
                    Projection::Aggregate { agg, expr, .. } => {
                        let values: Vec<Value> = match expr {
                            None => vec![Value::Int(1); members.len()],
                            Some(e) => members
                                .iter()
                                .map(|b| eval_expr(g, b, e))
                                .collect::<Result<_>>()?,
                        };
                        row.push(aggregate(*agg, &values)?);
                    }
                }
            }
            out.push(row);
        }
        out
    } else if is_aggregate {
        let mut row = Vec::with_capacity(query.projections.len());
        for p in &query.projections {
            let Projection::Aggregate { agg, expr, .. } = p else {
                unreachable!("validate() rejects mixed projections");
            };
            let values: Vec<Value> = match expr {
                None => vec![Value::Int(1); bindings.len()],
                Some(e) => bindings
                    .iter()
                    .map(|b| eval_expr(g, b, e))
                    .collect::<Result<_>>()?,
            };
            row.push(aggregate(*agg, &values)?);
        }
        vec![row]
    } else {
        let mut out = Vec::with_capacity(bindings.len());
        for b in &bindings {
            let mut row = Vec::with_capacity(query.projections.len());
            for p in &query.projections {
                let Projection::Expr { expr, .. } = p else {
                    unreachable!("validate() rejects mixed projections");
                };
                row.push(eval_expr(g, b, expr)?);
            }
            out.push(row);
        }
        out
    };

    // 5. Distinct.
    if query.distinct {
        let mut seen: FxHashSet<String> = FxHashSet::default();
        rows.retain(|r| seen.insert(format!("{r:?}")));
    }

    // 6. Order by (only meaningful for row projections, but harmless
    // otherwise). The sort key is evaluated against bindings for row
    // queries; for simplicity we sort rows by the projected columns
    // when the key expression equals a projection, else re-evaluate.
    if let Some((key_expr, asc)) = &query.order_by {
        // Ordering by a projected column's alias (`ORDER BY total`)
        // sorts the output rows directly — this also covers ordering
        // by aggregate results.
        if let Some(idx) = order_column_idx {
            rows.sort_by(|a, b| a[idx].total_cmp(&b[idx]));
            if !asc {
                rows.reverse();
            }
        } else {
            let keys: Option<Vec<Value>> = if !is_aggregate {
                // Pair rows with their source binding to evaluate the key.
                Some(
                    bindings
                        .iter()
                        .map(|b| eval_expr(g, b, key_expr))
                        .collect::<Result<_>>()?,
                )
            } else if !query.group_by.is_empty() {
                // Grouped: keys were computed per group representative
                // (valid for grouping-key expressions).
                Some(group_order_keys)
            } else {
                None // single aggregate row: nothing to order
            };
            if let Some(keys) = keys {
                let mut paired: Vec<(Value, Vec<Value>)> = keys.into_iter().zip(rows).collect();
                paired.sort_by(|a, b| a.0.total_cmp(&b.0));
                if !asc {
                    paired.reverse();
                }
                rows = paired.into_iter().map(|(_, r)| r).collect();
            }
        }
    }

    // 7. Skip / limit.
    if query.skip > 0 {
        rows.drain(..query.skip.min(rows.len()));
    }
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }

    Ok(ResultSet { columns, rows })
}

/// Is `to` reachable from `from` in `min..=max` hops over edges whose
/// label matches `label` (any label when `None`)?
fn within_hops<G: AttributedView + ?Sized>(
    g: &G,
    from: NodeId,
    to: NodeId,
    label: Option<&str>,
    min: usize,
    max: usize,
) -> bool {
    // States are (node, depth): a walk may need to revisit a node at a
    // greater depth to satisfy `min`, so nodes are not globally marked.
    let mut seen: FxHashSet<(u64, usize)> = FxHashSet::default();
    seen.insert((from.raw(), 0));
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::from([(from, 0)]);
    while let Some((n, d)) = queue.pop_front() {
        if d >= max {
            continue;
        }
        let mut hit = false;
        g.visit_out_edges(n, &mut |e| {
            let label_ok = match label {
                None => true,
                Some(want) => e
                    .label
                    .and_then(|s| g.label_text(s))
                    .is_some_and(|t| t == want),
            };
            if !label_ok {
                return;
            }
            if e.to == to && d + 1 >= min {
                hit = true;
            }
            if seen.insert((e.to.raw(), d + 1)) {
                queue.push_back((e.to, d + 1));
            }
        });
        if hit {
            return true;
        }
    }
    false
}

/// Evaluates `expr` under `binding`.
pub fn eval_expr<G: AttributedView + ?Sized>(
    g: &G,
    binding: &Binding,
    expr: &Expr,
) -> Result<Value> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(var) => {
            let node = lookup(binding, var)?;
            Ok(Value::Int(node.raw() as i64))
        }
        Expr::Prop(var, key) => {
            let node = lookup(binding, var)?;
            Ok(match key.as_str() {
                "id" => Value::Int(node.raw() as i64),
                "label" => g
                    .node_label(node)
                    .and_then(|s| g.label_text(s))
                    .map(|t| Value::Str(t.to_owned()))
                    .unwrap_or(Value::Null),
                "degree" => Value::Int(g.degree(node) as i64),
                _ => g.node_property(node, key).unwrap_or(Value::Null),
            })
        }
        Expr::Not(inner) => {
            let v = eval_expr(g, binding, inner)?;
            match v.as_bool() {
                Some(b) => Ok(Value::Bool(!b)),
                None => Err(GdmError::Type {
                    expected: "bool",
                    got: v.type_name().to_owned(),
                }),
            }
        }
        Expr::Bin(op, lhs, rhs) => {
            let l = eval_expr(g, binding, lhs)?;
            // Short-circuit logic.
            match op {
                BinOp::And => {
                    if !l.as_bool().unwrap_or(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval_expr(g, binding, rhs)?;
                    return Ok(Value::Bool(r.as_bool().unwrap_or(false)));
                }
                BinOp::Or => {
                    if l.as_bool().unwrap_or(false) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval_expr(g, binding, rhs)?;
                    return Ok(Value::Bool(r.as_bool().unwrap_or(false)));
                }
                _ => {}
            }
            let r = eval_expr(g, binding, rhs)?;
            match op {
                BinOp::Eq => Ok(Value::Bool(l.loose_eq(&r))),
                BinOp::Ne => Ok(Value::Bool(!l.loose_eq(&r))),
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    // Comparisons involving nulls are false, SQL-style.
                    let Some(ord) = l.compare(&r) else {
                        return Ok(Value::Bool(false));
                    };
                    let b = match op {
                        BinOp::Lt => ord.is_lt(),
                        BinOp::Le => ord.is_le(),
                        BinOp::Gt => ord.is_gt(),
                        BinOp::Ge => ord.is_ge(),
                        _ => unreachable!(),
                    };
                    Ok(Value::Bool(b))
                }
                BinOp::Add => l.add(&r),
                BinOp::Sub => l.sub(&r),
                BinOp::Mul => l.mul(&r),
                BinOp::Div => l.div(&r),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
    }
}

fn lookup(binding: &Binding, var: &str) -> Result<NodeId> {
    binding
        .get(var)
        .copied()
        .ok_or_else(|| GdmError::InvalidArgument(format!("unbound variable {var:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_algo::pattern::PatternNode;
    use gdm_algo::summary::Aggregate;
    use gdm_core::props;
    use gdm_graphs::PropertyGraph;

    fn social() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let ada = g.add_node("person", props! { "name" => "ada", "age" => 36 });
        let bob = g.add_node("person", props! { "name" => "bob", "age" => 25 });
        let cleo = g.add_node("person", props! { "name" => "cleo", "age" => 41 });
        let acme = g.add_node("company", props! { "name" => "acme" });
        g.add_edge(ada, bob, "knows", props! {}).unwrap();
        g.add_edge(bob, cleo, "knows", props! {}).unwrap();
        g.add_edge(ada, acme, "works_at", props! {}).unwrap();
        g
    }

    fn select_people() -> SelectQuery {
        let mut q = SelectQuery::default();
        q.pattern.node(PatternNode::var("p").with_label("person"));
        q.projections.push(Projection::Expr {
            name: "name".into(),
            expr: Expr::Prop("p".into(), "name".into()),
        });
        q
    }

    #[test]
    fn project_properties() {
        let g = social();
        let rs = evaluate_select(&g, &select_people()).unwrap();
        assert_eq!(rs.columns, vec!["name"]);
        let names: Vec<String> = rs
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["ada", "bob", "cleo"]);
    }

    #[test]
    fn filter_rows() {
        let g = social();
        let mut q = select_people();
        q.filter = Some(Expr::bin(
            BinOp::Gt,
            Expr::Prop("p".into(), "age".into()),
            Expr::Lit(Value::from(30)),
        ));
        let rs = evaluate_select(&g, &q).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn aggregates() {
        let g = social();
        let mut q = select_people();
        q.projections = vec![
            Projection::Aggregate {
                name: "n".into(),
                agg: Aggregate::Count,
                expr: None,
            },
            Projection::Aggregate {
                name: "avg_age".into(),
                agg: Aggregate::Avg,
                expr: Some(Expr::Prop("p".into(), "age".into())),
            },
        ];
        let rs = evaluate_select(&g, &q).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(0, "n"), Some(&Value::from(3)));
        assert_eq!(rs.get(0, "avg_age"), Some(&Value::from(34.0)));
    }

    #[test]
    fn order_limit_skip() {
        let g = social();
        let mut q = select_people();
        q.order_by = Some((Expr::Prop("p".into(), "age".into()), false));
        q.limit = Some(2);
        let rs = evaluate_select(&g, &q).unwrap();
        let names: Vec<&str> = rs.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["cleo", "ada"]);

        q.skip = 1;
        q.limit = Some(1);
        let rs = evaluate_select(&g, &q).unwrap();
        assert_eq!(rs.rows[0][0], Value::from("ada"));
    }

    #[test]
    fn pattern_join() {
        let g = social();
        let mut q = SelectQuery::default();
        let a = q.pattern.node(PatternNode::var("a").with_label("person"));
        let b = q.pattern.node(PatternNode::var("b").with_label("person"));
        q.pattern.edge(a, b, Some("knows")).unwrap();
        q.projections.push(Projection::Expr {
            name: "pair".into(),
            expr: Expr::bin(
                BinOp::Add,
                Expr::Prop("a".into(), "name".into()),
                Expr::Prop("b".into(), "name".into()),
            ),
        });
        let rs = evaluate_select(&g, &q).unwrap();
        let mut pairs: Vec<String> = rs
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_owned())
            .collect();
        pairs.sort();
        assert_eq!(pairs, vec!["adabob", "bobcleo"]);
    }

    #[test]
    fn variable_length_paths() {
        let g = social();
        let mut q = SelectQuery::default();
        q.pattern
            .node(PatternNode::var("a").with_prop("name", "ada"));
        q.pattern.node(PatternNode::var("b").with_label("person"));
        q.var_paths.push(crate::ast::VarLengthEdge {
            from: "a".into(),
            to: "b".into(),
            label: Some("knows".into()),
            min: 1,
            max: 2,
        });
        q.projections.push(Projection::Expr {
            name: "name".into(),
            expr: Expr::Prop("b".into(), "name".into()),
        });
        let rs = evaluate_select(&g, &q).unwrap();
        let mut names: Vec<&str> = rs.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        names.sort();
        assert_eq!(names, vec!["bob", "cleo"]);

        // Narrow the range to exactly 2 hops.
        q.var_paths[0].min = 2;
        let rs = evaluate_select(&g, &q).unwrap();
        assert_eq!(rs.rows[0][0], Value::from("cleo"));
    }

    #[test]
    fn pseudo_properties() {
        let g = social();
        let mut q = select_people();
        q.projections = vec![
            Projection::Expr {
                name: "label".into(),
                expr: Expr::Prop("p".into(), "label".into()),
            },
            Projection::Expr {
                name: "degree".into(),
                expr: Expr::Prop("p".into(), "degree".into()),
            },
        ];
        let rs = evaluate_select(&g, &q).unwrap();
        assert_eq!(rs.rows[0][0], Value::from("person"));
        assert_eq!(rs.rows[0][1], Value::from(2)); // ada: knows + works_at
    }

    #[test]
    fn distinct_removes_duplicates() {
        let g = social();
        let mut q = select_people();
        q.projections = vec![Projection::Expr {
            name: "label".into(),
            expr: Expr::Prop("p".into(), "label".into()),
        }];
        q.distinct = true;
        let rs = evaluate_select(&g, &q).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn missing_property_is_null() {
        let g = social();
        let mut q = select_people();
        q.projections = vec![Projection::Expr {
            name: "x".into(),
            expr: Expr::Prop("p".into(), "salary".into()),
        }];
        let rs = evaluate_select(&g, &q).unwrap();
        assert!(rs.rows.iter().all(|r| r[0].is_null()));
        // Comparisons with null are false, so filtering drops all rows.
        let mut q2 = select_people();
        q2.filter = Some(Expr::bin(
            BinOp::Gt,
            Expr::Prop("p".into(), "salary".into()),
            Expr::Lit(Value::from(0)),
        ));
        assert!(evaluate_select(&g, &q2).unwrap().is_empty());
    }

    #[test]
    fn result_text_rendering() {
        let g = social();
        let rs = evaluate_select(&g, &select_people()).unwrap();
        let text = rs.to_text();
        assert!(text.contains("name"));
        assert!(text.contains("ada"));
    }
}
