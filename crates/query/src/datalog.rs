//! Positive Datalog with semi-naive evaluation — the stand-in for
//! AllegroGraph's Prolog reasoning.
//!
//! "AllegroGraph supports reasoning via its Prolog implementation"
//! (Table V, "Reasoning"). The logical capability the paper probes is
//! rule-based inference over the stored graph; positive Datalog covers
//! it: facts come from triples (`pred(subject, object)`), rules derive
//! new facts, and queries retrieve bindings against the fixpoint.
//!
//! Syntax (variables start uppercase, constants lowercase or quoted):
//!
//! ```text
//! rule  := head ':-' atom (',' atom)* '.' | fact '.'
//! atom  := pred '(' term (',' term)* ')'
//! ```

use crate::lex::{Cursor, TokenKind};
use gdm_core::{FxHashMap, FxHashSet, GdmError, Result};
use gdm_graphs::rdf::RdfGraph;

const DIALECT: &str = "datalog";

/// A Datalog term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DlTerm {
    /// A variable (uppercase initial).
    Var(String),
    /// A constant.
    Const(String),
}

/// A predicate applied to terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DlAtom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<DlTerm>,
}

/// A rule: `head :- body` (facts have an empty body).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Derived atom.
    pub head: DlAtom,
    /// Conditions.
    pub body: Vec<DlAtom>,
}

/// A ground fact.
pub type Fact = (String, Vec<String>);

/// A Datalog program: rules plus a fact base, evaluated to fixpoint.
#[derive(Debug, Default, Clone)]
pub struct Program {
    rules: Vec<Rule>,
    facts: FxHashSet<Fact>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and adds rules (and/or facts) from source text.
    pub fn add_rules(&mut self, src: &str) -> Result<()> {
        for rule in parse_rules(src)? {
            if rule.body.is_empty() {
                let fact = ground_fact(&rule.head)?;
                self.facts.insert(fact);
            } else {
                validate_rule(&rule)?;
                self.rules.push(rule);
            }
        }
        Ok(())
    }

    /// Adds a ground fact directly.
    pub fn add_fact(&mut self, pred: impl Into<String>, args: &[&str]) {
        self.facts
            .insert((pred.into(), args.iter().map(|s| (*s).to_owned()).collect()));
    }

    /// Imports every triple of `g` as `predicate(subject, object)`.
    pub fn load_rdf(&mut self, g: &RdfGraph) {
        for (s, p, o) in g.match_terms(None, None, None) {
            self.facts.insert((p.text(), vec![s.text(), o.text()]));
        }
    }

    /// Number of facts currently stored (before or after evaluation).
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// Computes the fixpoint by semi-naive evaluation: each round only
    /// joins against facts newly derived in the previous round.
    pub fn evaluate(&mut self) {
        let mut delta: FxHashSet<Fact> = self.facts.clone();
        while !delta.is_empty() {
            let mut fresh: FxHashSet<Fact> = FxHashSet::default();
            for rule in &self.rules {
                // Semi-naive: at least one body atom must match a
                // delta fact; try each position as the delta slot.
                for delta_slot in 0..rule.body.len() {
                    derive(rule, delta_slot, &self.facts, &delta, &mut fresh);
                }
            }
            fresh.retain(|f| !self.facts.contains(f));
            for f in &fresh {
                self.facts.insert(f.clone());
            }
            delta = fresh;
        }
    }

    /// Queries the fact base (call [`Program::evaluate`] first).
    /// Variables in `goal` bind; returns one row per match with values
    /// in argument order for the variables, deduplicated and sorted.
    pub fn query(&self, goal: &DlAtom) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (pred, args) in &self.facts {
            if *pred != goal.pred || args.len() != goal.args.len() {
                continue;
            }
            let mut bind: FxHashMap<&str, &str> = FxHashMap::default();
            let mut row = Vec::new();
            let mut ok = true;
            for (pat, actual) in goal.args.iter().zip(args.iter()) {
                match pat {
                    DlTerm::Const(c) => {
                        if c != actual {
                            ok = false;
                            break;
                        }
                    }
                    DlTerm::Var(v) => match bind.get(v.as_str()) {
                        Some(&prev) if prev != actual.as_str() => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            bind.insert(v, actual);
                            row.push(actual.clone());
                        }
                    },
                }
            }
            if ok {
                rows.push(row);
            }
        }
        rows.sort();
        rows.dedup();
        rows
    }

    /// Convenience: parse `goal` (e.g. `ancestor(X, cleo)`) and query.
    pub fn query_str(&self, goal: &str) -> Result<Vec<Vec<String>>> {
        let mut c = Cursor::lex(DIALECT, goal, false)?;
        let atom = parse_atom(&mut c)?;
        if !c.at_eof() {
            return Err(c.error("unexpected trailing input after goal"));
        }
        Ok(self.query(&atom))
    }
}

fn ground_fact(atom: &DlAtom) -> Result<Fact> {
    let mut args = Vec::with_capacity(atom.args.len());
    for t in &atom.args {
        match t {
            DlTerm::Const(c) => args.push(c.clone()),
            DlTerm::Var(v) => {
                return Err(GdmError::InvalidArgument(format!(
                    "fact contains variable {v}"
                )))
            }
        }
    }
    Ok((atom.pred.clone(), args))
}

fn validate_rule(rule: &Rule) -> Result<()> {
    // Range restriction: every head variable must occur in the body.
    for t in &rule.head.args {
        if let DlTerm::Var(v) = t {
            let bound = rule.body.iter().any(|a| {
                a.args
                    .iter()
                    .any(|bt| matches!(bt, DlTerm::Var(bv) if bv == v))
            });
            if !bound {
                return Err(GdmError::InvalidArgument(format!(
                    "head variable {v} does not occur in the rule body"
                )));
            }
        }
    }
    Ok(())
}

/// Tries all ways to satisfy `rule` where the atom at `delta_slot`
/// matches a delta fact and the rest match any facts.
fn derive(
    rule: &Rule,
    delta_slot: usize,
    all: &FxHashSet<Fact>,
    delta: &FxHashSet<Fact>,
    out: &mut FxHashSet<Fact>,
) {
    fn go(
        rule: &Rule,
        idx: usize,
        delta_slot: usize,
        all: &FxHashSet<Fact>,
        delta: &FxHashSet<Fact>,
        binding: &mut FxHashMap<String, String>,
        out: &mut FxHashSet<Fact>,
    ) {
        if idx == rule.body.len() {
            let args: Vec<String> = rule
                .head
                .args
                .iter()
                .map(|t| match t {
                    DlTerm::Const(c) => c.clone(),
                    DlTerm::Var(v) => binding[v].clone(),
                })
                .collect();
            out.insert((rule.head.pred.clone(), args));
            return;
        }
        let atom = &rule.body[idx];
        let source = if idx == delta_slot { delta } else { all };
        for (pred, args) in source {
            if *pred != atom.pred || args.len() != atom.args.len() {
                continue;
            }
            let mut added: Vec<String> = Vec::new();
            let mut ok = true;
            for (pat, actual) in atom.args.iter().zip(args.iter()) {
                match pat {
                    DlTerm::Const(c) => {
                        if c != actual {
                            ok = false;
                            break;
                        }
                    }
                    DlTerm::Var(v) => match binding.get(v) {
                        Some(prev) if prev != actual => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            binding.insert(v.clone(), actual.clone());
                            added.push(v.clone());
                        }
                    },
                }
            }
            if ok {
                go(rule, idx + 1, delta_slot, all, delta, binding, out);
            }
            for v in added {
                binding.remove(&v);
            }
        }
    }
    let mut binding = FxHashMap::default();
    go(rule, 0, delta_slot, all, delta, &mut binding, out);
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses a rule/fact list.
pub fn parse_rules(src: &str) -> Result<Vec<Rule>> {
    let mut c = Cursor::lex(DIALECT, src, false)?;
    let mut rules = Vec::new();
    while !c.at_eof() {
        let head = parse_atom(&mut c)?;
        let mut body = Vec::new();
        if c.eat_punct(":-") {
            loop {
                body.push(parse_atom(&mut c)?);
                if !c.eat_punct(",") {
                    break;
                }
            }
        }
        c.expect_punct(".")?;
        rules.push(Rule { head, body });
    }
    Ok(rules)
}

fn parse_atom(c: &mut Cursor) -> Result<DlAtom> {
    let pred = match c.bump() {
        TokenKind::Ident(s) => s,
        TokenKind::Str(s) => s,
        other => return Err(c.error(format!("expected predicate, found {other:?}"))),
    };
    c.expect_punct("(")?;
    let mut args = Vec::new();
    loop {
        let term = match c.bump() {
            TokenKind::Ident(s) => {
                if s.chars().next().is_some_and(char::is_uppercase) {
                    DlTerm::Var(s)
                } else {
                    DlTerm::Const(s)
                }
            }
            TokenKind::Str(s) => DlTerm::Const(s),
            TokenKind::Int(i) => DlTerm::Const(i.to_string()),
            other => return Err(c.error(format!("expected term, found {other:?}"))),
        };
        args.push(term);
        if !c.eat_punct(",") {
            break;
        }
    }
    c.expect_punct(")")?;
    Ok(DlAtom { pred, args })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_graphs::rdf::Term;

    fn ancestors() -> Program {
        let mut p = Program::new();
        p.add_rules(
            "parent(ana, ben). parent(ben, cleo). parent(cleo, dan).\n\
             ancestor(X, Y) :- parent(X, Y).\n\
             ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).",
        )
        .unwrap();
        p.evaluate();
        p
    }

    #[test]
    fn transitive_closure() {
        let p = ancestors();
        let rows = p.query_str("ancestor(ana, X)").unwrap();
        let descendants: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(descendants, vec!["ben", "cleo", "dan"]);
    }

    #[test]
    fn ground_queries() {
        let p = ancestors();
        assert_eq!(p.query_str("ancestor(ana, dan)").unwrap().len(), 1);
        assert_eq!(p.query_str("ancestor(dan, ana)").unwrap().len(), 0);
    }

    #[test]
    fn repeated_variables_in_goal() {
        let mut p = Program::new();
        p.add_rules("likes(a, a). likes(a, b).").unwrap();
        p.evaluate();
        // likes(X, X) must only match the reflexive fact.
        let rows = p.query_str("likes(X, X)").unwrap();
        assert_eq!(rows, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn join_rule() {
        let mut p = Program::new();
        p.add_rules(
            "knows(a, b). knows(b, c). knows(c, a).\n\
             triangle(X, Y, Z) :- knows(X, Y), knows(Y, Z), knows(Z, X).",
        )
        .unwrap();
        p.evaluate();
        assert_eq!(p.query_str("triangle(X, Y, Z)").unwrap().len(), 3);
    }

    #[test]
    fn rdf_facts_feed_rules() {
        let mut g = RdfGraph::new();
        let p = Term::iri("parent");
        g.add(&Term::iri("ana"), &p, &Term::iri("ben")).unwrap();
        g.add(&Term::iri("ben"), &p, &Term::iri("cleo")).unwrap();
        let mut prog = Program::new();
        prog.load_rdf(&g);
        prog.add_rules("grandparent(X, Z) :- parent(X, Y), parent(Y, Z).")
            .unwrap();
        prog.evaluate();
        let rows = prog.query_str("grandparent(X, Y)").unwrap();
        assert_eq!(rows, vec![vec!["ana".to_string(), "cleo".to_string()]]);
    }

    #[test]
    fn unsafe_rules_rejected() {
        let mut p = Program::new();
        let err = p.add_rules("broken(X, Y) :- parent(X, X2).").unwrap_err();
        assert!(err.to_string().contains("does not occur"));
    }

    #[test]
    fn facts_with_variables_rejected() {
        let mut p = Program::new();
        assert!(p.add_rules("parent(X, ben).").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_rules("parent(a, b)").is_err(), "missing period");
        assert!(parse_rules("parent a, b).").is_err());
        assert!(parse_rules("p() .").is_err());
    }

    #[test]
    fn semi_naive_handles_cycles() {
        let mut p = Program::new();
        p.add_rules(
            "edge(a, b). edge(b, c). edge(c, a).\n\
             reach(X, Y) :- edge(X, Y).\n\
             reach(X, Z) :- reach(X, Y), edge(Y, Z).",
        )
        .unwrap();
        p.evaluate();
        // Full 3x3 reachability on the cycle.
        assert_eq!(p.query_str("reach(X, Y)").unwrap().len(), 9);
    }
}
