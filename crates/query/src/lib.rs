//! # gdm-query
//!
//! The query facilities of the paper's Tables II and V.
//!
//! The paper observes that current graph databases favour APIs over
//! query languages, and that the few languages that exist are
//! incomparable surface syntaxes: SPARQL on AllegroGraph, Cypher (then
//! in development, marked *partial*) on Neo4j, and SQL-flavoured
//! dialects on Sones and G-Store. To compare them honestly, every
//! dialect here parses to **one logical algebra** ([`ast`]) evaluated
//! by **one engine** ([`eval`]) — so the comparison measures surface
//! differences, exactly the paper's framing:
//!
//! * [`cypher`] — `MATCH (a:L {k: v})-[:T*1..3]->(b) WHERE … RETURN …`
//!   (partial, mirroring the paper's `◦` for Neo4j),
//! * [`sparql`] — `SELECT ?x WHERE { ?x <p> ?y . FILTER(…) }` over RDF
//!   triple stores (its own evaluator: triple-pattern joins),
//! * [`gql`] — the Sones-style SQL dialect with DDL (`CREATE VERTEX
//!   TYPE`), DML (`INSERT VERTEX`), and queries (`FROM Person p SELECT …`),
//! * [`gsql`] — the G-Store-style path-query dialect (`SELECT SHORTEST
//!   PATH FROM … TO …`),
//! * [`datalog`] — positive Datalog with semi-naive evaluation, the
//!   stand-in for AllegroGraph's Prolog reasoning (Table V's
//!   "Reasoning" column).
//!
//! [`plan`] sits between parsing and evaluation: it pushes WHERE
//! equality predicates into the pattern, chooses index seeding vs
//! scanning per variable from the view's index cardinalities, and
//! records an [`plan::ExplainPlan`] — because the dialects share the
//! algebra, the one planner accelerates all of them.

pub mod ast;
pub mod cache;
pub mod cypher;
pub mod datalog;
pub mod eval;
pub mod gql;
pub mod gsql;
pub mod lex;
pub mod plan;
pub mod sparql;

pub use ast::{BinOp, Expr, Projection, SelectQuery, VarLengthEdge};
pub use cache::PlanCache;
pub use eval::{evaluate_select, evaluate_select_unplanned, ResultSet};
pub use plan::{
    evaluate_select_planned, execute_planned_governed, plan_select, Access, ExplainPlan, PlanStep,
    PlannedSelect,
};
