//! The Sones-style SQL graph dialect ("GraphQL", 2010 vintage).
//!
//! The paper: "Sones ... defines its own graph query language", and
//! Table II credits Sones with all three database languages — DDL,
//! DML, and a query language. This dialect reproduces that surface:
//!
//! ```text
//! ddl    := CREATE VERTEX TYPE name [ATTRIBUTES '(' (type name [UNIQUE] [MANDATORY]),* ')']
//!         | CREATE EDGE TYPE name FROM name TO name
//! dml    := INSERT INTO name VALUES '(' (attr '=' literal),* ')'
//!         | INSERT EDGE name FROM name '(' attr '=' literal ')'
//!                            TO   name '(' attr '=' literal ')'
//!                            [VALUES '(' ... ')']
//! query  := FROM name alias SELECT proj (',' proj)*
//!           [WHERE expr] [ORDER BY expr [DESC]] [LIMIT n] [OFFSET n]
//! ```

use crate::ast::{Expr, Projection, SelectQuery};
use crate::cypher; // expression grammar is shared at the token level
use crate::lex::{Cursor, TokenKind};
use gdm_algo::pattern::PatternNode;
use gdm_algo::summary::parse_aggregate;
use gdm_core::{PropertyMap, Result, Value};

const DIALECT: &str = "gql";

/// An attribute declaration in `CREATE VERTEX TYPE`.
#[derive(Debug, Clone, PartialEq)]
pub struct GqlAttribute {
    /// Attribute name.
    pub name: String,
    /// Declared type name (resolved by the engine against
    /// `gdm_schema::ValueType`).
    pub type_name: String,
    /// UNIQUE marker.
    pub unique: bool,
    /// MANDATORY marker.
    pub mandatory: bool,
}

/// A parsed GQL statement.
#[derive(Debug, Clone)]
pub enum GqlStatement {
    /// `CREATE VERTEX TYPE …`
    CreateVertexType {
        /// Type name.
        name: String,
        /// Declared attributes.
        attributes: Vec<GqlAttribute>,
    },
    /// `CREATE EDGE TYPE … FROM … TO …`
    CreateEdgeType {
        /// Type name.
        name: String,
        /// Source vertex type.
        from: String,
        /// Target vertex type.
        to: String,
    },
    /// `INSERT INTO type VALUES (…)`
    InsertVertex {
        /// Vertex type.
        type_name: String,
        /// Attribute values.
        props: PropertyMap,
    },
    /// `INSERT EDGE type FROM … TO …`
    InsertEdge {
        /// Edge type.
        type_name: String,
        /// Source selector: `(vertex type, attr, value)`.
        from: (String, String, Value),
        /// Target selector.
        to: (String, String, Value),
        /// Edge attribute values.
        props: PropertyMap,
    },
    /// `FROM type alias SELECT …` lowered to the shared algebra.
    Select(SelectQuery),
}

/// Parses one GQL statement.
pub fn parse(src: &str) -> Result<GqlStatement> {
    let mut c = Cursor::lex(DIALECT, src, false)?;
    if c.eat_keyword("create") {
        if c.eat_keyword("vertex") {
            c.expect_keyword("type")?;
            let name = c.expect_ident()?;
            let mut attributes = Vec::new();
            if c.eat_keyword("attributes") {
                c.expect_punct("(")?;
                loop {
                    let type_name = c.expect_ident()?;
                    let attr = c.expect_ident()?;
                    let mut a = GqlAttribute {
                        name: attr,
                        type_name,
                        unique: false,
                        mandatory: false,
                    };
                    loop {
                        if c.eat_keyword("unique") {
                            a.unique = true;
                        } else if c.eat_keyword("mandatory") {
                            a.mandatory = true;
                        } else {
                            break;
                        }
                    }
                    attributes.push(a);
                    if !c.eat_punct(",") {
                        break;
                    }
                }
                c.expect_punct(")")?;
            }
            expect_eof(&c)?;
            return Ok(GqlStatement::CreateVertexType { name, attributes });
        }
        if c.eat_keyword("edge") {
            c.expect_keyword("type")?;
            let name = c.expect_ident()?;
            c.expect_keyword("from")?;
            let from = c.expect_ident()?;
            c.expect_keyword("to")?;
            let to = c.expect_ident()?;
            expect_eof(&c)?;
            return Ok(GqlStatement::CreateEdgeType { name, from, to });
        }
        return Err(c.error("expected VERTEX or EDGE after CREATE"));
    }
    if c.eat_keyword("insert") {
        if c.eat_keyword("into") {
            let type_name = c.expect_ident()?;
            c.expect_keyword("values")?;
            let props = parse_assignments(&mut c)?;
            expect_eof(&c)?;
            return Ok(GqlStatement::InsertVertex { type_name, props });
        }
        if c.eat_keyword("edge") {
            let type_name = c.expect_ident()?;
            c.expect_keyword("from")?;
            let from = parse_selector(&mut c)?;
            c.expect_keyword("to")?;
            let to = parse_selector(&mut c)?;
            let props = if c.eat_keyword("values") {
                parse_assignments(&mut c)?
            } else {
                PropertyMap::new()
            };
            expect_eof(&c)?;
            return Ok(GqlStatement::InsertEdge {
                type_name,
                from,
                to,
                props,
            });
        }
        return Err(c.error("expected INTO or EDGE after INSERT"));
    }
    // Query form: FROM type alias SELECT ...
    c.expect_keyword("from")?;
    let type_name = c.expect_ident()?;
    let alias = c.expect_ident()?;
    let mut query = SelectQuery::default();
    query
        .pattern
        .node(PatternNode::var(alias.clone()).with_label(type_name));
    c.expect_keyword("select")?;
    if c.eat_keyword("distinct") {
        query.distinct = true;
    }
    loop {
        query.projections.push(parse_projection(&mut c)?);
        if !c.eat_punct(",") {
            break;
        }
    }
    if c.eat_keyword("where") {
        query.filter = Some(cypher_expr(&mut c)?);
    }
    if c.eat_keyword("group") {
        c.expect_keyword("by")?;
        loop {
            query.group_by.push(cypher_expr(&mut c)?);
            if !c.eat_punct(",") {
                break;
            }
        }
    }
    if c.eat_keyword("order") {
        c.expect_keyword("by")?;
        let key = cypher_expr(&mut c)?;
        let asc = if c.eat_keyword("desc") {
            false
        } else {
            c.eat_keyword("asc");
            true
        };
        query.order_by = Some((key, asc));
    }
    if c.eat_keyword("limit") {
        query.limit = Some(parse_count(&mut c)?);
    }
    if c.eat_keyword("offset") {
        query.skip = parse_count(&mut c)?;
    }
    expect_eof(&c)?;
    query.validate()?;
    Ok(GqlStatement::Select(query))
}

fn expect_eof(c: &Cursor) -> Result<()> {
    if c.at_eof() {
        Ok(())
    } else {
        Err(c.error(format!("unexpected trailing input: {:?}", c.peek())))
    }
}

fn parse_count(c: &mut Cursor) -> Result<usize> {
    match c.bump() {
        TokenKind::Int(i) if i >= 0 => Ok(i as usize),
        other => Err(c.error(format!("expected non-negative integer, found {other:?}"))),
    }
}

fn parse_assignments(c: &mut Cursor) -> Result<PropertyMap> {
    c.expect_punct("(")?;
    let mut props = PropertyMap::new();
    if !c.eat_punct(")") {
        loop {
            let key = c.expect_ident()?;
            c.expect_punct("=")?;
            let value = parse_literal(c)?;
            props.set(key, value);
            if !c.eat_punct(",") {
                break;
            }
        }
        c.expect_punct(")")?;
    }
    Ok(props)
}

fn parse_selector(c: &mut Cursor) -> Result<(String, String, Value)> {
    let type_name = c.expect_ident()?;
    c.expect_punct("(")?;
    let attr = c.expect_ident()?;
    c.expect_punct("=")?;
    let value = parse_literal(c)?;
    c.expect_punct(")")?;
    Ok((type_name, attr, value))
}

fn parse_literal(c: &mut Cursor) -> Result<Value> {
    match c.bump() {
        TokenKind::Str(s) => Ok(Value::Str(s)),
        TokenKind::Int(i) => Ok(Value::Int(i)),
        TokenKind::Float(f) => Ok(Value::Float(f)),
        TokenKind::Punct("-") => match c.bump() {
            TokenKind::Int(i) => Ok(Value::Int(-i)),
            TokenKind::Float(f) => Ok(Value::Float(-f)),
            other => Err(c.error(format!("expected number after '-', found {other:?}"))),
        },
        TokenKind::Ident(s) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
        TokenKind::Ident(s) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
        other => Err(c.error(format!("expected literal, found {other:?}"))),
    }
}

/// GQL shares Cypher's expression grammar; re-parse through it.
fn cypher_expr(c: &mut Cursor) -> Result<Expr> {
    cypher::parse_expr_for_dialect(c)
}

fn parse_projection(c: &mut Cursor) -> Result<Projection> {
    if let TokenKind::Ident(name) = c.peek().clone() {
        if let Some(agg) = parse_aggregate(&name) {
            c.bump();
            if c.eat_punct("(") {
                let expr = if c.eat_punct("*") {
                    None
                } else {
                    Some(cypher_expr(c)?)
                };
                c.expect_punct(")")?;
                let col = if c.eat_keyword("as") {
                    c.expect_ident()?
                } else {
                    name.to_lowercase()
                };
                return Ok(Projection::Aggregate {
                    name: col,
                    agg,
                    expr,
                });
            }
            // Plain identifier that happened to be an aggregate name.
            let expr = if c.eat_punct(".") {
                Expr::Prop(name.clone(), c.expect_ident()?)
            } else {
                Expr::Var(name.clone())
            };
            let col = if c.eat_keyword("as") {
                c.expect_ident()?
            } else {
                name
            };
            return Ok(Projection::Expr { name: col, expr });
        }
    }
    let expr = cypher_expr(c)?;
    let col = if c.eat_keyword("as") {
        c.expect_ident()?
    } else {
        match &expr {
            Expr::Var(v) => v.clone(),
            Expr::Prop(v, k) => format!("{v}.{k}"),
            _ => "expr".to_owned(),
        }
    };
    Ok(Projection::Expr { name: col, expr })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_select;
    use gdm_core::props;
    use gdm_graphs::PropertyGraph;

    #[test]
    fn ddl_vertex_type() {
        let stmt =
            parse("CREATE VERTEX TYPE Person ATTRIBUTES (String name UNIQUE MANDATORY, Int age)")
                .unwrap();
        match stmt {
            GqlStatement::CreateVertexType { name, attributes } => {
                assert_eq!(name, "Person");
                assert_eq!(attributes.len(), 2);
                assert!(attributes[0].unique && attributes[0].mandatory);
                assert_eq!(attributes[1].type_name, "Int");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ddl_edge_type() {
        let stmt = parse("CREATE EDGE TYPE knows FROM Person TO Person").unwrap();
        match stmt {
            GqlStatement::CreateEdgeType { name, from, to } => {
                assert_eq!(
                    (name.as_str(), from.as_str(), to.as_str()),
                    ("knows", "Person", "Person")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dml_insert_vertex() {
        let stmt = parse("INSERT INTO Person VALUES (name = 'ana', age = 30)").unwrap();
        match stmt {
            GqlStatement::InsertVertex { type_name, props } => {
                assert_eq!(type_name, "Person");
                assert_eq!(props.get("age"), Some(&Value::from(30)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dml_insert_edge() {
        let stmt = parse(
            "INSERT EDGE knows FROM Person (name = 'ana') TO Person (name = 'bob') VALUES (since = 2001)",
        )
        .unwrap();
        match stmt {
            GqlStatement::InsertEdge {
                type_name,
                from,
                to,
                props,
            } => {
                assert_eq!(type_name, "knows");
                assert_eq!(from.2, Value::from("ana"));
                assert_eq!(to.1, "name");
                assert_eq!(props.get("since"), Some(&Value::from(2001)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn people() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_node("Person", props! { "name" => "ana", "age" => 30 });
        g.add_node("Person", props! { "name" => "bob", "age" => 45 });
        g.add_node("Person", props! { "name" => "cleo", "age" => 27 });
        g
    }

    #[test]
    fn select_with_filter_and_order() {
        let g = people();
        let stmt =
            parse("FROM Person p SELECT p.name WHERE p.age >= 30 ORDER BY p.age DESC").unwrap();
        let GqlStatement::Select(q) = stmt else {
            panic!("expected select");
        };
        let rs = evaluate_select(&g, &q).unwrap();
        let names: Vec<&str> = rs.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["bob", "ana"]);
    }

    #[test]
    fn select_aggregates() {
        let g = people();
        let GqlStatement::Select(q) =
            parse("FROM Person p SELECT COUNT(*) AS n, MAX(p.age) AS oldest").unwrap()
        else {
            panic!()
        };
        let rs = evaluate_select(&g, &q).unwrap();
        assert_eq!(rs.get(0, "n"), Some(&Value::from(3)));
        assert_eq!(rs.get(0, "oldest"), Some(&Value::from(45)));
    }

    #[test]
    fn select_limit_offset() {
        let g = people();
        let GqlStatement::Select(q) =
            parse("FROM Person p SELECT p.name ORDER BY p.name LIMIT 1 OFFSET 1").unwrap()
        else {
            panic!()
        };
        let rs = evaluate_select(&g, &q).unwrap();
        assert_eq!(rs.rows[0][0], Value::from("bob"));
    }

    #[test]
    fn explicit_group_by() {
        let mut g = PropertyGraph::new();
        for (city, age) in [("scl", 30), ("scl", 40), ("muc", 20)] {
            g.add_node("Person", props! { "city" => city, "age" => age });
        }
        let GqlStatement::Select(q) = parse(
            "FROM Person p SELECT p.city, AVG(p.age) AS avg_age GROUP BY p.city ORDER BY p.city",
        )
        .unwrap() else {
            panic!()
        };
        let rs = evaluate_select(&g, &q).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(0, "p.city"), Some(&Value::from("muc")));
        assert_eq!(rs.get(0, "avg_age"), Some(&Value::from(20.0)));
        assert_eq!(rs.get(1, "avg_age"), Some(&Value::from(35.0)));
        // Projecting a non-key, non-aggregate column is rejected.
        assert!(parse("FROM Person p SELECT p.age, COUNT(*) GROUP BY p.city").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse("CREATE TABLE x").is_err());
        assert!(parse("INSERT Person VALUES (a = 1)").is_err());
        assert!(parse("FROM Person SELECT name").is_err(), "alias required");
        assert!(parse("FROM Person p").is_err());
    }
}
