//! A SPARQL-like query language over RDF graphs (AllegroGraph).
//!
//! "AllegroGraph supports SPARQL, the standard query language for
//! RDF. SPARQL is based on graph pattern matching but is not oriented
//! to querying the graph structure of RDF data" — which is why Table V
//! marks its query language `◦`. This front-end implements the
//! pattern-matching core: basic graph patterns (triple-pattern joins),
//! `FILTER`, `DISTINCT`, `ORDER BY`, `LIMIT`, and `COUNT`.
//!
//! ```text
//! query  := SELECT [DISTINCT] (?var+ | '*' | '(' COUNT '(' '*' ')' AS ?var ')')
//!           WHERE '{' tp ('.' tp)* (FILTER '(' cond ')')* '}'
//!           [ORDER BY ?var] [LIMIT n]
//! tp     := term term term
//! term   := <iri> | ident (bare IRI) | 'literal' | ?var
//! cond   := operand (=|!=|<=|>=|>) operand [AND / OR conds]
//! ```

use crate::eval::ResultSet;
use crate::lex::{Cursor, TokenKind};
use gdm_core::{FxHashMap, GdmError, Result, Value};
use gdm_graphs::rdf::{RdfGraph, Term};

const DIALECT: &str = "sparql";

/// A position in a triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPat {
    /// A bound term.
    Const(Term),
    /// A variable.
    Var(String),
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub s: TermPat,
    /// Predicate position.
    pub p: TermPat,
    /// Object position.
    pub o: TermPat,
}

/// Filter conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Comparison between two operands.
    Cmp(&'static str, TermPat, TermPat),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
}

/// A parsed SPARQL query.
#[derive(Debug, Clone)]
pub struct SparqlQuery {
    /// Projected variables; empty = `*` (all, sorted).
    pub vars: Vec<String>,
    /// `COUNT(*)` projection with the output variable name.
    pub count: Option<String>,
    /// Basic graph pattern.
    pub patterns: Vec<TriplePattern>,
    /// Filters.
    pub filters: Vec<Cond>,
    /// Remove duplicate rows.
    pub distinct: bool,
    /// Sort variable.
    pub order_by: Option<String>,
    /// Row cap.
    pub limit: Option<usize>,
}

/// Parses a SPARQL query.
pub fn parse(src: &str) -> Result<SparqlQuery> {
    let mut c = Cursor::lex(DIALECT, src, true)?;
    c.expect_keyword("select")?;
    let mut q = SparqlQuery {
        vars: Vec::new(),
        count: None,
        patterns: Vec::new(),
        filters: Vec::new(),
        distinct: false,
        order_by: None,
        limit: None,
    };
    if c.eat_keyword("distinct") {
        q.distinct = true;
    }
    let mut star = false;
    loop {
        match c.peek().clone() {
            TokenKind::QVar(v) => {
                c.bump();
                q.vars.push(v);
            }
            TokenKind::Punct("*") => {
                c.bump();
                star = true;
                break;
            }
            TokenKind::Punct("(") => {
                c.bump();
                c.expect_keyword("count")?;
                c.expect_punct("(")?;
                c.expect_punct("*")?;
                c.expect_punct(")")?;
                c.expect_keyword("as")?;
                let TokenKind::QVar(v) = c.bump() else {
                    return Err(c.error("expected ?var after AS"));
                };
                c.expect_punct(")")?;
                q.count = Some(v);
            }
            _ => break,
        }
    }
    if q.vars.is_empty() && q.count.is_none() && !star {
        return Err(c.error("SELECT needs ?vars, *, or (COUNT(*) AS ?v)"));
    }
    c.expect_keyword("where")?;
    c.expect_punct("{")?;
    loop {
        if c.eat_punct("}") {
            break;
        }
        if c.at_eof() {
            return Err(c.error("unterminated graph pattern"));
        }
        if c.eat_keyword("filter") {
            c.expect_punct("(")?;
            let cond = parse_cond(&mut c)?;
            c.expect_punct(")")?;
            q.filters.push(cond);
            c.eat_punct(".");
            continue;
        }
        let s = parse_term(&mut c)?;
        let p = parse_term(&mut c)?;
        let o = parse_term(&mut c)?;
        q.patterns.push(TriplePattern { s, p, o });
        c.eat_punct(".");
    }
    if c.eat_keyword("order") {
        c.expect_keyword("by")?;
        let TokenKind::QVar(v) = c.bump() else {
            return Err(c.error("expected ?var after ORDER BY"));
        };
        q.order_by = Some(v);
    }
    if c.eat_keyword("limit") {
        match c.bump() {
            TokenKind::Int(i) if i >= 0 => q.limit = Some(i as usize),
            other => return Err(c.error(format!("expected limit count, found {other:?}"))),
        }
    }
    if !c.at_eof() {
        return Err(c.error(format!("unexpected trailing input: {:?}", c.peek())));
    }
    if q.patterns.is_empty() {
        return Err(c.error("empty graph pattern"));
    }
    Ok(q)
}

fn parse_term(c: &mut Cursor) -> Result<TermPat> {
    match c.bump() {
        TokenKind::QVar(v) => Ok(TermPat::Var(v)),
        TokenKind::AngleQuoted(iri) => Ok(TermPat::Const(Term::Iri(iri))),
        TokenKind::Ident(name) => Ok(TermPat::Const(Term::Iri(name))),
        TokenKind::Str(s) => Ok(TermPat::Const(Term::Literal(s))),
        TokenKind::Int(i) => Ok(TermPat::Const(Term::Literal(i.to_string()))),
        TokenKind::Float(f) => Ok(TermPat::Const(Term::Literal(f.to_string()))),
        other => Err(c.error(format!("expected term, found {other:?}"))),
    }
}

fn parse_cond(c: &mut Cursor) -> Result<Cond> {
    let mut lhs = parse_cmp(c)?;
    loop {
        if c.eat_keyword("and") {
            lhs = Cond::And(Box::new(lhs), Box::new(parse_cmp(c)?));
        } else if c.eat_keyword("or") {
            lhs = Cond::Or(Box::new(lhs), Box::new(parse_cmp(c)?));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_cmp(c: &mut Cursor) -> Result<Cond> {
    let lhs = parse_term(c)?;
    let op: &'static str = if c.eat_punct("=") {
        "="
    } else if c.eat_punct("!=") {
        "!="
    } else if c.eat_punct("<=") {
        "<="
    } else if c.eat_punct(">=") {
        ">="
    } else if c.eat_punct(">") {
        ">"
    } else if c.eat_punct("<") {
        "<"
    } else {
        return Err(c.error("expected comparison operator (=, !=, <, <=, >=, >)"));
    };
    let rhs = parse_term(c)?;
    Ok(Cond::Cmp(op, lhs, rhs))
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

type Binding = FxHashMap<String, Term>;

/// Executes `query` against `g`.
pub fn evaluate(g: &RdfGraph, query: &SparqlQuery) -> Result<ResultSet> {
    let mut bindings: Vec<Binding> = vec![Binding::default()];
    for tp in &query.patterns {
        let mut next = Vec::new();
        for b in &bindings {
            extend_binding(g, b, tp, &mut next);
        }
        bindings = next;
        if bindings.is_empty() {
            break;
        }
    }
    for f in &query.filters {
        bindings.retain(|b| eval_cond(b, f));
    }
    if let Some(cv) = &query.count {
        return Ok(ResultSet {
            columns: vec![cv.clone()],
            rows: vec![vec![Value::Int(bindings.len() as i64)]],
        });
    }
    let columns: Vec<String> = if query.vars.is_empty() {
        bindings
            .iter()
            .flat_map(|b| b.keys().cloned())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    } else {
        query.vars.clone()
    };
    let mut rows: Vec<Vec<Value>> = bindings
        .iter()
        .map(|b| {
            columns
                .iter()
                .map(|c| match b.get(c) {
                    Some(t) => term_value(t),
                    None => Value::Null,
                })
                .collect()
        })
        .collect();
    // Deterministic base order.
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    if query.distinct {
        let mut seen = std::collections::BTreeSet::new();
        rows.retain(|r| seen.insert(format!("{r:?}")));
    }
    if let Some(ov) = &query.order_by {
        let idx = columns.iter().position(|c| c == ov).ok_or_else(|| {
            GdmError::InvalidArgument(format!("ORDER BY variable ?{ov} is not projected"))
        })?;
        rows.sort_by(|a, b| a[idx].total_cmp(&b[idx]));
    }
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }
    Ok(ResultSet { columns, rows })
}

fn extend_binding(g: &RdfGraph, b: &Binding, tp: &TriplePattern, out: &mut Vec<Binding>) {
    let resolve = |pat: &TermPat| -> Option<Term> {
        match pat {
            TermPat::Const(t) => Some(t.clone()),
            TermPat::Var(v) => b.get(v).cloned(),
        }
    };
    let s = resolve(&tp.s);
    let p = resolve(&tp.p);
    let o = resolve(&tp.o);
    for (si, pi, oi) in g.match_pattern(s.as_ref(), p.as_ref(), o.as_ref()) {
        let mut nb = b.clone();
        let mut ok = true;
        for (pat, id) in [(&tp.s, si), (&tp.p, pi), (&tp.o, oi)] {
            if let TermPat::Var(v) = pat {
                let term = g.term(id).expect("matched term exists").clone();
                match nb.get(v) {
                    Some(existing) if *existing != term => {
                        ok = false;
                        break;
                    }
                    _ => {
                        nb.insert(v.clone(), term);
                    }
                }
            }
        }
        if ok {
            out.push(nb);
        }
    }
}

fn eval_cond(b: &Binding, cond: &Cond) -> bool {
    match cond {
        Cond::And(l, r) => eval_cond(b, l) && eval_cond(b, r),
        Cond::Or(l, r) => eval_cond(b, l) || eval_cond(b, r),
        Cond::Cmp(op, lhs, rhs) => {
            let (Some(l), Some(r)) = (operand(b, lhs), operand(b, rhs)) else {
                return false;
            };
            let lv = term_value(&l);
            let rv = term_value(&r);
            match *op {
                "=" => lv.loose_eq(&rv),
                "!=" => !lv.loose_eq(&rv),
                _ => match lv.compare(&rv) {
                    Some(ord) => match *op {
                        "<" => ord.is_lt(),
                        "<=" => ord.is_le(),
                        ">" => ord.is_gt(),
                        ">=" => ord.is_ge(),
                        _ => false,
                    },
                    None => false,
                },
            }
        }
    }
}

fn operand(b: &Binding, pat: &TermPat) -> Option<Term> {
    match pat {
        TermPat::Const(t) => Some(t.clone()),
        TermPat::Var(v) => b.get(v).cloned(),
    }
}

/// Renders a term as a comparable [`Value`]: numeric literals become
/// numbers, everything else a string.
fn term_value(t: &Term) -> Value {
    match t {
        Term::Literal(s) => {
            if let Ok(i) = s.parse::<i64>() {
                Value::Int(i)
            } else if let Ok(f) = s.parse::<f64>() {
                Value::Float(f)
            } else {
                Value::Str(s.clone())
            }
        }
        other => Value::Str(other.text()),
    }
}

/// Parses and evaluates in one step.
pub fn query(g: &RdfGraph, src: &str) -> Result<ResultSet> {
    evaluate(g, &parse(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> RdfGraph {
        let mut g = RdfGraph::new();
        let parent = Term::iri("parent");
        let age = Term::iri("age");
        for (a, b) in [("ana", "ben"), ("ana", "bea"), ("ben", "cleo")] {
            g.add(&Term::iri(a), &parent, &Term::iri(b)).unwrap();
        }
        g.add(&Term::iri("ana"), &age, &Term::lit("62")).unwrap();
        g.add(&Term::iri("ben"), &age, &Term::lit("35")).unwrap();
        g
    }

    #[test]
    fn single_pattern() {
        let g = family();
        let rs = query(&g, "SELECT ?c WHERE { <ana> <parent> ?c }").unwrap();
        assert_eq!(rs.len(), 2);
        let kids: Vec<&str> = rs.rows.iter().filter_map(|r| r[0].as_str()).collect();
        assert_eq!(kids, vec!["bea", "ben"]);
    }

    #[test]
    fn join_two_patterns() {
        let g = family();
        let rs = query(
            &g,
            "SELECT ?g ?gc WHERE { ?g <parent> ?c . ?c <parent> ?gc }",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(0, "g").unwrap().as_str(), Some("ana"));
        assert_eq!(rs.get(0, "gc").unwrap().as_str(), Some("cleo"));
    }

    #[test]
    fn filters_numeric() {
        let g = family();
        let rs = query(&g, "SELECT ?p WHERE { ?p <age> ?a . FILTER(?a > 40) }").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0].as_str(), Some("ana"));
    }

    #[test]
    fn filter_inequality_on_terms() {
        let g = family();
        let rs = query(
            &g,
            "SELECT ?a ?b WHERE { ?x <parent> ?a . ?x <parent> ?b . FILTER(?a != ?b) }",
        )
        .unwrap();
        assert_eq!(rs.len(), 2, "(ben,bea) and (bea,ben)");
    }

    #[test]
    fn count_star() {
        let g = family();
        let rs = query(&g, "SELECT (COUNT(*) AS ?n) WHERE { ?x <parent> ?y }").unwrap();
        assert_eq!(rs.get(0, "n"), Some(&Value::Int(3)));
    }

    #[test]
    fn select_star_orders_columns() {
        let g = family();
        let rs = query(&g, "SELECT * WHERE { ?x <parent> ?y }").unwrap();
        assert_eq!(rs.columns, vec!["x", "y"]);
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn distinct_and_limit() {
        let g = family();
        let rs = query(
            &g,
            "SELECT DISTINCT ?x WHERE { ?x <parent> ?y } ORDER BY ?x LIMIT 1",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0].as_str(), Some("ana"));
    }

    #[test]
    fn literal_constants_match() {
        let g = family();
        let rs = query(&g, "SELECT ?p WHERE { ?p <age> '35' }").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0].as_str(), Some("ben"));
    }

    #[test]
    fn bare_idents_are_iris() {
        let g = family();
        let rs = query(&g, "SELECT ?c WHERE { ana parent ?c }").unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn filter_conjunction() {
        let g = family();
        let rs = query(
            &g,
            "SELECT ?p WHERE { ?p <age> ?a . FILTER(?a > 30 AND ?a <= 35) }",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0].as_str(), Some("ben"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT WHERE { ?x <p> ?y }").is_err());
        assert!(parse("SELECT ?x { ?x <p> ?y }").is_err());
        assert!(parse("SELECT ?x WHERE { }").is_err());
        assert!(parse("SELECT ?x WHERE { ?x <p> }").is_err());
        assert!(parse("SELECT ?x WHERE { ?x <p> ?y").is_err());
    }

    #[test]
    fn unbound_order_by_is_an_error() {
        let g = family();
        assert!(query(&g, "SELECT ?x WHERE { ?x <parent> ?y } ORDER BY ?z").is_err());
    }
}
