//! The G-Store-style SQL path dialect.
//!
//! The paper: "G-Store and Sones include SQL-based query languages
//! with special instructions for querying graphs", and Table II
//! credits G-Store with a DDL and a query language (no DML of its own
//! beyond graph loading). The dialect here is the *special
//! instructions* part — statements over a vertex-labeled graph whose
//! results are nodes and paths:
//!
//! ```text
//! stmt := CREATE NODE 'label'
//!       | CREATE EDGE <id> <id>
//!       | SELECT NODES [WITH LABEL 'label']
//!       | SELECT COUNT (NODES | EDGES)
//!       | SELECT SHORTEST PATH FROM <id> TO <id>
//!       | SELECT PATHS FROM <id> TO <id> LENGTH <k>
//!       | SELECT REACHABLE FROM <id>
//! ```

use crate::lex::{Cursor, TokenKind};
use gdm_core::{NodeId, Result};

const DIALECT: &str = "gsql";

/// A parsed G-Store statement.
#[derive(Debug, Clone, PartialEq)]
pub enum GsqlStatement {
    /// `CREATE NODE 'label'` — DDL/load.
    CreateNode {
        /// Node label.
        label: String,
    },
    /// `CREATE EDGE a b`.
    CreateEdge {
        /// Source node id.
        from: NodeId,
        /// Target node id.
        to: NodeId,
    },
    /// `SELECT NODES [WITH LABEL 'x']`.
    SelectNodes {
        /// Label filter.
        label: Option<String>,
    },
    /// `SELECT COUNT NODES`.
    CountNodes,
    /// `SELECT COUNT EDGES`.
    CountEdges,
    /// `SELECT SHORTEST PATH FROM a TO b`.
    ShortestPath {
        /// Source.
        from: NodeId,
        /// Target.
        to: NodeId,
    },
    /// `SELECT PATHS FROM a TO b LENGTH k`.
    FixedPaths {
        /// Source.
        from: NodeId,
        /// Target.
        to: NodeId,
        /// Exact path length.
        length: usize,
    },
    /// `SELECT REACHABLE FROM a`.
    Reachable {
        /// Source.
        from: NodeId,
    },
}

/// Parses one statement.
pub fn parse(src: &str) -> Result<GsqlStatement> {
    let mut c = Cursor::lex(DIALECT, src, false)?;
    let stmt = if c.eat_keyword("create") {
        if c.eat_keyword("node") {
            let label = parse_label(&mut c)?;
            GsqlStatement::CreateNode { label }
        } else if c.eat_keyword("edge") {
            let from = parse_node_id(&mut c)?;
            let to = parse_node_id(&mut c)?;
            GsqlStatement::CreateEdge { from, to }
        } else {
            return Err(c.error("expected NODE or EDGE after CREATE"));
        }
    } else {
        c.expect_keyword("select")?;
        if c.eat_keyword("nodes") {
            let label = if c.eat_keyword("with") {
                c.expect_keyword("label")?;
                Some(parse_label(&mut c)?)
            } else {
                None
            };
            GsqlStatement::SelectNodes { label }
        } else if c.eat_keyword("count") {
            if c.eat_keyword("nodes") {
                GsqlStatement::CountNodes
            } else if c.eat_keyword("edges") {
                GsqlStatement::CountEdges
            } else {
                return Err(c.error("expected NODES or EDGES after COUNT"));
            }
        } else if c.eat_keyword("shortest") {
            c.expect_keyword("path")?;
            c.expect_keyword("from")?;
            let from = parse_node_id(&mut c)?;
            c.expect_keyword("to")?;
            let to = parse_node_id(&mut c)?;
            GsqlStatement::ShortestPath { from, to }
        } else if c.eat_keyword("paths") {
            c.expect_keyword("from")?;
            let from = parse_node_id(&mut c)?;
            c.expect_keyword("to")?;
            let to = parse_node_id(&mut c)?;
            c.expect_keyword("length")?;
            let length = match c.bump() {
                TokenKind::Int(i) if i >= 0 => i as usize,
                other => return Err(c.error(format!("expected length, found {other:?}"))),
            };
            GsqlStatement::FixedPaths { from, to, length }
        } else if c.eat_keyword("reachable") {
            c.expect_keyword("from")?;
            let from = parse_node_id(&mut c)?;
            GsqlStatement::Reachable { from }
        } else {
            return Err(
                c.error("expected NODES, COUNT, SHORTEST, PATHS, or REACHABLE after SELECT")
            );
        }
    };
    if !c.at_eof() {
        return Err(c.error(format!("unexpected trailing input: {:?}", c.peek())));
    }
    Ok(stmt)
}

fn parse_label(c: &mut Cursor) -> Result<String> {
    match c.bump() {
        TokenKind::Str(s) => Ok(s),
        TokenKind::Ident(s) => Ok(s),
        other => Err(c.error(format!("expected label, found {other:?}"))),
    }
}

fn parse_node_id(c: &mut Cursor) -> Result<NodeId> {
    match c.bump() {
        TokenKind::Int(i) if i >= 0 => Ok(NodeId(i as u64)),
        other => Err(c.error(format!("expected node id, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_statements() {
        assert_eq!(
            parse("CREATE NODE 'protein'").unwrap(),
            GsqlStatement::CreateNode {
                label: "protein".into()
            }
        );
        assert_eq!(
            parse("CREATE EDGE 3 7").unwrap(),
            GsqlStatement::CreateEdge {
                from: NodeId(3),
                to: NodeId(7)
            }
        );
    }

    #[test]
    fn select_nodes() {
        assert_eq!(
            parse("SELECT NODES").unwrap(),
            GsqlStatement::SelectNodes { label: None }
        );
        assert_eq!(
            parse("SELECT NODES WITH LABEL gene").unwrap(),
            GsqlStatement::SelectNodes {
                label: Some("gene".into())
            }
        );
    }

    #[test]
    fn counts() {
        assert_eq!(
            parse("SELECT COUNT NODES").unwrap(),
            GsqlStatement::CountNodes
        );
        assert_eq!(
            parse("SELECT COUNT EDGES").unwrap(),
            GsqlStatement::CountEdges
        );
    }

    #[test]
    fn path_queries() {
        assert_eq!(
            parse("SELECT SHORTEST PATH FROM 0 TO 9").unwrap(),
            GsqlStatement::ShortestPath {
                from: NodeId(0),
                to: NodeId(9)
            }
        );
        assert_eq!(
            parse("SELECT PATHS FROM 1 TO 2 LENGTH 4").unwrap(),
            GsqlStatement::FixedPaths {
                from: NodeId(1),
                to: NodeId(2),
                length: 4
            }
        );
        assert_eq!(
            parse("SELECT REACHABLE FROM 5").unwrap(),
            GsqlStatement::Reachable { from: NodeId(5) }
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT SHORTEST FROM 0 TO 1").is_err());
        assert!(parse("CREATE EDGE a b").is_err());
        assert!(parse("SELECT NODES extra").is_err());
    }
}
