//! The shared tokenizer all dialect parsers consume.
//!
//! One lexer keeps token-level behaviour (string escapes, number
//! forms, error positions) identical across dialects, so differences
//! between the languages stay where the paper locates them: in the
//! grammar, not the lexing.

use gdm_core::{GdmError, Result};

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (dialects decide which).
    Ident(String),
    /// `?name` — SPARQL-style variable.
    QVar(String),
    /// `<text>` — angle-quoted IRI / label.
    AngleQuoted(String),
    /// String literal (single or double quoted).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Multi-character operators, longest first.
const OPERATORS: &[&str] = &[
    "<=", ">=", "!=", "<>", "<-", "->", "--", ":-", "..", "(", ")", "[", "]", "{", "}", ",", ";",
    ":", ".", "=", "<", ">", "+", "-", "*", "/", "|", "?",
];

/// Tokenizes `src` for `dialect` (named only for error messages).
/// When `angle_quotes` is set, `<...>` lexes as one token (SPARQL
/// IRIs); otherwise `<` and `>` are comparison operators.
pub fn tokenize(dialect: &'static str, src: &str, angle_quotes: bool) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let c = bytes[pos] as char;
        if c.is_whitespace() {
            pos += 1;
            continue;
        }
        // Comments: `//` and `#` to end of line.
        if c == '#' || (c == '/' && bytes.get(pos + 1) == Some(&b'/')) {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        // SPARQL variable.
        if c == '?' && bytes.get(pos + 1).is_some_and(|b| ident_start(*b as char)) {
            pos += 1;
            let begin = pos;
            while pos < bytes.len() && ident_continue(bytes[pos] as char) {
                pos += 1;
            }
            tokens.push(Token {
                kind: TokenKind::QVar(src[begin..pos].to_owned()),
                pos: start,
            });
            continue;
        }
        // Angle-quoted IRI / label. `<` followed by '=', space, or a
        // digit is a comparison operator even in angle-quote mode, so
        // `FILTER(?a <= 3)` and `?a < 3` lex as intended.
        if angle_quotes
            && c == '<'
            && !bytes
                .get(pos + 1)
                .is_none_or(|b| matches!(*b as char, '=' | ' ' | '\t' | '\n' | '0'..='9'))
        {
            pos += 1;
            let begin = pos;
            while pos < bytes.len() && bytes[pos] != b'>' {
                pos += 1;
            }
            if pos >= bytes.len() {
                return Err(err(dialect, "unterminated '<...>'", start));
            }
            tokens.push(Token {
                kind: TokenKind::AngleQuoted(src[begin..pos].to_owned()),
                pos: start,
            });
            pos += 1;
            continue;
        }
        // String literal.
        if c == '\'' || c == '"' {
            let quote = c;
            pos += 1;
            let mut text = String::new();
            loop {
                let Some(&b) = bytes.get(pos) else {
                    return Err(err(dialect, "unterminated string literal", start));
                };
                let ch = b as char;
                pos += 1;
                if ch == quote {
                    break;
                }
                if ch == '\\' {
                    let Some(&esc) = bytes.get(pos) else {
                        return Err(err(dialect, "dangling escape", pos));
                    };
                    pos += 1;
                    match esc as char {
                        'n' => text.push('\n'),
                        't' => text.push('\t'),
                        '\\' => text.push('\\'),
                        c2 if c2 == quote => text.push(quote),
                        other => {
                            return Err(err(dialect, format!("unknown escape \\{other}"), pos - 1))
                        }
                    }
                } else {
                    text.push(ch);
                }
            }
            tokens.push(Token {
                kind: TokenKind::Str(text),
                pos: start,
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            while pos < bytes.len() && (bytes[pos] as char).is_ascii_digit() {
                pos += 1;
            }
            let is_float = bytes.get(pos) == Some(&b'.')
                && bytes
                    .get(pos + 1)
                    .is_some_and(|b| (*b as char).is_ascii_digit());
            if is_float {
                pos += 1;
                while pos < bytes.len() && (bytes[pos] as char).is_ascii_digit() {
                    pos += 1;
                }
                let text = &src[start..pos];
                let value: f64 = text
                    .parse()
                    .map_err(|_| err(dialect, format!("bad float {text}"), start))?;
                tokens.push(Token {
                    kind: TokenKind::Float(value),
                    pos: start,
                });
            } else {
                let text = &src[start..pos];
                let value: i64 = text
                    .parse()
                    .map_err(|_| err(dialect, format!("bad integer {text}"), start))?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    pos: start,
                });
            }
            continue;
        }
        // Identifier.
        if ident_start(c) {
            while pos < bytes.len() && ident_continue(bytes[pos] as char) {
                pos += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(src[start..pos].to_owned()),
                pos: start,
            });
            continue;
        }
        // Operator / punctuation.
        let mut matched = false;
        for op in OPERATORS {
            if src[pos..].starts_with(op) {
                tokens.push(Token {
                    kind: TokenKind::Punct(op),
                    pos: start,
                });
                pos += op.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(err(dialect, format!("unexpected character {c:?}"), pos));
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: src.len(),
    });
    Ok(tokens)
}

fn ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn err(dialect: &'static str, message: impl Into<String>, position: usize) -> GdmError {
    GdmError::Parse {
        dialect,
        message: message.into(),
        position,
    }
}

/// A cursor over tokens with the helpers every dialect parser needs.
pub struct Cursor {
    dialect: &'static str,
    tokens: Vec<Token>,
    index: usize,
}

impl Cursor {
    /// Wraps a token stream.
    pub fn new(dialect: &'static str, tokens: Vec<Token>) -> Self {
        Self {
            dialect,
            tokens,
            index: 0,
        }
    }

    /// Lexes and wraps in one step.
    pub fn lex(dialect: &'static str, src: &str, angle_quotes: bool) -> Result<Self> {
        Ok(Self::new(dialect, tokenize(dialect, src, angle_quotes)?))
    }

    /// Current token.
    pub fn peek(&self) -> &TokenKind {
        &self.tokens[self.index].kind
    }

    /// Current position (for errors).
    pub fn pos(&self) -> usize {
        self.tokens[self.index].pos
    }

    /// Advances and returns the consumed token kind.
    pub fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.index].kind.clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        kind
    }

    /// True at end of input.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    /// Builds a parse error at the current position.
    pub fn error(&self, message: impl Into<String>) -> GdmError {
        GdmError::Parse {
            dialect: self.dialect,
            message: message.into(),
            position: self.pos(),
        }
    }

    /// Consumes a specific punctuation token or errors.
    pub fn expect_punct(&mut self, p: &'static str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    /// Consumes punctuation if present.
    pub fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes an identifier (any case) equal to `kw` if present.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw)) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes the keyword or errors.
    pub fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw:?}, found {:?}", self.peek())))
        }
    }

    /// True when the current token is the given keyword (not consumed).
    pub fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consumes any identifier, returning its text.
    pub fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize("test", src, false)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn identifiers_and_numbers() {
        let ts = kinds("match n42 3 2.5");
        assert_eq!(
            ts,
            vec![
                TokenKind::Ident("match".into()),
                TokenKind::Ident("n42".into()),
                TokenKind::Int(3),
                TokenKind::Float(2.5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let ts = kinds(r#"'it\'s' "two\nlines""#);
        assert_eq!(ts[0], TokenKind::Str("it's".into()));
        assert_eq!(ts[1], TokenKind::Str("two\nlines".into()));
    }

    #[test]
    fn operators_longest_first() {
        let ts = kinds("a <= b -> c .. d");
        assert!(ts.contains(&TokenKind::Punct("<=")));
        assert!(ts.contains(&TokenKind::Punct("->")));
        assert!(ts.contains(&TokenKind::Punct("..")));
    }

    #[test]
    fn sparql_variables_and_iris() {
        let ts = tokenize("sparql", "SELECT ?x WHERE { ?x <knows> ?y }", true).unwrap();
        let kinds: Vec<_> = ts.into_iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::QVar("x".into())));
        assert!(kinds.contains(&TokenKind::AngleQuoted("knows".into())));
    }

    #[test]
    fn angle_mode_off_gives_comparisons() {
        let ts = kinds("a < b > c");
        assert!(ts.contains(&TokenKind::Punct("<")));
        assert!(ts.contains(&TokenKind::Punct(">")));
    }

    #[test]
    fn comments_are_skipped() {
        let ts = kinds("a // comment\nb # another\nc");
        assert_eq!(
            ts,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("test", "abc @", false).unwrap_err();
        match err {
            GdmError::Parse { position, .. } => assert_eq!(position, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_string() {
        assert!(tokenize("test", "'abc", false).is_err());
    }

    #[test]
    fn cursor_helpers() {
        let mut c = Cursor::lex("test", "FROM person SELECT", false).unwrap();
        assert!(c.eat_keyword("from"));
        assert_eq!(c.expect_ident().unwrap(), "person");
        assert!(c.at_keyword("select"));
        assert!(c.expect_keyword("SELECT").is_ok());
        assert!(c.at_eof());
    }
}
