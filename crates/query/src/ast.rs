//! The logical query algebra every dialect lowers to.
//!
//! A [`SelectQuery`] is a graph pattern (reusing
//! [`gdm_algo::pattern::Pattern`]) plus optional variable-length path
//! constraints, a filter expression, projections (possibly aggregate),
//! ordering, and limits. Dialect parsers build this; [`crate::eval`]
//! executes it.

use gdm_algo::pattern::Pattern;
use gdm_algo::summary::Aggregate;
use gdm_core::{GdmError, Result, Value};

/// Binary operators in filter and projection expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Loose equality (int/float coercion).
    Eq,
    /// Negated loose equality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
    /// Addition / concatenation.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// A scalar expression over one binding.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// `var.key` — a property of the node bound to `var`.
    Prop(String, String),
    /// Bare variable — evaluates to the bound node's id.
    Var(String),
    /// Logical negation.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }
}

/// A projected column.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// A scalar expression with an output column name.
    Expr {
        /// Column name.
        name: String,
        /// Expression to evaluate per row.
        expr: Expr,
    },
    /// An aggregate over an expression (or `COUNT(*)` when `expr` is
    /// `None`).
    Aggregate {
        /// Column name.
        name: String,
        /// Which aggregate.
        agg: Aggregate,
        /// Aggregated expression; `None` = count rows.
        expr: Option<Expr>,
    },
}

impl Projection {
    /// The output column name.
    pub fn name(&self) -> &str {
        match self {
            Projection::Expr { name, .. } | Projection::Aggregate { name, .. } => name,
        }
    }

    /// True for aggregate projections.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Projection::Aggregate { .. })
    }
}

/// A variable-length path constraint between two pattern variables
/// (Cypher's `-[:T*min..max]->`).
#[derive(Debug, Clone, PartialEq)]
pub struct VarLengthEdge {
    /// Source variable.
    pub from: String,
    /// Target variable.
    pub to: String,
    /// Required edge label, if any.
    pub label: Option<String>,
    /// Minimum hops (≥ 1).
    pub min: usize,
    /// Maximum hops.
    pub max: usize,
}

/// A complete read query in the shared algebra.
#[derive(Debug, Clone, Default)]
pub struct SelectQuery {
    /// The fixed graph pattern (variables + single-hop edges).
    pub pattern: Pattern,
    /// Variable-length path constraints layered on the pattern.
    pub var_paths: Vec<VarLengthEdge>,
    /// Row filter.
    pub filter: Option<Expr>,
    /// Projected columns (at least one).
    pub projections: Vec<Projection>,
    /// Grouping keys. With groups, every per-row projection must be
    /// one of these expressions; aggregates run per group. Cypher sets
    /// this implicitly (its RETURN groups by the non-aggregate items),
    /// GQL via an explicit `GROUP BY`.
    pub group_by: Vec<Expr>,
    /// Remove duplicate rows.
    pub distinct: bool,
    /// Sort key and ascending flag.
    pub order_by: Option<(Expr, bool)>,
    /// Skip this many rows after sorting.
    pub skip: usize,
    /// Keep at most this many rows.
    pub limit: Option<usize>,
}

impl SelectQuery {
    /// Validates internal consistency: projections present, variables
    /// referenced by paths/filter/projections exist in the pattern,
    /// and aggregates are not mixed with row projections.
    pub fn validate(&self) -> Result<()> {
        if self.projections.is_empty() {
            return Err(GdmError::InvalidArgument(
                "query projects no columns".into(),
            ));
        }
        let has_agg = self.projections.iter().any(Projection::is_aggregate);
        let has_row = self.projections.iter().any(|p| !p.is_aggregate());
        if has_agg && has_row && self.group_by.is_empty() {
            return Err(GdmError::InvalidArgument(
                "mixing aggregate and per-row projections requires GROUP BY".into(),
            ));
        }
        if !self.group_by.is_empty() {
            for p in &self.projections {
                if let Projection::Expr { expr, name } = p {
                    if !self.group_by.contains(expr) {
                        return Err(GdmError::InvalidArgument(format!(
                            "projected column {name:?} is neither aggregated nor a grouping key"
                        )));
                    }
                }
            }
        }
        let known = |var: &str| self.pattern.nodes.iter().any(|n| n.var == var);
        for vp in &self.var_paths {
            for v in [&vp.from, &vp.to] {
                if !known(v) {
                    return Err(GdmError::InvalidArgument(format!(
                        "path references unknown variable {v:?}"
                    )));
                }
            }
            if vp.min == 0 {
                return Err(GdmError::InvalidArgument(
                    "variable-length paths require min >= 1".into(),
                ));
            }
            if vp.min > vp.max {
                return Err(GdmError::InvalidArgument(format!(
                    "path range {}..{} is empty",
                    vp.min, vp.max
                )));
            }
        }
        let mut exprs: Vec<&Expr> = Vec::new();
        exprs.extend(self.group_by.iter());
        if let Some(f) = &self.filter {
            exprs.push(f);
        }
        if let Some((e, _)) = &self.order_by {
            // `ORDER BY alias` names a projected column, not a pattern
            // variable; only non-alias order keys are variable-checked.
            let is_alias = matches!(
                e,
                Expr::Var(name) if self.projections.iter().any(|p| p.name() == name)
            );
            if !is_alias {
                exprs.push(e);
            }
        }
        for p in &self.projections {
            match p {
                Projection::Expr { expr, .. } => exprs.push(expr),
                Projection::Aggregate { expr: Some(e), .. } => exprs.push(e),
                Projection::Aggregate { expr: None, .. } => {}
            }
        }
        for e in exprs {
            check_vars(e, &known)?;
        }
        Ok(())
    }
}

fn check_vars(expr: &Expr, known: &impl Fn(&str) -> bool) -> Result<()> {
    match expr {
        Expr::Lit(_) => Ok(()),
        Expr::Prop(var, _) | Expr::Var(var) => {
            if known(var) {
                Ok(())
            } else {
                Err(GdmError::InvalidArgument(format!(
                    "expression references unknown variable {var:?}"
                )))
            }
        }
        Expr::Not(inner) => check_vars(inner, known),
        Expr::Bin(_, l, r) => {
            check_vars(l, known)?;
            check_vars(r, known)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_algo::pattern::PatternNode;

    fn base_query() -> SelectQuery {
        let mut q = SelectQuery::default();
        q.pattern.node(PatternNode::var("a"));
        q.projections.push(Projection::Expr {
            name: "a".into(),
            expr: Expr::Var("a".into()),
        });
        q
    }

    #[test]
    fn valid_minimal_query() {
        assert!(base_query().validate().is_ok());
    }

    #[test]
    fn missing_projection_rejected() {
        let mut q = base_query();
        q.projections.clear();
        assert!(q.validate().is_err());
    }

    #[test]
    fn unknown_variables_rejected() {
        let mut q = base_query();
        q.filter = Some(Expr::Prop("ghost".into(), "x".into()));
        assert!(q.validate().is_err());

        let mut q2 = base_query();
        q2.var_paths.push(VarLengthEdge {
            from: "a".into(),
            to: "ghost".into(),
            label: None,
            min: 1,
            max: 2,
        });
        assert!(q2.validate().is_err());
    }

    #[test]
    fn bad_path_ranges_rejected() {
        let mut q = base_query();
        q.pattern.node(PatternNode::var("b"));
        q.var_paths.push(VarLengthEdge {
            from: "a".into(),
            to: "b".into(),
            label: None,
            min: 0,
            max: 2,
        });
        assert!(q.validate().is_err());
        q.var_paths[0].min = 3;
        q.var_paths[0].max = 2;
        assert!(q.validate().is_err());
    }

    #[test]
    fn aggregate_row_mix_rejected() {
        let mut q = base_query();
        q.projections.push(Projection::Aggregate {
            name: "c".into(),
            agg: Aggregate::Count,
            expr: None,
        });
        assert!(q.validate().is_err());
    }
}
