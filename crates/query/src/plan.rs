//! Cost-based planning for the shared logical algebra.
//!
//! Every dialect lowers to the same [`SelectQuery`], so one planner
//! speeds all of them up. Planning happens in two moves:
//!
//! 1. **Predicate pushdown.** The WHERE clause is split into its
//!    top-level AND conjuncts; every conjunct of the form
//!    `var.key = literal` (either operand order) becomes a property
//!    constraint on that pattern variable, and `var.label = "text"`
//!    becomes a label constraint. What cannot be pushed stays behind
//!    as the residual filter. `NULL` literals are never pushed: in a
//!    filter a missing property compares as `NULL = NULL` (true),
//!    while a pattern constraint requires the property to exist —
//!    pushing would change results.
//! 2. **Access selection + ordering.** For each pattern variable the
//!    view's [`AttributedView::candidate_estimate`] reports whether an
//!    index can bound its candidates; if so the variable is seeded
//!    from [`AttributedView::candidates`] (index access), otherwise it
//!    scans. [`gdm_algo::planned_order`] then eliminates variables
//!    smallest estimated domain first, connectivity as the tiebreak.
//!
//! The chosen plan is recorded as an [`ExplainPlan`] whose
//! [`ExplainPlan::render`]/[`ExplainPlan::parse`] round-trip gives
//! engines a machine-checkable `EXPLAIN` output.

use crate::ast::{BinOp, Expr, SelectQuery};
use crate::eval::{finish_select, ResultSet};
use gdm_algo::planned::{
    domain_estimates, domains_consistent, match_pattern_planned, planned_order, Domains, MatchTable,
};
use gdm_algo::Pattern;
use gdm_core::{AttributedView, GdmError, Result, Value};

/// How a pattern variable's candidate set is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Seeded from a label/property index lookup.
    Index,
    /// Full scan (or neighbor expansion from an already-bound
    /// variable at match time).
    Scan,
}

impl Access {
    fn as_str(self) -> &'static str {
        match self {
            Access::Index => "index",
            Access::Scan => "scan",
        }
    }
}

/// One variable's slot in the elimination order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// The pattern variable.
    pub var: String,
    /// Index seeding vs scanning.
    pub access: Access,
    /// Estimated candidate count (index cardinality, or the graph's
    /// node count for scans).
    pub estimate: usize,
    /// Number of property constraints on the variable after pushdown.
    pub props: usize,
    /// Number of range predicates (`<`, `<=`, `>`, `>=`) on the
    /// variable seeded from an ordered index. The predicates stay in
    /// the residual filter for exactness; this counts how many also
    /// narrowed the candidate domain.
    pub ranges: usize,
    /// Label constraint after pushdown, if any.
    pub label: Option<String>,
}

/// The recorded plan: what was pushed down and how each variable is
/// accessed, in elimination order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainPlan {
    /// Number of pattern variables.
    pub nodes: usize,
    /// WHERE conjuncts pushed into the pattern.
    pub pushed: usize,
    /// WHERE conjuncts left in the residual filter.
    pub residual: usize,
    /// True when the planner selected the vectorized batch executor
    /// (the view exposes a CSR batch backend — a frozen serving
    /// snapshot). Row-at-a-time views leave this false.
    pub vectorized: bool,
    /// Worker threads the morsel-driven parallel executor will use for
    /// this plan. `1` means sequential execution (row-at-a-time views,
    /// single-core hosts, or an explicit single-worker override);
    /// recorded at plan time so a cached plan executes the same way on
    /// every reuse.
    pub parallel_workers: usize,
    /// Variables in the order the matcher binds them.
    pub steps: Vec<PlanStep>,
}

impl ExplainPlan {
    /// Renders the plan as line-oriented text that [`Self::parse`]
    /// reads back. Labels containing whitespace are not supported by
    /// the text form.
    pub fn render(&self) -> String {
        let mut out = format!(
            "plan nodes={} pushed={} residual={}",
            self.nodes, self.pushed, self.residual
        );
        // Only emitted when the batch executor was selected, so plans
        // for row-at-a-time views render byte-identically to the
        // pre-vectorized text form (older parsers keep working).
        if self.vectorized {
            out.push_str(" vectorized=true");
        }
        // Only emitted when the parallel executor was selected, so
        // sequential plans render byte-identically to the pre-parallel
        // text form (older parsers keep working).
        if self.parallel_workers > 1 {
            out.push_str(&format!(" parallel_workers={}", self.parallel_workers));
        }
        out.push('\n');
        for s in &self.steps {
            out.push_str(&format!(
                "step var={} access={} estimate={} props={}",
                s.var,
                s.access.as_str(),
                s.estimate,
                s.props
            ));
            // Only emitted when a range predicate was seeded, so plans
            // without range pushdown render byte-identically to the
            // pre-range text form (older parsers keep working).
            if s.ranges > 0 {
                out.push_str(&format!(" ranges={}", s.ranges));
            }
            if let Some(label) = &s.label {
                out.push_str(&format!(" label={label}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses [`Self::render`]'s output back into a plan.
    pub fn parse(text: &str) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let head = lines
            .next()
            .ok_or_else(|| invalid("empty explain text".to_owned()))?;
        let mut toks = head.split_whitespace();
        if toks.next() != Some("plan") {
            return Err(invalid(format!(
                "explain header must start with `plan`: {head:?}"
            )));
        }
        let (mut nodes, mut pushed, mut residual) = (None, None, None);
        let mut vectorized = false;
        let mut parallel_workers = 1usize;
        for tok in toks {
            let (k, v) = split_kv(tok)?;
            if k == "vectorized" {
                vectorized = match v {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(invalid(format!("vectorized must be a bool, got {other:?}")))
                    }
                };
                continue;
            }
            let v = parse_count(k, v)?;
            match k {
                "nodes" => nodes = Some(v),
                "pushed" => pushed = Some(v),
                "residual" => residual = Some(v),
                // Absent in pre-parallel plan text: defaults to 1.
                "parallel_workers" => parallel_workers = v.max(1),
                other => return Err(invalid(format!("unknown plan field {other:?}"))),
            }
        }
        let mut steps = Vec::new();
        for line in lines {
            let mut toks = line.split_whitespace();
            if toks.next() != Some("step") {
                return Err(invalid(format!("expected `step` line, got {line:?}")));
            }
            let (mut var, mut access, mut estimate, mut props, mut ranges, mut label) =
                (None, None, None, None, None, None);
            for tok in toks {
                let (k, v) = split_kv(tok)?;
                match k {
                    "var" => var = Some(v.to_owned()),
                    "access" => {
                        access = Some(match v {
                            "index" => Access::Index,
                            "scan" => Access::Scan,
                            other => return Err(invalid(format!("unknown access kind {other:?}"))),
                        });
                    }
                    "estimate" => estimate = Some(parse_count(k, v)?),
                    "props" => props = Some(parse_count(k, v)?),
                    "ranges" => ranges = Some(parse_count(k, v)?),
                    "label" => label = Some(v.to_owned()),
                    other => return Err(invalid(format!("unknown step field {other:?}"))),
                }
            }
            steps.push(PlanStep {
                var: var.ok_or_else(|| invalid("step missing var".to_owned()))?,
                access: access.ok_or_else(|| invalid("step missing access".to_owned()))?,
                estimate: estimate.ok_or_else(|| invalid("step missing estimate".to_owned()))?,
                props: props.ok_or_else(|| invalid("step missing props".to_owned()))?,
                // Absent in pre-range plan text: default to zero.
                ranges: ranges.unwrap_or(0),
                label,
            });
        }
        Ok(Self {
            nodes: nodes.ok_or_else(|| invalid("plan missing nodes".to_owned()))?,
            pushed: pushed.ok_or_else(|| invalid("plan missing pushed".to_owned()))?,
            residual: residual.ok_or_else(|| invalid("plan missing residual".to_owned()))?,
            vectorized,
            parallel_workers,
            steps,
        })
    }
}

fn invalid(msg: String) -> GdmError {
    GdmError::InvalidArgument(msg)
}

fn split_kv(tok: &str) -> Result<(&str, &str)> {
    tok.split_once('=')
        .ok_or_else(|| invalid(format!("expected key=value, got {tok:?}")))
}

fn parse_count(key: &str, v: &str) -> Result<usize> {
    v.parse()
        .map_err(|_| invalid(format!("{key} must be an integer, got {v:?}")))
}

/// A query rewritten for execution: pushed-down pattern, per-variable
/// candidate domains, and the recorded plan.
#[derive(Debug, Clone)]
pub struct PlannedSelect {
    /// The rewritten query (constraints pushed into the pattern, the
    /// residual left as the filter).
    pub query: SelectQuery,
    /// Per-variable candidate domains, aligned with the rewritten
    /// pattern's nodes.
    pub domains: Domains,
    /// The recorded plan.
    pub explain: ExplainPlan,
}

/// Plans `query` against `g`: validates, pushes equality predicates
/// into the pattern, seeds index-coverable variables with candidate
/// domains, and records the elimination order.
pub fn plan_select<G: AttributedView + ?Sized>(
    g: &G,
    query: &SelectQuery,
) -> Result<PlannedSelect> {
    query.validate()?;
    let mut query = query.clone();
    let mut pushed = 0usize;
    let mut residual = Vec::new();
    if let Some(filter) = query.filter.take() {
        for c in conjuncts(filter) {
            if push_conjunct(&mut query.pattern, &c) {
                pushed += 1;
            } else {
                residual.push(c);
            }
        }
    }
    let residual_count = residual.len();
    let mut domains = index_domains(g, &query.pattern);
    let mut range_counts = vec![0usize; query.pattern.nodes.len()];
    // Edge-range pushdown: a pattern edge carrying range constraints
    // (`Pattern::edge_range`) narrows *both* endpoint variables to the
    // endpoints of index-qualifying edges, through the view's ordered
    // edge indexes. The constraint stays on the edge — the matcher
    // re-applies it exactly — so over-approximating index bounds
    // (inclusive, number-family loose) never change results.
    for e in &query.pattern.edges {
        seed_edge_range_domains(g, e, &mut domains, &mut range_counts);
    }
    // Range-predicate pushdown: residual conjuncts of the form
    // `var.key < literal` (any of <, <=, >, >=, either operand order)
    // seed the variable's candidate domain from the view's ordered
    // index. The conjunct *stays* in the residual — index range bounds
    // are inclusive and number-family loose, so the exact filter
    // re-check keeps the result set identical — which also keeps the
    // degradation-ladder fallback (domains discarded, reference
    // matcher) correct with no special casing.
    for c in &residual {
        seed_range_domain(g, &query.pattern, c, &mut domains, &mut range_counts);
    }
    query.filter = residual
        .into_iter()
        .reduce(|a, b| Expr::bin(BinOp::And, a, b));

    let estimates = domain_estimates(g, &query.pattern, &domains);
    let order = planned_order(&query.pattern, &estimates);
    let steps = order
        .iter()
        .map(|&i| {
            let pn = &query.pattern.nodes[i];
            PlanStep {
                var: pn.var.clone(),
                access: if domains[i].is_some() {
                    Access::Index
                } else {
                    Access::Scan
                },
                estimate: estimates[i],
                props: pn.props.len(),
                ranges: range_counts[i],
                label: pn.label.clone(),
            }
        })
        .collect();
    let vectorized = batch_snapshot(g).is_some();
    let explain = ExplainPlan {
        nodes: query.pattern.nodes.len(),
        pushed,
        residual: residual_count,
        vectorized,
        // Parallel execution needs the batch pipeline (only frozen
        // inputs are morsel-splittable) and more than one worker in
        // the pool. Recorded at plan time: plan-cache hits execute
        // with the workers the plan was made for.
        parallel_workers: if vectorized {
            gdm_algo::executor_workers().max(1)
        } else {
            1
        },
        steps,
    };
    Ok(PlannedSelect {
        query,
        domains,
        explain,
    })
}

/// Plans and executes `query`, returning the rows (identical to
/// [`crate::eval::evaluate_select_unplanned`]'s) plus the plan.
pub fn evaluate_select_planned<G: AttributedView + ?Sized>(
    g: &G,
    query: &SelectQuery,
) -> Result<(ResultSet, ExplainPlan)> {
    let planned = plan_select(g, query)?;
    // Degradation ladder: a secondary index that has drifted from the
    // graph (dangling candidate ids) must not silently drop or invent
    // rows — discard the index seeding and run the reference matcher.
    let table = if domains_consistent(g, &planned.domains) {
        // Frozen serving snapshots execute through the vectorized
        // batch pipeline (same rows as the planned matcher, CSR-array
        // speed) — morsel-parallel when the plan recorded more than
        // one worker; row-at-a-time views take the planned matcher.
        match batch_snapshot(g) {
            Some(fz) if planned.explain.parallel_workers > 1 => {
                gdm_algo::match_pattern_par_vectorized_domains(
                    fz,
                    &planned.query.pattern,
                    &planned.domains,
                    planned.explain.parallel_workers,
                )
            }
            Some(fz) => {
                gdm_algo::match_pattern_vectorized(fz, &planned.query.pattern, &planned.domains)
            }
            None => match_pattern_planned(g, &planned.query.pattern, &planned.domains),
        }
    } else {
        MatchTable::from_bindings(
            &planned.query.pattern,
            &gdm_algo::match_pattern(g, &planned.query.pattern),
        )
    };
    let rs = finish_select(g, &planned.query, table.to_bindings())?;
    Ok((rs, planned.explain))
}

/// Executes an already-planned query under an [`ExecutionGuard`] — the
/// entry point for plan-cache consumers (a query server) that plan
/// once and execute many times against an immutable snapshot.
///
/// The same degradation ladder as [`evaluate_select_planned`] applies:
/// the cached domains are re-probed against `g` and, if any candidate
/// id dangles (the plan was made against a different or since-mutated
/// graph), discarded in favour of the governed reference matcher —
/// slower, never wrong. Rows are identical to
/// [`evaluate_select_planned`]'s when the guard does not interrupt.
pub fn execute_planned_governed<G: AttributedView + ?Sized>(
    g: &G,
    planned: &PlannedSelect,
    guard: &gdm_govern::ExecutionGuard,
) -> Result<ResultSet> {
    let table = if domains_consistent(g, &planned.domains) {
        match batch_snapshot(g) {
            // The vectorized pipeline ticks the guard once per batch
            // (`ExecutionGuard::nodes`/`rows`), preserving the same
            // structured `Interrupted` semantics at lower overhead;
            // multi-worker plans run it morsel-parallel with per-worker
            // guard batching (same semantics, merged partials).
            Some(fz) if planned.explain.parallel_workers > 1 => {
                gdm_algo::match_pattern_par_vectorized_domains_governed(
                    fz,
                    &planned.query.pattern,
                    &planned.domains,
                    planned.explain.parallel_workers,
                    guard,
                )?
            }
            Some(fz) => gdm_algo::match_pattern_vectorized_governed(
                fz,
                &planned.query.pattern,
                &planned.domains,
                guard,
            )?,
            None => gdm_algo::planned::match_pattern_planned_governed(
                g,
                &planned.query.pattern,
                &planned.domains,
                guard,
            )?,
        }
    } else {
        MatchTable::from_bindings(
            &planned.query.pattern,
            &gdm_algo::match_pattern_governed(g, &planned.query.pattern, guard)?,
        )
    };
    finish_select(g, &planned.query, table.to_bindings())
}

/// Candidate domains from the view's indexes: a constrained variable
/// whose constraints an index can bound gets its candidate list;
/// everything else stays unrestricted.
fn index_domains<G: AttributedView + ?Sized>(g: &G, pattern: &Pattern) -> Domains {
    gdm_algo::planned::auto_domains(g, pattern)
}

/// The CSR snapshot behind `g`, when `g` exposes one — the hook the
/// planner uses to select the vectorized batch executor.
fn batch_snapshot<G: AttributedView + ?Sized>(g: &G) -> Option<&gdm_algo::FrozenGraph> {
    g.batch_backend()?.downcast_ref::<gdm_algo::FrozenGraph>()
}

/// Narrows both endpoint variables of a range-constrained pattern edge
/// to the endpoints of edges an ordered edge index says qualify.
/// Direction decides which pair component feeds which variable; `Both`
/// takes the union of the components for each endpoint (loose but
/// complete — the matcher's exact re-check tightens).
fn seed_edge_range_domains<G: AttributedView + ?Sized>(
    g: &G,
    e: &gdm_algo::PatternEdge,
    domains: &mut Domains,
    counts: &mut [usize],
) {
    use gdm_core::Direction;
    for (key, low, high) in &e.ranges {
        let Some(pairs) = g.edge_range_candidates(key, low.as_ref(), high.as_ref()) else {
            continue; // no ordered edge index for this key
        };
        let (mut from_ids, mut to_ids): (Vec<_>, Vec<_>) = match e.direction {
            Direction::Outgoing => pairs.iter().map(|&(f, t)| (f, t)).unzip(),
            Direction::Incoming => pairs.iter().map(|&(f, t)| (t, f)).unzip(),
            Direction::Both => {
                let all: Vec<_> = pairs.iter().flat_map(|&(f, t)| [f, t]).collect();
                (all.clone(), all)
            }
        };
        for (var, ids) in [(e.from, &mut from_ids), (e.to, &mut to_ids)] {
            ids.sort_unstable_by_key(|n| n.raw());
            ids.dedup();
            counts[var] += 1;
            domains[var] = Some(match domains[var].take() {
                None => std::mem::take(ids),
                Some(prev) => intersect_sorted(&prev, ids),
            });
        }
    }
}

/// If `expr` is a range conjunct an ordered index can bound, narrows
/// the variable's domain to the index range (intersecting any domain
/// already seeded by equality pushdown) and bumps its range count.
fn seed_range_domain<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    expr: &Expr,
    domains: &mut Domains,
    counts: &mut [usize],
) {
    let Expr::Bin(op, lhs, rhs) = expr else {
        return;
    };
    // Normalize `literal OP var.key` to `var.key OP' literal`.
    let (var, key, value, op) = match (&**lhs, &**rhs) {
        (Expr::Prop(v, k), Expr::Lit(val)) => (v, k, val, *op),
        (Expr::Lit(val), Expr::Prop(v, k)) => {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => *other,
            };
            (v, k, val, flipped)
        }
        _ => return,
    };
    let (low, high) = match op {
        BinOp::Lt | BinOp::Le => (None, Some(value)),
        BinOp::Gt | BinOp::Ge => (Some(value), None),
        _ => return,
    };
    // Comparisons with NULL are false for every binding, and the
    // pseudo-properties are computed at eval time — a stored property
    // that happens to share their name would not be what the filter
    // compares, so seeding from its index would drop valid rows.
    if matches!(value, Value::Null) || matches!(key.as_str(), "id" | "degree" | "label") {
        return;
    }
    let Some(i) = pattern.nodes.iter().position(|n| n.var == *var) else {
        return;
    };
    let Some(ids) = g.range_candidates(key, low, high) else {
        return;
    };
    counts[i] += 1;
    domains[i] = Some(match domains[i].take() {
        None => ids,
        // Both lists ascend by id (the `AttributedView` contract), so
        // a between-shaped conjunct pair intersects in one merge pass.
        Some(prev) => intersect_sorted(&prev, &ids),
    });
}

fn intersect_sorted(a: &[gdm_core::NodeId], b: &[gdm_core::NodeId]) -> Vec<gdm_core::NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].raw().cmp(&b[j].raw()) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Splits `expr` into its top-level AND conjuncts.
fn conjuncts(expr: Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    split_and(expr, &mut out);
    out
}

fn split_and(expr: Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Bin(BinOp::And, lhs, rhs) => {
            split_and(*lhs, out);
            split_and(*rhs, out);
        }
        other => out.push(other),
    }
}

/// Tries to turn one conjunct into a pattern constraint. Returns true
/// when the conjunct was absorbed and must leave the filter.
fn push_conjunct(pattern: &mut Pattern, expr: &Expr) -> bool {
    let Expr::Bin(BinOp::Eq, lhs, rhs) = expr else {
        return false;
    };
    let (var, key, value) = match (&**lhs, &**rhs) {
        (Expr::Prop(v, k), Expr::Lit(val)) | (Expr::Lit(val), Expr::Prop(v, k)) => (v, k, val),
        _ => return false,
    };
    // `NULL = missing-property` is true in a filter but unmatchable as
    // a pattern constraint; keep NULL comparisons in the residual.
    if matches!(value, Value::Null) {
        return false;
    }
    let Some(pn) = pattern.nodes.iter_mut().find(|n| n.var == *var) else {
        return false;
    };
    match key.as_str() {
        // Pseudo-properties computed at eval time; nothing stored to
        // constrain on.
        "id" | "degree" => false,
        // The label pseudo-property maps onto the pattern's label slot
        // when it is free (an already-labelled variable keeps the
        // conjunct in the residual — if the labels differ the filter
        // correctly empties the result).
        "label" => match (&pn.label, value) {
            (None, Value::Str(want)) => {
                pn.label = Some(want.clone());
                true
            }
            _ => false,
        },
        _ => {
            pn.props.push((key.clone(), value.clone()));
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Projection;
    use crate::eval::evaluate_select_unplanned;
    use gdm_algo::PatternNode;
    use gdm_core::props;
    use gdm_graphs::PropertyGraph;

    fn social() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let ada = g.add_node("person", props! { "name" => "ada", "age" => 36 });
        let bob = g.add_node("person", props! { "name" => "bob", "age" => 25 });
        let cleo = g.add_node("person", props! { "name" => "cleo", "age" => 41 });
        let acme = g.add_node("company", props! { "name" => "acme" });
        g.add_edge(ada, bob, "knows", props! {}).unwrap();
        g.add_edge(bob, cleo, "knows", props! {}).unwrap();
        g.add_edge(ada, acme, "works_at", props! {}).unwrap();
        g
    }

    fn name_query(filter: Option<Expr>) -> SelectQuery {
        let mut q = SelectQuery::default();
        q.pattern.node(PatternNode::var("p").with_label("person"));
        q.projections.push(Projection::Expr {
            name: "name".into(),
            expr: Expr::Prop("p".into(), "name".into()),
        });
        q.filter = filter;
        q
    }

    #[test]
    fn equality_predicates_are_pushed() {
        let g = social();
        let q = name_query(Some(Expr::bin(
            BinOp::And,
            Expr::bin(
                BinOp::Eq,
                Expr::Prop("p".into(), "age".into()),
                Expr::Lit(Value::from(36)),
            ),
            Expr::bin(
                BinOp::Gt,
                Expr::Prop("p".into(), "age".into()),
                Expr::Lit(Value::from(0)),
            ),
        )));
        let planned = plan_select(&g, &q).unwrap();
        assert_eq!(planned.explain.pushed, 1);
        assert_eq!(planned.explain.residual, 1);
        assert!(planned.query.filter.is_some(), "residual survives");
        assert_eq!(planned.query.pattern.nodes[0].props.len(), 1);
        let (rs, _) = evaluate_select_planned(&g, &q).unwrap();
        assert_eq!(rs, evaluate_select_unplanned(&g, &q).unwrap());
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("ada"));
    }

    #[test]
    fn reversed_operands_and_label_pseudo_prop_push() {
        let g = social();
        let mut q = SelectQuery::default();
        q.pattern.node(PatternNode::var("p"));
        q.projections.push(Projection::Expr {
            name: "id".into(),
            expr: Expr::Prop("p".into(), "id".into()),
        });
        q.filter = Some(Expr::bin(
            BinOp::Eq,
            Expr::Lit(Value::from("company")),
            Expr::Prop("p".into(), "label".into()),
        ));
        let planned = plan_select(&g, &q).unwrap();
        assert_eq!(planned.explain.pushed, 1);
        assert_eq!(planned.explain.residual, 0);
        assert_eq!(
            planned.query.pattern.nodes[0].label.as_deref(),
            Some("company")
        );
        assert!(planned.query.filter.is_none());
        let (rs, _) = evaluate_select_planned(&g, &q).unwrap();
        assert_eq!(rs, evaluate_select_unplanned(&g, &q).unwrap());
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn null_and_pseudo_predicates_stay_in_residual() {
        let g = social();
        let q = name_query(Some(Expr::bin(
            BinOp::And,
            Expr::bin(
                BinOp::Eq,
                Expr::Prop("p".into(), "salary".into()),
                Expr::Lit(Value::Null),
            ),
            Expr::bin(
                BinOp::Eq,
                Expr::Prop("p".into(), "degree".into()),
                Expr::Lit(Value::from(2)),
            ),
        )));
        let planned = plan_select(&g, &q).unwrap();
        assert_eq!(planned.explain.pushed, 0);
        assert_eq!(planned.explain.residual, 2);
        // The NULL conjunct is true for every person (no salary
        // property), so only the degree filter bites — and unplanned
        // agrees.
        let (rs, _) = evaluate_select_planned(&g, &q).unwrap();
        assert_eq!(rs, evaluate_select_unplanned(&g, &q).unwrap());
        assert_eq!(rs.len(), 2); // ada (degree 2) and bob (degree 2)
    }

    #[test]
    fn plan_uses_property_indexes_on_property_graphs() {
        let g = social();
        let q = name_query(Some(Expr::bin(
            BinOp::Eq,
            Expr::Prop("p".into(), "name".into()),
            Expr::Lit(Value::from("bob")),
        )));
        let planned = plan_select(&g, &q).unwrap();
        assert_eq!(planned.explain.steps.len(), 1);
        let step = &planned.explain.steps[0];
        assert_eq!(step.access, Access::Index);
        assert_eq!(step.props, 1);
        assert_eq!(step.label.as_deref(), Some("person"));
        assert!(step.estimate <= 1, "name index is near-unique");
        assert_eq!(
            planned.domains[0].as_ref().map(Vec::len),
            Some(step.estimate.min(1))
        );
    }

    #[test]
    fn explain_render_parse_round_trips() {
        let g = social();
        let mut q = SelectQuery::default();
        let a = q.pattern.node(PatternNode::var("a").with_label("person"));
        let b = q.pattern.node(PatternNode::var("b"));
        q.pattern.edge(a, b, Some("knows")).unwrap();
        q.projections.push(Projection::Expr {
            name: "x".into(),
            expr: Expr::Var("a".into()),
        });
        q.filter = Some(Expr::bin(
            BinOp::Eq,
            Expr::Prop("a".into(), "name".into()),
            Expr::Lit(Value::from("ada")),
        ));
        let planned = plan_select(&g, &q).unwrap();
        let text = planned.explain.render();
        assert!(text.starts_with("plan nodes=2 pushed=1 residual=0"));
        let back = ExplainPlan::parse(&text).unwrap();
        assert_eq!(back, planned.explain);
    }

    #[test]
    fn explain_parse_rejects_garbage() {
        assert!(ExplainPlan::parse("").is_err());
        assert!(ExplainPlan::parse("nope nodes=1").is_err());
        assert!(ExplainPlan::parse("plan nodes=x pushed=0 residual=0").is_err());
        assert!(ExplainPlan::parse("plan nodes=0 pushed=0 residual=0\nstep var=a").is_err());
    }

    #[test]
    fn frozen_snapshot_plans_select_the_vectorized_backend() {
        let g = social();
        let fz = gdm_algo::FrozenGraph::freeze_attributed(&g);
        let q = name_query(Some(Expr::bin(
            BinOp::Eq,
            Expr::Prop("p".into(), "name".into()),
            Expr::Lit(Value::from("bob")),
        )));
        // Live graph: row-at-a-time; no flag, byte-identical old text.
        let live = plan_select(&g, &q).unwrap();
        assert!(!live.explain.vectorized);
        assert!(!live.explain.render().contains("vectorized"));
        // Snapshot: the batch backend is selected and recorded.
        let frozen = plan_select(&fz, &q).unwrap();
        assert!(frozen.explain.vectorized);
        assert!(frozen
            .explain
            .render()
            .starts_with("plan nodes=1 pushed=1 residual=0 vectorized=true"));
        let back = ExplainPlan::parse(&frozen.explain.render()).unwrap();
        assert_eq!(back, frozen.explain);
        // Both backends return identical rows.
        let (rows_live, _) = evaluate_select_planned(&g, &q).unwrap();
        let (rows_frozen, _) = evaluate_select_planned(&fz, &q).unwrap();
        assert_eq!(rows_live, rows_frozen);
        assert_eq!(rows_frozen.len(), 1);
    }

    #[test]
    fn parallel_workers_render_parse_and_routing() {
        let g = social();
        let q = name_query(None);
        // Row-at-a-time views always plan sequential, and sequential
        // plans render byte-identically to the pre-parallel text form.
        let live = plan_select(&g, &q).unwrap();
        assert_eq!(live.explain.parallel_workers, 1);
        assert!(!live.explain.render().contains("parallel_workers"));
        // A multi-worker plan round-trips through the text form.
        let mut explain = live.explain.clone();
        explain.parallel_workers = 4;
        let text = explain.render();
        assert!(text.contains("parallel_workers=4"));
        assert_eq!(ExplainPlan::parse(&text).unwrap(), explain);
        // A frozen plan forced to multiple workers routes execution
        // through the morsel-driven executor — identical rows, both
        // ungoverned and governed.
        let fz = gdm_algo::FrozenGraph::freeze_attributed(&g);
        let mut planned = plan_select(&fz, &q).unwrap();
        let guard = gdm_govern::ExecutionGuard::unlimited();
        let seq = execute_planned_governed(&fz, &planned, &guard).unwrap();
        planned.explain.parallel_workers = 2;
        let guard = gdm_govern::ExecutionGuard::unlimited();
        let par = execute_planned_governed(&fz, &planned, &guard).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn edge_ranges_seed_endpoint_domains() {
        let mut g = PropertyGraph::new();
        let mut people = Vec::new();
        for i in 0..10i64 {
            people.push(g.add_node("person", props! { "i" => i }));
        }
        for i in 0..10usize {
            let j = (i + 1) % 10;
            g.add_edge(
                people[i],
                people[j],
                "knows",
                props! { "since" => 2000 + i as i64 },
            )
            .unwrap();
        }
        let mut q = SelectQuery::default();
        let a = q.pattern.node(PatternNode::var("a"));
        let b = q.pattern.node(PatternNode::var("b"));
        q.pattern.edge(a, b, Some("knows")).unwrap();
        q.pattern
            .edge_range("since", Some(Value::from(2003)), Some(Value::from(2005)))
            .unwrap();
        q.projections.push(Projection::Expr {
            name: "i".into(),
            expr: Expr::Prop("a".into(), "i".into()),
        });
        let planned = plan_select(&g, &q).unwrap();
        // Both endpoints narrowed from the edge index: 3 qualifying
        // edges → at most 3 candidates per endpoint, counted as range
        // seeding on both steps.
        for step in &planned.explain.steps {
            assert_eq!(step.ranges, 1, "step {}", step.var);
            assert_eq!(step.access, Access::Index, "step {}", step.var);
            assert!(step.estimate <= 3, "step {}: {}", step.var, step.estimate);
        }
        let (rs, _) = evaluate_select_planned(&g, &q).unwrap();
        assert_eq!(rs.len(), 3);
        // The frozen snapshot answers identically through its own
        // freeze-time edge-range index plus the vectorized executor.
        let fz = gdm_algo::FrozenGraph::freeze_attributed(&g);
        let (rs_fz, explain_fz) = evaluate_select_planned(&fz, &q).unwrap();
        assert!(explain_fz.vectorized);
        assert_eq!(rs_fz.len(), 3);
    }

    #[test]
    fn planned_join_matches_unplanned() {
        let g = social();
        let mut q = SelectQuery::default();
        let a = q.pattern.node(PatternNode::var("a"));
        let b = q.pattern.node(PatternNode::var("b"));
        q.pattern.edge(a, b, Some("knows")).unwrap();
        q.projections.push(Projection::Expr {
            name: "to".into(),
            expr: Expr::Prop("b".into(), "name".into()),
        });
        q.filter = Some(Expr::bin(
            BinOp::Eq,
            Expr::Prop("a".into(), "label".into()),
            Expr::Lit(Value::from("person")),
        ));
        let (rs, explain) = evaluate_select_planned(&g, &q).unwrap();
        assert_eq!(rs, evaluate_select_unplanned(&g, &q).unwrap());
        assert_eq!(explain.nodes, 2);
        assert_eq!(explain.steps.len(), 2);
    }
}
