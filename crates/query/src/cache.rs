//! A shared plan cache for repeated pattern queries.
//!
//! Planning is cheap but not free — conjunct splitting, index probes,
//! and candidate materialization all walk the query each time — and a
//! serving layer sees the same query texts over and over. The cache
//! maps a **canonical query text** to its [`PlannedSelect`] so repeat
//! executions skip planning entirely.
//!
//! Keying: the key is the canonical *query text*, not the rendered
//! [`ExplainPlan`](crate::plan::ExplainPlan). The render is a faithful
//! fingerprint of *how* a query executes (it is exposed per entry via
//! [`PlanCache::fingerprint`] and the server's `STATS` command), but
//! it deliberately omits *what* the query computes — projections,
//! residual literal values, order/skip/limit — so two different
//! queries can render identically and the render cannot be the key.
//!
//! Staleness: a cached plan embeds materialized candidate domains.
//! Executing one against a graph that has since gained nodes can miss
//! them, so the cache is only sound for **immutable snapshots** (the
//! serving layer's [`FrozenGraph`](gdm_algo::FrozenGraph)); callers
//! that mutate must [`PlanCache::clear`] on write. Deleted nodes are
//! caught anyway: execution re-probes domains and falls back to the
//! reference matcher on the first dangling id.
//!
//! Concurrency: lookups and inserts take a [`Mutex`] for the map;
//! hit/miss counters are lock-free atomics so `STATS` never contends
//! with query traffic.

use crate::ast::SelectQuery;
use crate::plan::{plan_select, PlannedSelect};
use gdm_core::{AttributedView, FxHashMap, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A bounded, concurrency-safe cache of planned queries.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    epoch_evictions: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Each plan is tagged with the snapshot epoch it was planned
    /// against; a lookup under a different epoch evicts the entry
    /// (see [`PlanCache::get_epoch`]).
    map: FxHashMap<String, (u64, Arc<PlannedSelect>)>,
    /// Keys in insertion order — FIFO eviction. Plans are small and
    /// per-snapshot, so recency tracking is not worth a second lock
    /// touch on the hit path.
    order: VecDeque<String>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            epoch_evictions: AtomicU64::new(0),
        }
    }

    /// Returns the plan for `key` and executes the miss path
    /// (planning against `g`) at most once per distinct key until
    /// eviction. Errors from planning are not cached.
    pub fn plan<G: AttributedView + ?Sized>(
        &self,
        g: &G,
        key: &str,
        query: &SelectQuery,
    ) -> Result<Arc<PlannedSelect>> {
        if let Some(hit) = self.get(key) {
            return Ok(hit);
        }
        let planned = Arc::new(plan_select(g, query)?);
        self.insert(key, planned.clone());
        Ok(planned)
    }

    /// Looks `key` up, counting a hit or a miss. Epoch-agnostic:
    /// equivalent to [`PlanCache::get_epoch`] with epoch 0, for
    /// callers serving a single immutable snapshot for the cache's
    /// whole life.
    pub fn get(&self, key: &str) -> Option<Arc<PlannedSelect>> {
        self.get_epoch(key, 0)
    }

    /// Looks `key` up for a snapshot with the given epoch. A plan
    /// cached against any *other* epoch is stale — its materialized
    /// candidate domains index a graph that no longer serves — so the
    /// entry is evicted on the spot (counted in
    /// [`PlanCache::epoch_evictions`]) and the lookup misses. This is
    /// what lets a live-refreshing server keep one shared cache across
    /// snapshot swaps without a stop-the-world clear.
    pub fn get_epoch(&self, key: &str, epoch: u64) -> Option<Arc<PlannedSelect>> {
        let mut inner = self.inner.lock().expect("plan cache lock");
        let found = match inner.map.get(key) {
            Some((e, plan)) if *e == epoch => Some(plan.clone()),
            Some(_) => {
                inner.map.remove(key);
                inner.order.retain(|k| k != key);
                self.epoch_evictions.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        };
        drop(inner);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a plan under `key` for epoch 0 — the epoch-agnostic
    /// twin of [`PlanCache::get`].
    pub fn insert(&self, key: &str, plan: Arc<PlannedSelect>) {
        self.insert_epoch(key, 0, plan);
    }

    /// Inserts a plan under `key`, tagged with the epoch of the
    /// snapshot it was planned against, evicting the oldest entry at
    /// capacity. Re-inserting an existing key replaces its plan (and
    /// epoch tag) without growing the cache.
    pub fn insert_epoch(&self, key: &str, epoch: u64, plan: Arc<PlannedSelect>) {
        let mut inner = self.inner.lock().expect("plan cache lock");
        if inner.map.insert(key.to_owned(), (epoch, plan)).is_none() {
            inner.order.push_back(key.to_owned());
            while inner.map.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// The canonical `EXPLAIN` render of the cached plan for `key`,
    /// without touching the hit/miss counters.
    pub fn fingerprint(&self, key: &str) -> Option<String> {
        self.inner
            .lock()
            .expect("plan cache lock")
            .map
            .get(key)
            .map(|(_, p)| p.explain.render())
    }

    /// Drops every entry (counters keep their totals) — required
    /// after any mutation of the graph the plans were made against.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("plan cache lock");
        inner.map.clear();
        inner.order.clear();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache lock").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime entries evicted because a lookup arrived under a
    /// different snapshot epoch than the one the plan was made for.
    pub fn epoch_evictions(&self) -> u64 {
        self.epoch_evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Projection};
    use crate::cypher;
    use gdm_core::props;
    use gdm_graphs::PropertyGraph;

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_node("person", props! { "name" => "ada" });
        g.add_node("person", props! { "name" => "bob" });
        g
    }

    fn query(name: &str) -> SelectQuery {
        let text = format!("MATCH (p:person {{name: '{name}'}}) RETURN p.name");
        match cypher::parse(&text).unwrap() {
            cypher::CypherStatement::Select(q) => *q,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn repeat_lookups_hit() {
        let g = graph();
        let cache = PlanCache::new(8);
        let q = query("ada");
        let first = cache.plan(&g, "q1", &q).unwrap();
        let second = cache.plan(&g, "q1", &q).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second lookup reuses the plan"
        );
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let g = graph();
        let cache = PlanCache::new(2);
        for (i, name) in ["ada", "bob", "cleo"].iter().enumerate() {
            cache.plan(&g, &format!("q{i}"), &query(name)).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.fingerprint("q0").is_none(), "oldest evicted");
        assert!(cache.fingerprint("q2").is_some());
    }

    #[test]
    fn fingerprint_is_the_explain_render() {
        let g = graph();
        let cache = PlanCache::new(4);
        let planned = cache.plan(&g, "q", &query("ada")).unwrap();
        assert_eq!(cache.fingerprint("q").unwrap(), planned.explain.render());
        crate::plan::ExplainPlan::parse(&cache.fingerprint("q").unwrap())
            .expect("fingerprint parses back");
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let g = graph();
        let cache = PlanCache::new(4);
        cache.plan(&g, "q", &query("ada")).unwrap();
        cache.get("q");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn epoch_mismatch_evicts_and_misses() {
        let g = graph();
        let cache = PlanCache::new(4);
        let planned = Arc::new(plan_select(&g, &query("ada")).unwrap());
        cache.insert_epoch("q", 7, planned.clone());
        assert!(cache.get_epoch("q", 7).is_some(), "same epoch hits");
        assert_eq!(cache.epoch_evictions(), 0);
        // The snapshot was swapped: the stale plan must not serve.
        assert!(cache.get_epoch("q", 8).is_none());
        assert_eq!(cache.epoch_evictions(), 1);
        assert_eq!(cache.len(), 0, "stale entry evicted eagerly");
        // Re-inserting under the new epoch works normally again.
        cache.insert_epoch("q", 8, planned);
        assert!(cache.get_epoch("q", 8).is_some());
    }

    #[test]
    fn planning_errors_are_not_cached() {
        let g = graph();
        let cache = PlanCache::new(4);
        // No projections: validation fails.
        let mut bad = SelectQuery::default();
        bad.pattern
            .node(gdm_algo::PatternNode::var("p").with_label("person"));
        assert!(cache.plan(&g, "bad", &bad).is_err());
        assert_eq!(cache.len(), 0);
        let _ = Projection::Expr {
            name: "x".into(),
            expr: Expr::Var("p".into()),
        };
    }
}
