//! A Cypher-like query language (Neo4j).
//!
//! The paper records Neo4j's query language as *in development* and
//! marks it `◦` (partial support) in Table V: "Neo4j is developing
//! Cypher, a query language for property graphs." This front-end
//! matches that status deliberately: the core read/create forms parse
//! and run, while the larger language surface (`WITH`, `OPTIONAL
//! MATCH`, `MERGE`, `UNION`, subqueries) is rejected with a parse
//! error naming the unsupported form — exactly the partial-support
//! story the comparison harness probes.
//!
//! Supported grammar:
//!
//! ```text
//! query   := MATCH pattern (',' pattern)* [WHERE expr]
//!            RETURN [DISTINCT] proj (',' proj)*
//!            [ORDER BY expr [ASC|DESC]] [SKIP n] [LIMIT n]
//!          | CREATE node-pat (',' node-pat)*
//! pattern := node-pat (edge node-pat)*
//! node-pat:= '(' [var] [':' label] [props] ')'
//! edge    := '-[' [':' type] ['*' min '..' max] ']->' | '<-[...]-' | '-[...]-'
//! props   := '{' key ':' literal (',' key ':' literal)* '}'
//! proj    := expr [AS name] | count '(' '*' | expr ')' | sum/avg/min/max '(' expr ')'
//! ```

use crate::ast::{BinOp, Expr, Projection, SelectQuery, VarLengthEdge};
use crate::lex::{Cursor, TokenKind};
use gdm_algo::pattern::PatternNode;
use gdm_algo::summary::parse_aggregate;
use gdm_core::{Direction, PropertyMap, Result, Value};

const DIALECT: &str = "cypher";

/// A parsed Cypher statement.
#[derive(Debug, Clone)]
pub enum CypherStatement {
    /// A read query lowered to the shared algebra.
    Select(Box<SelectQuery>),
    /// `CREATE (...)` — nodes (optionally connected) to insert.
    Create(Vec<CreateItem>),
}

/// One element of a `CREATE` clause.
#[derive(Debug, Clone)]
pub struct CreateItem {
    /// Nodes in the created chain: `(var?, label, properties)`.
    pub nodes: Vec<(Option<String>, String, PropertyMap)>,
    /// Edges between consecutive nodes: `(rel type, properties)`.
    pub edges: Vec<(String, PropertyMap)>,
}

/// Keywords the full language has but this partial dialect does not.
const UNSUPPORTED: &[&str] = &[
    "with", "optional", "merge", "union", "unwind", "call", "foreach", "set", "delete", "remove",
];

/// Parses one Cypher statement.
pub fn parse(src: &str) -> Result<CypherStatement> {
    let mut c = Cursor::lex(DIALECT, src, false)?;
    for kw in UNSUPPORTED {
        if c.at_keyword(kw) {
            return Err(c.error(format!(
                "{} is not supported by this partial Cypher implementation \
                 (the paper marks Neo4j's query language as partial)",
                kw.to_uppercase()
            )));
        }
    }
    if c.at_keyword("create") {
        c.bump();
        let stmt = parse_create(&mut c)?;
        expect_eof(&c)?;
        return Ok(CypherStatement::Create(stmt));
    }
    c.expect_keyword("match")?;
    let mut query = SelectQuery::default();
    loop {
        parse_path_pattern(&mut c, &mut query)?;
        if !c.eat_punct(",") {
            break;
        }
    }
    for kw in UNSUPPORTED {
        if c.at_keyword(kw) {
            return Err(c.error(format!(
                "{} is not supported by this partial Cypher implementation",
                kw.to_uppercase()
            )));
        }
    }
    if c.eat_keyword("where") {
        query.filter = Some(parse_expr(&mut c)?);
    }
    c.expect_keyword("return")?;
    if c.eat_keyword("distinct") {
        query.distinct = true;
    }
    loop {
        query.projections.push(parse_projection(&mut c)?);
        if !c.eat_punct(",") {
            break;
        }
    }
    // Cypher's implicit grouping: when RETURN mixes aggregates with
    // plain items, the plain items become the grouping keys.
    let has_agg = query.projections.iter().any(Projection::is_aggregate);
    if has_agg {
        query.group_by = query
            .projections
            .iter()
            .filter_map(|p| match p {
                Projection::Expr { expr, .. } => Some(expr.clone()),
                Projection::Aggregate { .. } => None,
            })
            .collect();
    }
    if c.eat_keyword("order") {
        c.expect_keyword("by")?;
        let key = parse_expr(&mut c)?;
        let asc = if c.eat_keyword("desc") {
            false
        } else {
            c.eat_keyword("asc");
            true
        };
        query.order_by = Some((key, asc));
    }
    if c.eat_keyword("skip") {
        query.skip = parse_usize(&mut c)?;
    }
    if c.eat_keyword("limit") {
        query.limit = Some(parse_usize(&mut c)?);
    }
    expect_eof(&c)?;
    query.validate()?;
    Ok(CypherStatement::Select(Box::new(query)))
}

fn expect_eof(c: &Cursor) -> Result<()> {
    if c.at_eof() {
        Ok(())
    } else {
        Err(c.error(format!("unexpected trailing input: {:?}", c.peek())))
    }
}

fn parse_usize(c: &mut Cursor) -> Result<usize> {
    match c.bump() {
        TokenKind::Int(i) if i >= 0 => Ok(i as usize),
        other => Err(c.error(format!("expected non-negative integer, found {other:?}"))),
    }
}

// ---- MATCH patterns --------------------------------------------------

fn parse_path_pattern(c: &mut Cursor, query: &mut SelectQuery) -> Result<()> {
    let mut prev = parse_node_pattern(c, query)?;
    loop {
        // Edge?
        let (direction_left, has_edge) = if c.eat_punct("<-") {
            (true, true)
        } else if c.eat_punct("-") {
            (false, true)
        } else {
            (false, false)
        };
        if !has_edge {
            return Ok(());
        }
        let mut label = None;
        let mut var_len: Option<(usize, usize)> = None;
        if c.eat_punct("[") {
            if c.eat_punct(":") {
                label = Some(c.expect_ident()?);
            }
            if c.eat_punct("*") {
                let min = match c.peek() {
                    TokenKind::Int(_) => parse_usize(c)?,
                    _ => 1,
                };
                let max = if c.eat_punct("..") {
                    parse_usize(c)?
                } else {
                    min.max(1)
                };
                var_len = Some((min.max(1), max));
            }
            c.expect_punct("]")?;
        }
        // Closing arrow.
        let direction = if direction_left {
            c.expect_punct("-")?;
            Direction::Incoming
        } else if c.eat_punct("->") {
            Direction::Outgoing
        } else if c.eat_punct("-") {
            Direction::Both
        } else {
            return Err(c.error("expected '->' or '-' to close the relationship"));
        };
        let next = parse_node_pattern(c, query)?;
        match var_len {
            Some((min, max)) => {
                let (from, to) = match direction {
                    Direction::Incoming => (next.clone(), prev.clone()),
                    _ => (prev.clone(), next.clone()),
                };
                query.var_paths.push(VarLengthEdge {
                    from,
                    to,
                    label,
                    min,
                    max,
                });
            }
            None => {
                let from_idx = var_index(query, &prev);
                let to_idx = var_index(query, &next);
                let (a, b) = match direction {
                    Direction::Incoming => (to_idx, from_idx),
                    _ => (from_idx, to_idx),
                };
                if direction == Direction::Both {
                    query.pattern.edge_undirected(a, b, label.as_deref())?;
                } else {
                    query.pattern.edge(a, b, label.as_deref())?;
                }
            }
        }
        prev = next;
    }
}

fn var_index(query: &SelectQuery, var: &str) -> usize {
    query
        .pattern
        .nodes
        .iter()
        .position(|n| n.var == var)
        .expect("node patterns register variables before edges use them")
}

/// Counter for anonymous node variables.
fn fresh_var(query: &SelectQuery) -> String {
    format!("_anon{}", query.pattern.nodes.len())
}

fn parse_node_pattern(c: &mut Cursor, query: &mut SelectQuery) -> Result<String> {
    c.expect_punct("(")?;
    let var = match c.peek().clone() {
        TokenKind::Ident(name) => {
            c.bump();
            name
        }
        _ => fresh_var(query),
    };
    // Re-reference of an existing variable: `(a)` after it was declared.
    let existing = query.pattern.nodes.iter().any(|n| n.var == var);
    let mut node = PatternNode::var(var.clone());
    if c.eat_punct(":") {
        node = node.with_label(c.expect_ident()?);
    }
    if matches!(c.peek(), TokenKind::Punct("{")) {
        for (k, v) in parse_props(c)? {
            node = node.with_prop(k, v);
        }
    }
    c.expect_punct(")")?;
    if existing {
        if node.label.is_some() || !node.props.is_empty() {
            return Err(c.error(format!(
                "variable {var:?} was already declared; re-references take no constraints"
            )));
        }
    } else {
        query.pattern.node(node);
    }
    Ok(var)
}

fn parse_props(c: &mut Cursor) -> Result<Vec<(String, Value)>> {
    c.expect_punct("{")?;
    let mut out = Vec::new();
    if !c.eat_punct("}") {
        loop {
            let key = c.expect_ident()?;
            c.expect_punct(":")?;
            let value = parse_literal(c)?;
            out.push((key, value));
            if !c.eat_punct(",") {
                break;
            }
        }
        c.expect_punct("}")?;
    }
    Ok(out)
}

fn parse_literal(c: &mut Cursor) -> Result<Value> {
    match c.bump() {
        TokenKind::Str(s) => Ok(Value::Str(s)),
        TokenKind::Int(i) => Ok(Value::Int(i)),
        TokenKind::Float(f) => Ok(Value::Float(f)),
        TokenKind::Punct("-") => match c.bump() {
            TokenKind::Int(i) => Ok(Value::Int(-i)),
            TokenKind::Float(f) => Ok(Value::Float(-f)),
            other => Err(c.error(format!("expected number after '-', found {other:?}"))),
        },
        TokenKind::Ident(s) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
        TokenKind::Ident(s) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
        TokenKind::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
        other => Err(c.error(format!("expected literal, found {other:?}"))),
    }
}

// ---- expressions -----------------------------------------------------

/// Entry point shared with the GQL dialect, whose expression grammar
/// is token-for-token identical.
pub fn parse_expr_for_dialect(c: &mut Cursor) -> Result<Expr> {
    parse_expr(c)
}

fn parse_expr(c: &mut Cursor) -> Result<Expr> {
    parse_or(c)
}

fn parse_or(c: &mut Cursor) -> Result<Expr> {
    let mut lhs = parse_and(c)?;
    while c.eat_keyword("or") {
        let rhs = parse_and(c)?;
        lhs = Expr::bin(BinOp::Or, lhs, rhs);
    }
    Ok(lhs)
}

fn parse_and(c: &mut Cursor) -> Result<Expr> {
    let mut lhs = parse_not(c)?;
    while c.eat_keyword("and") {
        let rhs = parse_not(c)?;
        lhs = Expr::bin(BinOp::And, lhs, rhs);
    }
    Ok(lhs)
}

fn parse_not(c: &mut Cursor) -> Result<Expr> {
    if c.eat_keyword("not") {
        Ok(Expr::Not(Box::new(parse_not(c)?)))
    } else {
        parse_cmp(c)
    }
}

fn parse_cmp(c: &mut Cursor) -> Result<Expr> {
    let lhs = parse_additive(c)?;
    let op = if c.eat_punct("<=") {
        Some(BinOp::Le)
    } else if c.eat_punct(">=") {
        Some(BinOp::Ge)
    } else if c.eat_punct("<>") || c.eat_punct("!=") {
        Some(BinOp::Ne)
    } else if c.eat_punct("=") {
        Some(BinOp::Eq)
    } else if c.eat_punct("<") {
        Some(BinOp::Lt)
    } else if c.eat_punct(">") {
        Some(BinOp::Gt)
    } else {
        None
    };
    match op {
        Some(op) => {
            let rhs = parse_additive(c)?;
            Ok(Expr::bin(op, lhs, rhs))
        }
        None => Ok(lhs),
    }
}

fn parse_additive(c: &mut Cursor) -> Result<Expr> {
    let mut lhs = parse_multiplicative(c)?;
    loop {
        if c.eat_punct("+") {
            lhs = Expr::bin(BinOp::Add, lhs, parse_multiplicative(c)?);
        } else if c.eat_punct("-") {
            lhs = Expr::bin(BinOp::Sub, lhs, parse_multiplicative(c)?);
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_multiplicative(c: &mut Cursor) -> Result<Expr> {
    let mut lhs = parse_primary(c)?;
    loop {
        if c.eat_punct("*") {
            lhs = Expr::bin(BinOp::Mul, lhs, parse_primary(c)?);
        } else if c.eat_punct("/") {
            lhs = Expr::bin(BinOp::Div, lhs, parse_primary(c)?);
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_primary(c: &mut Cursor) -> Result<Expr> {
    if c.eat_punct("(") {
        let inner = parse_expr(c)?;
        c.expect_punct(")")?;
        return Ok(inner);
    }
    match c.peek().clone() {
        TokenKind::Ident(name)
            if !name.eq_ignore_ascii_case("true")
                && !name.eq_ignore_ascii_case("false")
                && !name.eq_ignore_ascii_case("null") =>
        {
            c.bump();
            if c.eat_punct(".") {
                let key = c.expect_ident()?;
                Ok(Expr::Prop(name, key))
            } else {
                Ok(Expr::Var(name))
            }
        }
        _ => Ok(Expr::Lit(parse_literal(c)?)),
    }
}

// ---- projections -----------------------------------------------------

fn parse_projection(c: &mut Cursor) -> Result<Projection> {
    // Aggregate function?
    if let TokenKind::Ident(name) = c.peek().clone() {
        if let Some(agg) = parse_aggregate(&name) {
            // Aggregates use call syntax; bump the name and check for
            // '(' — when absent, the name was an ordinary variable.
            c.bump();
            if c.eat_punct("(") {
                let expr = if c.eat_punct("*") {
                    None
                } else {
                    Some(parse_expr(c)?)
                };
                c.expect_punct(")")?;
                let col = if c.eat_keyword("as") {
                    c.expect_ident()?
                } else {
                    name.to_lowercase()
                };
                return Ok(Projection::Aggregate {
                    name: col,
                    agg,
                    expr,
                });
            }
            // Not a call: treat as variable reference.
            let expr = if c.eat_punct(".") {
                let key = c.expect_ident()?;
                Expr::Prop(name.clone(), key)
            } else {
                Expr::Var(name.clone())
            };
            let col = if c.eat_keyword("as") {
                c.expect_ident()?
            } else {
                name
            };
            return Ok(Projection::Expr { name: col, expr });
        }
    }
    let expr = parse_expr(c)?;
    let col = if c.eat_keyword("as") {
        c.expect_ident()?
    } else {
        default_name(&expr)
    };
    Ok(Projection::Expr { name: col, expr })
}

fn default_name(expr: &Expr) -> String {
    match expr {
        Expr::Var(v) => v.clone(),
        Expr::Prop(v, k) => format!("{v}.{k}"),
        _ => "expr".to_owned(),
    }
}

// ---- CREATE ----------------------------------------------------------

fn parse_create(c: &mut Cursor) -> Result<Vec<CreateItem>> {
    let mut items = Vec::new();
    loop {
        let mut item = CreateItem {
            nodes: Vec::new(),
            edges: Vec::new(),
        };
        parse_create_node(c, &mut item)?;
        loop {
            if c.eat_punct("-") {
                c.expect_punct("[")?;
                c.expect_punct(":")?;
                let rel = c.expect_ident()?;
                let props = if matches!(c.peek(), TokenKind::Punct("{")) {
                    props_to_map(parse_props(c)?)
                } else {
                    PropertyMap::new()
                };
                c.expect_punct("]")?;
                c.expect_punct("->")?;
                item.edges.push((rel, props));
                parse_create_node(c, &mut item)?;
            } else {
                break;
            }
        }
        items.push(item);
        if !c.eat_punct(",") {
            break;
        }
    }
    Ok(items)
}

fn parse_create_node(c: &mut Cursor, item: &mut CreateItem) -> Result<()> {
    c.expect_punct("(")?;
    let var = match c.peek().clone() {
        TokenKind::Ident(name) => {
            c.bump();
            Some(name)
        }
        _ => None,
    };
    c.expect_punct(":")?;
    let label = c.expect_ident()?;
    let props = if matches!(c.peek(), TokenKind::Punct("{")) {
        props_to_map(parse_props(c)?)
    } else {
        PropertyMap::new()
    };
    c.expect_punct(")")?;
    item.nodes.push((var, label, props));
    Ok(())
}

fn props_to_map(pairs: Vec<(String, Value)>) -> PropertyMap {
    pairs.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_select;
    use gdm_core::props;
    use gdm_graphs::PropertyGraph;

    fn social() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let ada = g.add_node("person", props! { "name" => "ada", "age" => 36 });
        let bob = g.add_node("person", props! { "name" => "bob", "age" => 25 });
        let cleo = g.add_node("person", props! { "name" => "cleo", "age" => 41 });
        let acme = g.add_node("company", props! { "name" => "acme" });
        g.add_edge(ada, bob, "knows", props! { "since" => 2001 })
            .unwrap();
        g.add_edge(bob, cleo, "knows", props! {}).unwrap();
        g.add_edge(ada, acme, "works_at", props! {}).unwrap();
        g
    }

    fn run(g: &PropertyGraph, src: &str) -> crate::eval::ResultSet {
        match parse(src).unwrap() {
            CypherStatement::Select(q) => evaluate_select(g, &q).unwrap(),
            CypherStatement::Create(_) => panic!("expected select"),
        }
    }

    #[test]
    fn match_label_return_property() {
        let g = social();
        let rs = run(&g, "MATCH (p:person) RETURN p.name");
        assert_eq!(rs.columns, vec!["p.name"]);
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn match_with_inline_props_and_where() {
        let g = social();
        let rs = run(
            &g,
            "MATCH (p:person) WHERE p.age > 30 AND p.name <> 'cleo' RETURN p.name AS who",
        );
        assert_eq!(rs.columns, vec!["who"]);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("ada"));
    }

    #[test]
    fn relationship_pattern() {
        let g = social();
        let rs = run(
            &g,
            "MATCH (a:person {name: 'ada'})-[:knows]->(b) RETURN b.name",
        );
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("bob"));
    }

    #[test]
    fn incoming_relationship() {
        let g = social();
        let rs = run(&g, "MATCH (a)<-[:knows]-(b) RETURN a.name, b.name");
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn variable_length_path() {
        let g = social();
        let rs = run(
            &g,
            "MATCH (a:person {name: 'ada'})-[:knows*1..2]->(b:person) RETURN b.name ORDER BY b.name",
        );
        let names: Vec<&str> = rs.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["bob", "cleo"]);
    }

    #[test]
    fn aggregates_and_count_star() {
        let g = social();
        let rs = run(&g, "MATCH (p:person) RETURN count(*) AS n, avg(p.age) AS a");
        assert_eq!(rs.get(0, "n"), Some(&Value::from(3)));
        assert_eq!(rs.get(0, "a"), Some(&Value::from(34.0)));
    }

    #[test]
    fn order_skip_limit() {
        let g = social();
        let rs = run(
            &g,
            "MATCH (p:person) RETURN p.name ORDER BY p.age DESC SKIP 1 LIMIT 1",
        );
        assert_eq!(rs.rows[0][0], Value::from("ada"));
    }

    #[test]
    fn unsupported_forms_fail_loudly() {
        for q in [
            "MATCH (a) WITH a RETURN a",
            "MERGE (a:person) RETURN a",
            "MATCH (a) OPTIONAL MATCH (a)-[:x]->(b) RETURN a",
        ] {
            let err = parse(q).unwrap_err();
            assert!(err.to_string().contains("not supported"), "{q}: {err}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse("MATCH (a RETURN a").is_err());
        assert!(parse("MATCH (a) RETURN").is_err());
        assert!(parse("RETURN 1").is_err());
        assert!(parse("MATCH (a)-[:x*3..1]->(b) RETURN a").is_err());
    }

    #[test]
    fn create_statement_shape() {
        let stmt = parse(
            "CREATE (a:person {name: 'dan'})-[:knows {since: 2020}]->(b:person {name: 'eve'})",
        )
        .unwrap();
        match stmt {
            CypherStatement::Create(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].nodes.len(), 2);
                assert_eq!(items[0].edges.len(), 1);
                assert_eq!(items[0].edges[0].0, "knows");
                assert_eq!(items[0].nodes[0].2.get("name"), Some(&Value::from("dan")));
            }
            CypherStatement::Select(_) => panic!("expected create"),
        }
    }

    #[test]
    fn undirected_match() {
        let g = social();
        let rs = run(
            &g,
            "MATCH (a:person {name: 'bob'})-[:knows]-(b) RETURN b.name ORDER BY b.name",
        );
        let names: Vec<&str> = rs.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["ada", "cleo"]);
    }

    #[test]
    fn implicit_grouping_cypher_style() {
        let mut g = social();
        // A second company to make groups interesting.
        let n = g.add_node("company", props! { "name" => "orga" });
        let ada = g.nodes_with_label("person")[0];
        g.add_edge(ada, n, "works_at", props! {}).unwrap();
        // Count knows-edges per person label bucket — implicit GROUP BY
        // a.label, the defining Cypher aggregation behaviour.
        let rs = run(
            &g,
            "MATCH (a)-[:knows]->(b) RETURN a.name AS who, count(*) AS n ORDER BY who",
        );
        assert_eq!(rs.columns, vec!["who", "n"]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(0, "who"), Some(&Value::from("ada")));
        assert_eq!(rs.get(0, "n"), Some(&Value::from(1)));
        assert_eq!(rs.get(1, "who"), Some(&Value::from("bob")));
    }

    #[test]
    fn grouped_aggregates_per_key() {
        let mut g = PropertyGraph::new();
        for (team, score) in [("red", 1), ("red", 3), ("blue", 10)] {
            g.add_node("player", props! { "team" => team, "score" => score });
        }
        let rs = run(
            &g,
            "MATCH (p:player) RETURN p.team AS team, sum(p.score) AS total, count(*) AS n \
             ORDER BY team",
        );
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(0, "team"), Some(&Value::from("blue")));
        assert_eq!(rs.get(0, "total"), Some(&Value::from(10)));
        assert_eq!(rs.get(1, "team"), Some(&Value::from("red")));
        assert_eq!(rs.get(1, "total"), Some(&Value::from(4)));
        assert_eq!(rs.get(1, "n"), Some(&Value::from(2)));
    }

    #[test]
    fn reused_variable_joins() {
        let g = social();
        // Triangle query: nobody knows someone who knows them back.
        let rs = run(&g, "MATCH (a)-[:knows]->(b), (b)-[:knows]->(a) RETURN a");
        assert!(rs.is_empty());
    }
}
