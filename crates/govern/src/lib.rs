//! # gdm-govern
//!
//! The query governor: the machinery that keeps one adversarial query
//! from pinning a core forever. The paper's essential queries include
//! NP-complete (pattern matching, regular simple paths) and
//! super-linear (diameter) operations, so a production deployment must
//! be able to bound them. Three primitives compose into one guard:
//!
//! * [`Budget`] — node-visit, edge-visit, and row-emission counters
//!   checked against per-query limits,
//! * [`Deadline`] — a wall-clock cutoff, checked at amortized
//!   intervals (every [`CHECK_INTERVAL`] ticks) so the hot loops pay
//!   one atomic increment, not one `Instant::now()`, per step,
//! * [`CancelToken`] — a shareable flag another thread (a client
//!   disconnect handler, an admin console) can trip at any time.
//!
//! [`ExecutionGuard`] bundles them behind three `#[inline]` tick
//! methods (`node`/`edge`/`row`) that the `gdm-algo` search loops call
//! cooperatively; when a limit trips, the guard returns
//! [`GdmError::Interrupted`] carrying the reason and the number of
//! rows produced so far, and the search unwinds cleanly. Ungoverned
//! call paths pass `None` (see [`GuardExt`]) and pay nothing.
//!
//! All counters are atomics, so one guard can be shared by reference
//! across the scoped worker threads of `gdm_algo::parallel`.

use gdm_core::{GdmError, InterruptReason, Result};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod pool;
pub mod retry;

pub use pool::{BudgetPool, TenantAllowance};
pub use retry::RetryPolicy;

/// How many guard ticks elapse between wall-clock/cancellation checks.
/// Small enough that a 1 ms deadline trips promptly in any real search
/// loop; large enough that `Instant::now()` stays off the hot path.
pub const CHECK_INTERVAL: u64 = 256;

/// Per-query resource limits. `None` fields are unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Limits {
    /// Maximum node visits charged via [`ExecutionGuard::node`].
    pub max_node_visits: Option<u64>,
    /// Maximum edge visits charged via [`ExecutionGuard::edge`].
    pub max_edge_visits: Option<u64>,
    /// Maximum result rows emitted via [`ExecutionGuard::row`].
    pub max_rows: Option<u64>,
    /// Wall-clock allowance, measured from guard construction.
    pub deadline: Option<Duration>,
}

impl Limits {
    /// No limits at all — a guard built from this never interrupts
    /// unless its [`CancelToken`] is tripped.
    pub const fn none() -> Self {
        Limits {
            max_node_visits: None,
            max_edge_visits: None,
            max_rows: None,
            deadline: None,
        }
    }

    /// Sets the wall-clock allowance.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the node-visit ceiling.
    #[must_use]
    pub fn with_node_visits(mut self, max: u64) -> Self {
        self.max_node_visits = Some(max);
        self
    }

    /// Sets the edge-visit ceiling.
    #[must_use]
    pub fn with_edge_visits(mut self, max: u64) -> Self {
        self.max_edge_visits = Some(max);
        self
    }

    /// Sets the row-emission ceiling.
    #[must_use]
    pub fn with_rows(mut self, max: u64) -> Self {
        self.max_rows = Some(max);
        self
    }

    /// True when every field is unlimited.
    pub fn is_unlimited(&self) -> bool {
        *self == Limits::none()
    }
}

/// A shareable cancellation flag. Cloning yields a handle to the same
/// flag, so one side can hold the token while the guard (and the query
/// behind it) watches it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token; every guard sharing it interrupts at its next
    /// check point. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has the token been tripped?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Visit/row counters checked against [`Limits`]. Counters are atomics
/// (relaxed — they are statistics, not synchronization), so a budget
/// shared across worker threads stays a single global pool.
#[derive(Debug)]
pub struct Budget {
    nodes: AtomicU64,
    edges: AtomicU64,
    rows: AtomicU64,
    max_nodes: u64,
    max_edges: u64,
    max_rows: u64,
}

impl Budget {
    /// A budget enforcing `limits` (missing limits become `u64::MAX`).
    pub fn new(limits: &Limits) -> Self {
        Budget {
            nodes: AtomicU64::new(0),
            edges: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            max_nodes: limits.max_node_visits.unwrap_or(u64::MAX),
            max_edges: limits.max_edge_visits.unwrap_or(u64::MAX),
            max_rows: limits.max_rows.unwrap_or(u64::MAX),
        }
    }

    /// Node visits charged so far.
    pub fn node_visits(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Edge visits charged so far.
    pub fn edge_visits(&self) -> u64 {
        self.edges.load(Ordering::Relaxed)
    }

    /// Rows emitted so far.
    pub fn rows_emitted(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }
}

/// A wall-clock cutoff measured from construction.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// Expires `allowance` from now.
    pub fn after(allowance: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(allowance),
        }
    }

    /// Never expires.
    pub const fn none() -> Self {
        Deadline { at: None }
    }

    /// Has the cutoff passed?
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

/// The combined governor handed into search loops. Construction
/// starts the deadline clock; the loops call [`ExecutionGuard::node`],
/// [`ExecutionGuard::edge`], and [`ExecutionGuard::row`] as they work
/// and propagate the [`GdmError::Interrupted`] those return on a trip.
#[derive(Debug)]
pub struct ExecutionGuard {
    budget: Budget,
    deadline: Deadline,
    cancel: CancelToken,
    ticks: AtomicU64,
    /// Shared-pool allowance this guard draws visit credits from, when
    /// the query runs on behalf of a tenant (see [`pool`]).
    allowance: Option<Arc<TenantAllowance>>,
}

impl ExecutionGuard {
    /// A guard enforcing `limits` with a private cancel token.
    pub fn new(limits: Limits) -> Self {
        Self::with_cancel(limits, CancelToken::new())
    }

    /// A guard enforcing `limits`, interruptible through `cancel`.
    pub fn with_cancel(limits: Limits, cancel: CancelToken) -> Self {
        ExecutionGuard {
            budget: Budget::new(&limits),
            deadline: limits.deadline.map_or(Deadline::none(), Deadline::after),
            cancel,
            ticks: AtomicU64::new(0),
            allowance: None,
        }
    }

    /// A guard that, in addition to `limits`, draws one shared-pool
    /// credit per node/edge visit from `allowance` — the multi-tenant
    /// serving configuration. When the tenant's allowance is exhausted
    /// the guard interrupts with [`InterruptReason::Throttled`]
    /// (re-exported reason of [`GdmError::Interrupted`]) at the next
    /// visit, leaving other tenants' credits untouched.
    pub fn with_allowance(
        limits: Limits,
        cancel: CancelToken,
        allowance: Arc<TenantAllowance>,
    ) -> Self {
        let mut g = Self::with_cancel(limits, cancel);
        g.allowance = Some(allowance);
        g
    }

    /// The tenant allowance this guard charges, if any.
    pub fn allowance(&self) -> Option<&Arc<TenantAllowance>> {
        self.allowance.as_ref()
    }

    /// A guard that never interrupts (its token is private and never
    /// tripped). Governed execution under this guard is equivalent to
    /// ungoverned execution.
    pub fn unlimited() -> Self {
        Self::new(Limits::none())
    }

    /// The cancel token this guard watches (clone it to keep a handle).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The budget counters (for telemetry and partial-result counts).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Charges one node visit.
    #[inline]
    pub fn node(&self) -> Result<()> {
        let n = self.budget.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.budget.max_nodes {
            return Err(self.interrupt(InterruptReason::Budget));
        }
        self.draw()?;
        self.pulse()
    }

    /// Charges one edge visit.
    #[inline]
    pub fn edge(&self) -> Result<()> {
        let n = self.budget.edges.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.budget.max_edges {
            return Err(self.interrupt(InterruptReason::Budget));
        }
        self.draw()?;
        self.pulse()
    }

    /// Draws one shared-pool credit, when a tenant allowance is
    /// attached; ungoverned and single-tenant guards skip the branch.
    #[inline]
    fn draw(&self) -> Result<()> {
        if let Some(a) = &self.allowance {
            if let Some(reason) = a.charge(1) {
                return Err(self.interrupt(reason));
            }
        }
        Ok(())
    }

    /// Charges one emitted result row.
    #[inline]
    pub fn row(&self) -> Result<()> {
        let n = self.budget.rows.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.budget.max_rows {
            return Err(self.interrupt(InterruptReason::Budget));
        }
        self.pulse()
    }

    /// Charges `k` node visits in one draw — the batch-granularity
    /// entry point for the vectorized executor. One atomic add covers
    /// the whole batch, and the deadline/cancel check runs
    /// unconditionally: at ~one call per thousand visits that costs
    /// nothing and reacts *faster* than the amortized per-visit pulse.
    #[inline]
    pub fn nodes(&self, k: u64) -> Result<()> {
        if k == 0 {
            return self.check_now();
        }
        let n = self.budget.nodes.fetch_add(k, Ordering::Relaxed) + k;
        if n > self.budget.max_nodes {
            return Err(self.interrupt(InterruptReason::Budget));
        }
        self.draw_many(k)?;
        self.check_now()
    }

    /// Charges `k` edge visits in one draw (batch twin of [`edge`]).
    ///
    /// [`edge`]: ExecutionGuard::edge
    #[inline]
    pub fn edges(&self, k: u64) -> Result<()> {
        if k == 0 {
            return self.check_now();
        }
        let n = self.budget.edges.fetch_add(k, Ordering::Relaxed) + k;
        if n > self.budget.max_edges {
            return Err(self.interrupt(InterruptReason::Budget));
        }
        self.draw_many(k)?;
        self.check_now()
    }

    /// Charges `k` emitted rows in one draw (batch twin of [`row`]).
    ///
    /// [`row`]: ExecutionGuard::row
    #[inline]
    pub fn rows(&self, k: u64) -> Result<()> {
        if k == 0 {
            return self.check_now();
        }
        let n = self.budget.rows.fetch_add(k, Ordering::Relaxed) + k;
        if n > self.budget.max_rows {
            return Err(self.interrupt(InterruptReason::Budget));
        }
        self.check_now()
    }

    /// Draws `k` shared-pool credits at once, when a tenant allowance
    /// is attached.
    #[inline]
    fn draw_many(&self, k: u64) -> Result<()> {
        if let Some(a) = &self.allowance {
            if let Some(reason) = a.charge(k) {
                return Err(self.interrupt(reason));
            }
        }
        Ok(())
    }

    /// Unconditional cancellation + deadline check — call at coarse
    /// boundaries (per BFS source, per root candidate) where prompt
    /// reaction matters more than amortization.
    pub fn check_now(&self) -> Result<()> {
        if self.cancel.is_cancelled() {
            return Err(self.interrupt(InterruptReason::Cancelled));
        }
        if self.deadline.expired() {
            return Err(self.interrupt(InterruptReason::Deadline));
        }
        Ok(())
    }

    /// Amortized check: consults the wall clock and the cancel flag
    /// once every [`CHECK_INTERVAL`] ticks.
    #[inline]
    fn pulse(&self) -> Result<()> {
        if self
            .ticks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(CHECK_INTERVAL)
        {
            self.check_now()?;
        }
        Ok(())
    }

    fn interrupt(&self, reason: InterruptReason) -> GdmError {
        GdmError::interrupted(reason, self.budget.rows_emitted())
    }

    /// A thread-local batching view of this guard for one parallel
    /// worker. See [`WorkerGuard`].
    pub fn worker(&self) -> WorkerGuard<'_> {
        WorkerGuard {
            shared: self,
            nodes: Cell::new(0),
            edges: Cell::new(0),
            rows: Cell::new(0),
        }
    }
}

/// How many pending visit/row units a [`WorkerGuard`] accumulates
/// locally before draining them into the shared [`ExecutionGuard`]
/// counters. Large enough that N workers hammering one query do not
/// turn the guard's atomics into a contention point; small enough that
/// a budget trip overruns by at most a few batches per worker.
pub const WORKER_FLUSH_UNITS: u64 = 4096;

/// A per-worker batching wrapper over a shared [`ExecutionGuard`].
///
/// Parallel morsel execution shares one guard across scoped worker
/// threads. Charging the shared atomics on every batch would serialize
/// the workers on cache-line ping-pong, so each worker accumulates its
/// visit/row counts in plain [`Cell`]s and drains them in bulk — at
/// [`WORKER_FLUSH_UNITS`] pending units, at explicit [`flush`] points
/// (morsel boundaries), and unconditionally on drop, so partial-result
/// accounting survives an interrupted or poisoned worker. Between
/// flushes every charge still runs the *read-only*
/// [`ExecutionGuard::check_now`], so cancellation and deadlines stay
/// exactly as responsive as in the sequential vectorized path; only
/// budget/allowance trips are deferred to the next drain.
///
/// [`flush`]: WorkerGuard::flush
#[derive(Debug)]
pub struct WorkerGuard<'a> {
    shared: &'a ExecutionGuard,
    nodes: Cell<u64>,
    edges: Cell<u64>,
    rows: Cell<u64>,
}

impl WorkerGuard<'_> {
    #[inline]
    fn pending(&self) -> u64 {
        self.nodes.get() + self.edges.get() + self.rows.get()
    }

    /// Drains every pending count into the shared guard, returning the
    /// first trip (budget, allowance, deadline, or cancellation) it
    /// observes. Rows drain first so a budget trip's `partial` count
    /// reflects every row this worker already emitted.
    pub fn flush(&self) -> Result<()> {
        let rows = self.rows.take();
        let nodes = self.nodes.take();
        let edges = self.edges.take();
        if rows > 0 {
            self.shared.rows(rows)?;
        }
        if nodes > 0 {
            self.shared.nodes(nodes)?;
        }
        if edges > 0 {
            self.shared.edges(edges)?;
        }
        self.shared.check_now()
    }

    #[inline]
    fn charge(&self, cell: &Cell<u64>, k: u64) -> Result<()> {
        cell.set(cell.get() + k);
        if self.pending() >= WORKER_FLUSH_UNITS {
            self.flush()
        } else {
            self.shared.check_now()
        }
    }
}

impl Drop for WorkerGuard<'_> {
    /// Settles outstanding counts into the shared guard no matter how
    /// the worker exits, so `Interrupted { partial, .. }` and the
    /// budget telemetry account for work done by every worker. The
    /// drain itself may observe a trip; by this point the worker's
    /// fate is already decided, so the result is ignored — the atomic
    /// adds land regardless.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl GuardExt for WorkerGuard<'_> {
    #[inline]
    fn node(&self) -> Result<()> {
        self.charge(&self.nodes, 1)
    }

    #[inline]
    fn edge(&self) -> Result<()> {
        self.charge(&self.edges, 1)
    }

    #[inline]
    fn row(&self) -> Result<()> {
        self.charge(&self.rows, 1)
    }

    #[inline]
    fn nodes(&self, k: u64) -> Result<()> {
        self.charge(&self.nodes, k)
    }

    #[inline]
    fn edges(&self, k: u64) -> Result<()> {
        self.charge(&self.edges, k)
    }

    #[inline]
    fn rows(&self, k: u64) -> Result<()> {
        self.charge(&self.rows, k)
    }

    #[inline]
    fn check_now(&self) -> Result<()> {
        self.shared.check_now()
    }
}

/// Zero-cost optional-guard plumbing: search internals take
/// `Option<&ExecutionGuard>` and tick through this extension trait, so
/// the ungoverned public APIs pass `None` and skip even the atomic
/// increments.
pub trait GuardExt {
    /// Charges one node visit, if a guard is present.
    fn node(&self) -> Result<()>;
    /// Charges one edge visit, if a guard is present.
    fn edge(&self) -> Result<()>;
    /// Charges one emitted row, if a guard is present.
    fn row(&self) -> Result<()>;
    /// Charges `k` node visits at batch granularity, if a guard is
    /// present.
    fn nodes(&self, k: u64) -> Result<()>;
    /// Charges `k` edge visits at batch granularity, if a guard is
    /// present.
    fn edges(&self, k: u64) -> Result<()>;
    /// Charges `k` emitted rows at batch granularity, if a guard is
    /// present.
    fn rows(&self, k: u64) -> Result<()>;
    /// Unconditional deadline/cancel check, if a guard is present.
    fn check_now(&self) -> Result<()>;
}

impl GuardExt for Option<&ExecutionGuard> {
    #[inline]
    fn node(&self) -> Result<()> {
        match self {
            Some(g) => g.node(),
            None => Ok(()),
        }
    }

    #[inline]
    fn edge(&self) -> Result<()> {
        match self {
            Some(g) => g.edge(),
            None => Ok(()),
        }
    }

    #[inline]
    fn row(&self) -> Result<()> {
        match self {
            Some(g) => g.row(),
            None => Ok(()),
        }
    }

    #[inline]
    fn nodes(&self, k: u64) -> Result<()> {
        match self {
            Some(g) => g.nodes(k),
            None => Ok(()),
        }
    }

    #[inline]
    fn edges(&self, k: u64) -> Result<()> {
        match self {
            Some(g) => g.edges(k),
            None => Ok(()),
        }
    }

    #[inline]
    fn rows(&self, k: u64) -> Result<()> {
        match self {
            Some(g) => g.rows(k),
            None => Ok(()),
        }
    }

    #[inline]
    fn check_now(&self) -> Result<()> {
        match self {
            Some(g) => g.check_now(),
            None => Ok(()),
        }
    }
}

/// References delegate, so generic search loops can hold either an
/// `Option<&ExecutionGuard>` by value or a borrowed [`WorkerGuard`].
impl<T: GuardExt> GuardExt for &T {
    #[inline]
    fn node(&self) -> Result<()> {
        (**self).node()
    }

    #[inline]
    fn edge(&self) -> Result<()> {
        (**self).edge()
    }

    #[inline]
    fn row(&self) -> Result<()> {
        (**self).row()
    }

    #[inline]
    fn nodes(&self, k: u64) -> Result<()> {
        (**self).nodes(k)
    }

    #[inline]
    fn edges(&self, k: u64) -> Result<()> {
        (**self).edges(k)
    }

    #[inline]
    fn rows(&self, k: u64) -> Result<()> {
        (**self).rows(k)
    }

    #[inline]
    fn check_now(&self) -> Result<()> {
        (**self).check_now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reason_of(e: GdmError) -> InterruptReason {
        e.interrupt_reason().expect("an interruption")
    }

    #[test]
    fn unlimited_guard_never_trips() {
        let g = ExecutionGuard::unlimited();
        for _ in 0..10_000 {
            g.node().unwrap();
            g.edge().unwrap();
            g.row().unwrap();
        }
        g.check_now().unwrap();
        assert_eq!(g.budget().node_visits(), 10_000);
    }

    #[test]
    fn node_budget_trips_exactly_at_the_limit() {
        let g = ExecutionGuard::new(Limits::none().with_node_visits(3));
        for _ in 0..3 {
            g.node().unwrap();
        }
        let err = g.node().unwrap_err();
        assert_eq!(reason_of(err), InterruptReason::Budget);
    }

    #[test]
    fn edge_and_row_budgets_are_independent() {
        let g = ExecutionGuard::new(Limits::none().with_edge_visits(2).with_rows(1));
        g.node().unwrap();
        g.edge().unwrap();
        g.edge().unwrap();
        assert_eq!(reason_of(g.edge().unwrap_err()), InterruptReason::Budget);
        g.row().unwrap();
        let err = g.row().unwrap_err();
        assert_eq!(reason_of(err), InterruptReason::Budget);
        // Partial count travels in the error.
        match g.row().unwrap_err() {
            GdmError::Interrupted { partial, .. } => assert!(partial >= 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_deadline_trips_on_first_check() {
        let g = ExecutionGuard::new(Limits::none().with_deadline(Duration::ZERO));
        let err = g.check_now().unwrap_err();
        assert_eq!(reason_of(err), InterruptReason::Deadline);
        // The amortized path trips within one check interval.
        let g2 = ExecutionGuard::new(Limits::none().with_deadline(Duration::ZERO));
        let mut tripped = false;
        for _ in 0..=CHECK_INTERVAL {
            if g2.node().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn cancel_token_interrupts_from_another_thread() {
        let g = ExecutionGuard::unlimited();
        let token = g.cancel_token().clone();
        std::thread::spawn(move || token.cancel())
            .join()
            .expect("cancel thread");
        let err = g.check_now().unwrap_err();
        assert_eq!(reason_of(err), InterruptReason::Cancelled);
    }

    #[test]
    fn optional_guard_is_a_no_op_when_absent() {
        let none: Option<&ExecutionGuard> = None;
        none.node().unwrap();
        none.edge().unwrap();
        none.row().unwrap();
        none.check_now().unwrap();
        let g = ExecutionGuard::new(Limits::none().with_node_visits(0));
        let some: Option<&ExecutionGuard> = Some(&g);
        assert!(some.node().is_err());
    }

    #[test]
    fn allowance_throttles_across_guards_and_refill_revives() {
        let mut pool = BudgetPool::new();
        let tenant = pool.register("acme", 1, 100);
        // Two concurrent guards share the tenant's 100-credit allowance.
        let g1 = ExecutionGuard::with_allowance(Limits::none(), CancelToken::new(), tenant.clone());
        let g2 = ExecutionGuard::with_allowance(Limits::none(), CancelToken::new(), tenant.clone());
        for _ in 0..50 {
            g1.node().unwrap();
            g2.edge().unwrap();
        }
        let err = g1.node().unwrap_err();
        assert_eq!(reason_of(err), InterruptReason::Throttled);
        assert_eq!(
            reason_of(g2.node().unwrap_err()),
            InterruptReason::Throttled
        );
        // A refill lets a fresh guard for the same tenant run again.
        pool.refill(10);
        let g3 = ExecutionGuard::with_allowance(Limits::none(), CancelToken::new(), tenant);
        g3.node().unwrap();
        // Per-guard budgets still travel on the same guard.
        assert_eq!(g3.budget().node_visits(), 1);
    }

    #[test]
    fn batch_charges_match_per_visit_semantics() {
        let g = ExecutionGuard::new(Limits::none().with_node_visits(100).with_rows(10));
        g.nodes(64).unwrap();
        g.nodes(36).unwrap();
        assert_eq!(g.budget().node_visits(), 100);
        assert_eq!(reason_of(g.nodes(1).unwrap_err()), InterruptReason::Budget);
        g.rows(10).unwrap();
        assert_eq!(reason_of(g.rows(1).unwrap_err()), InterruptReason::Budget);
        // Zero-sized batches still react to deadline/cancel promptly.
        let g2 = ExecutionGuard::new(Limits::none().with_deadline(Duration::ZERO));
        assert_eq!(
            reason_of(g2.nodes(0).unwrap_err()),
            InterruptReason::Deadline
        );
    }

    #[test]
    fn batch_charges_draw_from_tenant_allowance() {
        let mut pool = BudgetPool::new();
        let tenant = pool.register("acme", 1, 100);
        let g = ExecutionGuard::with_allowance(Limits::none(), CancelToken::new(), tenant);
        g.nodes(60).unwrap();
        g.edges(40).unwrap();
        assert_eq!(
            reason_of(g.nodes(1).unwrap_err()),
            InterruptReason::Throttled
        );
    }

    #[test]
    fn worker_guard_batches_charges_and_settles_on_drop() {
        let g = ExecutionGuard::unlimited();
        {
            let w = g.worker();
            w.nodes(100).unwrap();
            w.edges(50).unwrap();
            w.rows(7).unwrap();
            // Below the flush threshold nothing reaches the shared
            // counters yet.
            assert_eq!(g.budget().node_visits(), 0);
            w.flush().unwrap();
            assert_eq!(g.budget().node_visits(), 100);
            assert_eq!(g.budget().edge_visits(), 50);
            assert_eq!(g.budget().rows_emitted(), 7);
            w.nodes(9).unwrap();
        } // drop settles the trailing 9
        assert_eq!(g.budget().node_visits(), 109);
    }

    #[test]
    fn worker_guard_flushes_automatically_past_the_threshold() {
        let g = ExecutionGuard::unlimited();
        let w = g.worker();
        w.nodes(WORKER_FLUSH_UNITS - 1).unwrap();
        assert_eq!(g.budget().node_visits(), 0);
        w.node().unwrap(); // crosses the threshold, drains
        assert_eq!(g.budget().node_visits(), WORKER_FLUSH_UNITS);
    }

    #[test]
    fn worker_guard_budget_trips_at_flush_with_partial_rows() {
        let g = ExecutionGuard::new(Limits::none().with_node_visits(10));
        let w = g.worker();
        w.rows(3).unwrap();
        w.nodes(50).unwrap();
        let err = w.flush().unwrap_err();
        assert_eq!(reason_of(err), InterruptReason::Budget);
        // Rows drained before the tripping node charge, so the partial
        // count carried the worker's emitted rows.
        match g.nodes(1).unwrap_err() {
            GdmError::Interrupted { partial, .. } => assert_eq!(partial, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn worker_guard_sees_cancel_and_deadline_without_flushing() {
        let g = ExecutionGuard::unlimited();
        let w = g.worker();
        w.nodes(5).unwrap();
        g.cancel_token().cancel();
        assert_eq!(
            reason_of(w.nodes(1).unwrap_err()),
            InterruptReason::Cancelled
        );
        let g2 = ExecutionGuard::new(Limits::none().with_deadline(Duration::ZERO));
        let w2 = g2.worker();
        assert_eq!(reason_of(w2.node().unwrap_err()), InterruptReason::Deadline);
    }

    #[test]
    fn two_workers_merge_into_one_shared_budget() {
        let g = ExecutionGuard::new(Limits::none().with_node_visits(100));
        let w1 = g.worker();
        let w2 = g.worker();
        w1.nodes(60).unwrap();
        w2.nodes(60).unwrap();
        w1.flush().unwrap();
        // The pool is shared: the second worker's drain trips it.
        assert_eq!(reason_of(w2.flush().unwrap_err()), InterruptReason::Budget);
        assert_eq!(g.budget().node_visits(), 120);
    }

    #[test]
    fn limits_builders_compose() {
        let l = Limits::none()
            .with_deadline(Duration::from_millis(5))
            .with_node_visits(10)
            .with_edge_visits(20)
            .with_rows(30);
        assert!(!l.is_unlimited());
        assert_eq!(l.max_node_visits, Some(10));
        assert_eq!(l.max_edge_visits, Some(20));
        assert_eq!(l.max_rows, Some(30));
        assert!(Limits::default().is_unlimited());
    }
}
