//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! One policy type shared by every layer that retries *transient*
//! failures: the WAL's write/fsync calls (`gdm-wal`), and the serving
//! tier's [`RetryingClient`](https://docs.rs) reconnect loop
//! (`gdm-server`). Putting it here — the crate that already owns the
//! governor's notion of "how much is too much" — keeps the retry
//! vocabulary (attempt counts, backoff curves) identical across the
//! stack, so an operator reading one config understands all of them.
//!
//! Jitter is deterministic: the caller supplies a seed (connection
//! number, attempt context) and [`RetryPolicy::backoff`] derives the
//! spread with a SplitMix64 hash. Chaos tests can therefore replay a
//! retry schedule byte-for-byte, while a fleet of real clients seeded
//! differently still de-correlates its retry storms.

use std::time::Duration;

/// Bounded retry with exponential backoff. Transient failures (a
/// momentarily unreachable server, an interrupted syscall, a shed
/// request carrying a `retry_after_ms` hint) are worth a few more
/// attempts; permanent ones (corruption, authentication) must surface
/// immediately — the *classification* stays with each caller, only
/// the schedule lives here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (1 = never
    /// retry; 0 behaves as 1).
    pub attempts: u32,
    /// Sleep before the first retry, in milliseconds; doubles on each
    /// subsequent retry. `0` retries immediately.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff sleep, after doubling and before
    /// jitter. `u64::MAX` leaves the curve uncapped.
    pub max_backoff_ms: u64,
    /// When true, each backoff is spread uniformly over
    /// `[backoff/2, backoff]` by a deterministic hash of the caller's
    /// seed — full-throughput retries without synchronized stampedes.
    pub jitter: bool,
}

impl RetryPolicy {
    /// No retries at all: every error surfaces on the first failure.
    pub const fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: u64::MAX,
            jitter: false,
        }
    }

    /// A client-facing default: five attempts starting at 20 ms,
    /// capped at 1 s, with jitter — tuned for riding out a dropped
    /// connection or a draining server without hammering it.
    pub const fn client_default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_backoff_ms: 20,
            max_backoff_ms: 1_000,
            jitter: true,
        }
    }

    /// The backoff to sleep before retry number `retry` (0-based: the
    /// sleep between the first failure and the second attempt is
    /// `backoff(0, seed)`), as a [`Duration`]. Exponential from
    /// [`RetryPolicy::base_backoff_ms`], capped at
    /// [`RetryPolicy::max_backoff_ms`], then jittered when enabled.
    pub fn backoff(&self, retry: u32, seed: u64) -> Duration {
        let doubled = self
            .base_backoff_ms
            .saturating_mul(1u64.checked_shl(retry).unwrap_or(u64::MAX));
        let capped = doubled.min(self.max_backoff_ms);
        if !self.jitter || capped == 0 {
            return Duration::from_millis(capped);
        }
        // SplitMix64 of (seed, retry): deterministic per caller seed,
        // de-correlated across seeds.
        let mut z = seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(u64::from(retry));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let spread = capped / 2;
        Duration::from_millis(capped - spread + (z % (spread + 1)))
    }
}

impl Default for RetryPolicy {
    /// Three attempts (two retries) with a 1 ms starting backoff and
    /// no jitter — the WAL's historical posture: enough to ride out an
    /// interrupted syscall without stalling a commit behind a
    /// genuinely dead disk.
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff_ms: 1,
            max_backoff_ms: u64::MAX,
            jitter: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            attempts: 6,
            base_backoff_ms: 10,
            max_backoff_ms: 35,
            jitter: false,
        };
        assert_eq!(p.backoff(0, 0), Duration::from_millis(10));
        assert_eq!(p.backoff(1, 0), Duration::from_millis(20));
        assert_eq!(p.backoff(2, 0), Duration::from_millis(35));
        assert_eq!(p.backoff(3, 0), Duration::from_millis(35));
        // A huge retry index must not overflow the shift.
        assert_eq!(p.backoff(200, 0), Duration::from_millis(35));
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let p = RetryPolicy {
            attempts: 4,
            base_backoff_ms: 100,
            max_backoff_ms: 100,
            jitter: true,
        };
        for seed in 0..64u64 {
            let a = p.backoff(1, seed);
            let b = p.backoff(1, seed);
            assert_eq!(a, b, "same seed, same backoff");
            assert!(a >= Duration::from_millis(50) && a <= Duration::from_millis(100));
        }
        // Different seeds must not all collapse to one value.
        let distinct: std::collections::HashSet<_> = (0..64u64).map(|s| p.backoff(1, s)).collect();
        assert!(distinct.len() > 8, "jitter must actually spread");
    }

    #[test]
    fn none_never_sleeps() {
        let p = RetryPolicy::none();
        assert_eq!(p.attempts, 1);
        assert_eq!(p.backoff(0, 7), Duration::ZERO);
    }
}
