//! The shared fair budget pool for multi-tenant serving.
//!
//! One [`ExecutionGuard`](crate::ExecutionGuard) bounds one query; the
//! pool bounds a *tenant* across all of its concurrent queries. Every
//! tenant owns a [`TenantAllowance`] — an atomic credit counter that
//! each governed visit (node or edge) draws one credit from — and a
//! pacer thread calls [`BudgetPool::refill`] at a fixed cadence,
//! splitting a global credit ration between the tenants by **weighted
//! max-min fairness**: credits a tenant cannot absorb (its allowance
//! is already at its burst cap) are redistributed to tenants that can,
//! in proportion to their weights, until either every tenant is capped
//! or the ration is spent. A saturating tenant therefore converges to
//! exactly its weighted share of the global visit rate, while an idle
//! tenant's unused share flows to the busy ones instead of
//! evaporating — one tenant's fan-out cannot starve the rest.
//!
//! Credits are *graph visits* (the same unit [`crate::Budget`]
//! counts), so the pool composes with per-query limits: a query is
//! interrupted by whichever trips first, its own budget/deadline or
//! its tenant's allowance ([`InterruptReason::Throttled`]).

use gdm_core::InterruptReason;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// One tenant's slice of the shared pool. Cheap to share: guards hold
/// an `Arc` and touch one atomic per charged visit.
#[derive(Debug)]
pub struct TenantAllowance {
    name: String,
    weight: u64,
    /// Remaining credits. May transiently dip below zero when
    /// concurrent guards race a depleted allowance; the refill
    /// restores from wherever it landed, so nothing is lost.
    credits: AtomicI64,
    /// Burst cap: refills never push `credits` above this, bounding
    /// how much an idle tenant can bank and then spend in one burst.
    cap: i64,
    /// Lifetime credits charged (telemetry).
    charged: AtomicU64,
    /// Lifetime throttle trips (telemetry).
    throttled: AtomicU64,
}

impl TenantAllowance {
    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fairness weight.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Burst cap.
    pub fn cap(&self) -> i64 {
        self.cap
    }

    /// Credits currently available (negative = overdrawn).
    pub fn credits(&self) -> i64 {
        self.credits.load(Ordering::Relaxed)
    }

    /// Lifetime credits charged through guards.
    pub fn charged(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }

    /// Lifetime throttle interruptions.
    pub fn throttled(&self) -> u64 {
        self.throttled.load(Ordering::Relaxed)
    }

    /// Draws `n` credits. Returns the interrupt reason when the
    /// allowance was already exhausted (the draw still happens — the
    /// slight overdraft keeps this a single `fetch_sub`, and the next
    /// refill absorbs it).
    #[inline]
    pub fn charge(&self, n: u64) -> Option<InterruptReason> {
        self.charged.fetch_add(n, Ordering::Relaxed);
        let before = self.credits.fetch_sub(n as i64, Ordering::Relaxed);
        if before > 0 {
            None
        } else {
            self.throttled.fetch_add(1, Ordering::Relaxed);
            Some(InterruptReason::Throttled)
        }
    }

    /// True when the allowance currently has credits to spend.
    pub fn has_credit(&self) -> bool {
        self.credits() > 0
    }
}

/// The shared pool: a fixed set of tenant allowances (registered
/// before serving starts) plus the weighted max-min refill.
#[derive(Debug, Default)]
pub struct BudgetPool {
    tenants: Vec<Arc<TenantAllowance>>,
}

impl BudgetPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tenant with a fairness `weight` (≥ 1) and a burst
    /// `cap`, starting with a full allowance. Returns the shared
    /// handle guards will charge against.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        weight: u64,
        cap: i64,
    ) -> Arc<TenantAllowance> {
        let t = Arc::new(TenantAllowance {
            name: name.into(),
            weight: weight.max(1),
            credits: AtomicI64::new(cap.max(1)),
            cap: cap.max(1),
            charged: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
        });
        self.tenants.push(t.clone());
        t
    }

    /// The registered tenants, in registration order.
    pub fn tenants(&self) -> &[Arc<TenantAllowance>] {
        &self.tenants
    }

    /// Looks a tenant up by name.
    pub fn get(&self, name: &str) -> Option<Arc<TenantAllowance>> {
        self.tenants.iter().find(|t| t.name == name).cloned()
    }

    /// Distributes `total` fresh credits by weighted max-min fairness
    /// (water-filling): each round splits the remaining ration between
    /// the tenants that still have headroom (allowance below its cap)
    /// in proportion to their weights; a tenant whose headroom is
    /// smaller than its share takes only the headroom, and the surplus
    /// rolls into the next round for the others. Terminates when the
    /// ration is spent or every tenant is capped; returns the credits
    /// actually granted.
    pub fn refill(&self, total: u64) -> u64 {
        // Snapshot headrooms once; concurrent charges during the
        // refill only increase headroom, so the snapshot is a safe
        // (conservative) bound and `fetch_add` below never exceeds cap
        // by more than the concurrent drain.
        let mut headroom: Vec<i64> = self
            .tenants
            .iter()
            .map(|t| (t.cap - t.credits()).max(0))
            .collect();
        let mut remaining = total as i64;
        let mut granted = 0u64;
        loop {
            let open: Vec<usize> = (0..self.tenants.len())
                .filter(|&i| headroom[i] > 0)
                .collect();
            if open.is_empty() || remaining <= 0 {
                break;
            }
            let weight_sum: u64 = open.iter().map(|&i| self.tenants[i].weight).sum();
            let mut gave_any = false;
            let round = remaining;
            for &i in &open {
                let share =
                    (round as i128 * self.tenants[i].weight as i128 / weight_sum as i128) as i64;
                // Integer division can zero small shares; give at
                // least one credit so the loop always progresses.
                let share = share.max(1).min(headroom[i]).min(remaining);
                if share > 0 {
                    self.tenants[i].credits.fetch_add(share, Ordering::Relaxed);
                    headroom[i] -= share;
                    remaining -= share;
                    granted += share as u64;
                    gave_any = true;
                }
                if remaining == 0 {
                    break;
                }
            }
            if !gave_any {
                break;
            }
        }
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_draws_down_and_trips_when_empty() {
        let mut pool = BudgetPool::new();
        let t = pool.register("acme", 1, 3);
        assert_eq!(t.credits(), 3);
        assert_eq!(t.charge(1), None);
        assert_eq!(t.charge(1), None);
        assert_eq!(t.charge(1), None);
        assert_eq!(t.charge(1), Some(InterruptReason::Throttled));
        assert_eq!(t.charged(), 4);
        assert_eq!(t.throttled(), 1);
        assert!(!t.has_credit());
    }

    #[test]
    fn refill_splits_by_weight() {
        let mut pool = BudgetPool::new();
        let heavy = pool.register("heavy", 3, 1_000);
        let light = pool.register("light", 1, 1_000);
        // Drain both fully.
        while heavy.charge(1).is_none() {}
        while light.charge(1).is_none() {}
        let (h0, l0) = (heavy.credits(), light.credits());
        let granted = pool.refill(400);
        assert_eq!(granted, 400);
        let h = heavy.credits() - h0;
        let l = light.credits() - l0;
        assert_eq!(h + l, 400);
        assert_eq!(h, 300, "3:1 weights split 400 as 300:100, got {h}:{l}");
    }

    #[test]
    fn max_min_redistributes_capped_surplus() {
        let mut pool = BudgetPool::new();
        let full = pool.register("full", 3, 100); // starts at cap: no headroom
        let hungry = pool.register("hungry", 1, 10_000);
        while hungry.charge(1).is_none() {}
        let before = hungry.credits();
        let granted = pool.refill(1_000);
        // `full` can absorb nothing; all 1000 flow to `hungry` despite
        // its 1:3 weight disadvantage.
        assert_eq!(granted, 1_000);
        assert_eq!(full.credits(), 100);
        assert_eq!(hungry.credits() - before, 1_000);
    }

    #[test]
    fn refill_never_exceeds_caps() {
        let mut pool = BudgetPool::new();
        let a = pool.register("a", 1, 50);
        let b = pool.register("b", 1, 50);
        a.charge(10);
        let granted = pool.refill(10_000);
        assert_eq!(granted, 10, "only a's spent credits can be restored");
        assert!(a.credits() <= 50);
        assert_eq!(b.credits(), 50);
    }

    #[test]
    fn tiny_rations_still_progress() {
        let mut pool = BudgetPool::new();
        let a = pool.register("a", 1, 1_000);
        let b = pool.register("b", 1_000_000, 1_000);
        while a.charge(1).is_none() {}
        while b.charge(1).is_none() {}
        // A ration smaller than the weight sum: integer shares round
        // to zero, the minimum-one-credit rule must still hand them out.
        let granted = pool.refill(3);
        assert_eq!(granted, 3);
    }

    #[test]
    fn lookup_by_name() {
        let mut pool = BudgetPool::new();
        pool.register("alpha", 1, 10);
        assert_eq!(pool.get("alpha").unwrap().name(), "alpha");
        assert!(pool.get("beta").is_none());
        assert_eq!(pool.tenants().len(), 1);
    }
}
