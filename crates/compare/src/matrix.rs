//! Support matrices and their renderers.

use gdm_core::Support;

/// A feature matrix in the paper's format: systems as rows, features
/// as columns, `•`/`◦`/blank cells. Columns may be grouped (the paper
/// groups Table VII's columns under "Adjacency" and "Reachability").

#[derive(Debug, Clone)]
pub struct SupportMatrix {
    /// Table caption.
    pub title: String,
    /// Header of the row-label column (usually "Graph Database").
    pub row_header: String,
    /// Column captions, optionally `(group, name)`.
    pub columns: Vec<(Option<String>, String)>,
    /// Rows: label plus one support cell per column.
    pub rows: Vec<(String, Vec<Support>)>,
}

impl SupportMatrix {
    /// Starts an empty matrix.
    pub fn new(title: impl Into<String>, row_header: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            row_header: row_header.into(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds an ungrouped column.
    pub fn column(&mut self, name: impl Into<String>) -> &mut Self {
        self.columns.push((None, name.into()));
        self
    }

    /// Adds a grouped column.
    pub fn grouped_column(
        &mut self,
        group: impl Into<String>,
        name: impl Into<String>,
    ) -> &mut Self {
        self.columns.push((Some(group.into()), name.into()));
        self
    }

    /// Adds a row; the cell count must match the column count.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<Support>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((label.into(), cells));
        self
    }

    /// Looks a cell up by row and column name.
    pub fn get(&self, row: &str, column: &str) -> Option<Support> {
        let col = self.columns.iter().position(|(_, c)| c == column)?;
        let (_, cells) = self.rows.iter().find(|(r, _)| r == row)?;
        cells.get(col).copied()
    }

    /// Plain-text rendering in the paper's visual style.
    pub fn render(&self) -> String {
        let label_width = self
            .rows
            .iter()
            .map(|(r, _)| r.len())
            .chain([self.row_header.len()])
            .max()
            .unwrap_or(4);
        let col_widths: Vec<usize> = self.columns.iter().map(|(_, c)| c.len().max(3)).collect();
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&"=".repeat(self.title.len()));
        out.push('\n');
        // Group header line, when any column is grouped.
        if self.columns.iter().any(|(g, _)| g.is_some()) {
            out.push_str(&" ".repeat(label_width + 2));
            let mut i = 0;
            while i < self.columns.len() {
                let group = self.columns[i].0.clone();
                let mut span = col_widths[i] + 2;
                let mut j = i + 1;
                while j < self.columns.len() && self.columns[j].0 == group {
                    span += col_widths[j] + 2;
                    j += 1;
                }
                let name = group.unwrap_or_default();
                out.push_str(&format!("{name:^span$}"));
                i = j;
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<label_width$}  ", self.row_header));
        for ((_, c), w) in self.columns.iter().zip(&col_widths) {
            out.push_str(&format!("{c:^w$}  "));
        }
        out.push('\n');
        out.push_str(
            &"-".repeat(label_width + 2 + col_widths.iter().map(|w| w + 2).sum::<usize>()),
        );
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("{label:<label_width$}  "));
            for (cell, w) in cells.iter().zip(&col_widths) {
                out.push_str(&format!("{:^w$}  ", cell.glyph()));
            }
            out.push('\n');
        }
        out
    }

    /// GitHub-flavoured markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |", self.row_header));
        for (group, c) in &self.columns {
            match group {
                Some(g) => out.push_str(&format!(" {g}: {c} |")),
                None => out.push_str(&format!(" {c} |")),
            }
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.columns {
            out.push_str(":---:|");
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for cell in cells {
                out.push_str(&format!(" {} |", cell.glyph()));
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering (ASCII glyphs).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.row_header.replace(',', ";"));
        for (_, c) in &self.columns {
            out.push(',');
            out.push_str(&c.replace(',', ";"));
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&label.replace(',', ";"));
            for cell in cells {
                out.push(',');
                out.push_str(cell.ascii());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SupportMatrix {
        let mut m = SupportMatrix::new("Table T. Sample", "Graph Database");
        m.column("Feature A");
        m.grouped_column("Group", "B1");
        m.grouped_column("Group", "B2");
        m.row(
            "EngineX",
            vec![Support::Full, Support::Partial, Support::None],
        );
        m.row("EngineY", vec![Support::None, Support::Full, Support::Full]);
        m
    }

    #[test]
    fn lookup() {
        let m = sample();
        assert_eq!(m.get("EngineX", "Feature A"), Some(Support::Full));
        assert_eq!(m.get("EngineX", "B2"), Some(Support::None));
        assert_eq!(m.get("Ghost", "B2"), None);
        assert_eq!(m.get("EngineX", "Ghost"), None);
    }

    #[test]
    fn render_contains_glyphs_and_groups() {
        let text = sample().render();
        assert!(text.contains("•"));
        assert!(text.contains("◦"));
        assert!(text.contains("Group"));
        assert!(text.contains("EngineY"));
    }

    #[test]
    fn markdown_and_csv() {
        let m = sample();
        let md = m.to_markdown();
        assert!(md.starts_with("### Table T. Sample"));
        assert!(md.contains("| EngineX |"));
        let csv = m.to_csv();
        assert!(csv.contains("EngineX,*,o,"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut m = SupportMatrix::new("t", "r");
        m.column("a");
        m.row("x", vec![]);
    }
}
