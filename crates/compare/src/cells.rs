//! The cell values of the paper's Tables I–VII, per engine.
//!
//! The source PDF's table extraction partially mangles checkmark
//! alignment; cells marked *reconstructed* in EXPERIMENTS.md were
//! recovered from the paper's prose (e.g. "only two support
//! hypergraphs and no one nested graphs", "Value nodes and simple
//! relations are supported by all the models", "AllegroGraph supports
//! SPARQL", "Neo4j is developing Cypher"). Every cell with an
//! executable counterpart is verified against the running engine by
//! [`crate::probes::verify_engine`].

use gdm_core::Support;
use gdm_core::Support::{Full as F, None as N, Partial as P};
use gdm_engines::EngineKind;

/// All recorded cells for one engine.
#[derive(Debug, Clone, Copy)]
pub struct PaperCells {
    // ---- Table I: data storing features ----
    /// Main-memory storage schema.
    pub main_memory: Support,
    /// External-memory storage schema.
    pub external_memory: Support,
    /// Back-end storage (generic KV / external store).
    pub backend_storage: Support,
    /// Secondary indexes.
    pub indexes: Support,
    // ---- Table II: operation & manipulation features ----
    /// Data definition language.
    pub ddl: Support,
    /// Data manipulation language.
    pub dml: Support,
    /// Query language (as released in 2012).
    pub query_language: Support,
    /// Application programming interface.
    pub api: Support,
    /// Graphical user interface.
    pub gui: Support,
    // ---- Table III: graph data structures ----
    /// Model family: simple flat graphs.
    pub simple_graphs: Support,
    /// Model family: hypergraphs.
    pub hypergraphs: Support,
    /// Model family: nested graphs.
    pub nested_graphs: Support,
    /// Model family: attributed graphs.
    pub attributed_graphs: Support,
    /// Nodes carry labels.
    pub node_labeled: Support,
    /// Nodes carry attributes.
    pub node_attributed: Support,
    /// Edges are directed.
    pub directed: Support,
    /// Edges carry labels.
    pub edge_labeled: Support,
    /// Edges carry attributes.
    pub edge_attributed: Support,
    // ---- Table IV: representation of entities and relations ----
    /// Schema: node types.
    pub node_types: Support,
    /// Schema: property types.
    pub property_types: Support,
    /// Schema: relation types.
    pub relation_types: Support,
    /// Instance: object nodes (object-ID identified).
    pub object_nodes: Support,
    /// Instance: value nodes (identified by a primitive value).
    pub value_nodes: Support,
    /// Instance: complex nodes (tuples / sets).
    pub complex_nodes: Support,
    /// Instance: object relations (relation-ID identified).
    pub object_relations: Support,
    /// Instance: simple node-edge-node relations.
    pub simple_relations: Support,
    /// Instance: complex relations (grouping / derivation / inheritance).
    pub complex_relations: Support,
    // ---- Table V: query facilities ----
    /// Query language maturity (`◦` = in development / non-graph-oriented).
    pub ql_grade: Support,
    /// API as query facility.
    pub api_facility: Support,
    /// Graphical query language.
    pub graphical_ql: Support,
    /// Data retrieval.
    pub retrieval: Support,
    /// Reasoning.
    pub reasoning: Support,
    /// Data analysis functions.
    pub analysis: Support,
    // ---- Table VI: integrity constraints ----
    /// Types checking.
    pub types_checking: Support,
    /// Node/edge identity.
    pub identity: Support,
    /// Referential integrity.
    pub referential_integrity: Support,
    /// Cardinality checking.
    pub cardinality: Support,
    /// Functional dependencies.
    pub functional_dependency: Support,
    /// Graph pattern constraints.
    pub pattern_constraints: Support,
    // ---- Table VII: essential graph queries ----
    /// Node/edge adjacency.
    pub q_adjacency: Support,
    /// k-neighborhood.
    pub q_k_neighborhood: Support,
    /// Fixed-length paths.
    pub q_fixed_length: Support,
    /// Shortest path.
    pub q_shortest_path: Support,
    /// Pattern matching.
    pub q_pattern: Support,
    /// Summarization.
    pub q_summarization: Support,
}

/// The paper's recorded cells for `kind`.
pub fn paper_cells(kind: EngineKind) -> PaperCells {
    match kind {
        EngineKind::Allegro => PaperCells {
            main_memory: F,
            external_memory: F,
            backend_storage: N,
            indexes: F,
            ddl: F,
            dml: F,
            query_language: F,
            api: F,
            gui: F,
            simple_graphs: F,
            hypergraphs: N,
            nested_graphs: N,
            attributed_graphs: N,
            node_labeled: N,
            node_attributed: N,
            directed: F,
            edge_labeled: F,
            edge_attributed: N,
            node_types: N,
            property_types: N,
            relation_types: N,
            object_nodes: N,
            value_nodes: F,
            complex_nodes: N,
            object_relations: N,
            simple_relations: F,
            complex_relations: N,
            ql_grade: P,
            api_facility: F,
            graphical_ql: F,
            retrieval: F,
            reasoning: F,
            analysis: F,
            types_checking: N,
            identity: N,
            referential_integrity: N,
            cardinality: N,
            functional_dependency: N,
            pattern_constraints: N,
            q_adjacency: F,
            q_k_neighborhood: N,
            q_fixed_length: N,
            q_shortest_path: N,
            q_pattern: F,
            q_summarization: F,
        },
        EngineKind::Dex => PaperCells {
            main_memory: F,
            external_memory: F,
            backend_storage: N,
            indexes: F,
            ddl: N,
            dml: N,
            query_language: N,
            api: F,
            gui: N,
            simple_graphs: N,
            hypergraphs: N,
            nested_graphs: N,
            attributed_graphs: F,
            node_labeled: F,
            node_attributed: F,
            directed: F,
            edge_labeled: F,
            edge_attributed: F,
            node_types: F,
            property_types: F,
            relation_types: N,
            object_nodes: F,
            value_nodes: F,
            complex_nodes: N,
            object_relations: F,
            simple_relations: F,
            complex_relations: N,
            ql_grade: N,
            api_facility: F,
            graphical_ql: N,
            retrieval: F,
            reasoning: N,
            analysis: F,
            types_checking: F,
            identity: F,
            referential_integrity: F,
            cardinality: N,
            functional_dependency: N,
            pattern_constraints: N,
            q_adjacency: F,
            q_k_neighborhood: F,
            q_fixed_length: F,
            q_shortest_path: F,
            q_pattern: N,
            q_summarization: F,
        },
        EngineKind::Filament => PaperCells {
            main_memory: F,
            external_memory: N,
            backend_storage: F,
            indexes: N,
            ddl: N,
            dml: N,
            query_language: N,
            api: F,
            gui: N,
            simple_graphs: F,
            hypergraphs: N,
            nested_graphs: N,
            attributed_graphs: N,
            node_labeled: N,
            node_attributed: N,
            directed: F,
            edge_labeled: F,
            edge_attributed: N,
            node_types: N,
            property_types: N,
            relation_types: N,
            object_nodes: N,
            value_nodes: F,
            complex_nodes: N,
            object_relations: N,
            simple_relations: F,
            complex_relations: N,
            ql_grade: N,
            api_facility: F,
            graphical_ql: N,
            retrieval: F,
            reasoning: N,
            analysis: N,
            types_checking: N,
            identity: N,
            referential_integrity: N,
            cardinality: N,
            functional_dependency: N,
            pattern_constraints: N,
            q_adjacency: F,
            q_k_neighborhood: F,
            q_fixed_length: N,
            q_shortest_path: N,
            q_pattern: N,
            q_summarization: F,
        },
        EngineKind::GStore => PaperCells {
            main_memory: N,
            external_memory: F,
            backend_storage: N,
            indexes: N,
            ddl: F,
            dml: N,
            query_language: F,
            api: F,
            gui: N,
            simple_graphs: F,
            hypergraphs: N,
            nested_graphs: N,
            attributed_graphs: N,
            node_labeled: F,
            node_attributed: N,
            directed: F,
            edge_labeled: N,
            edge_attributed: N,
            node_types: N,
            property_types: N,
            relation_types: N,
            object_nodes: N,
            value_nodes: F,
            complex_nodes: N,
            object_relations: N,
            simple_relations: F,
            complex_relations: N,
            ql_grade: F,
            api_facility: F,
            graphical_ql: N,
            retrieval: F,
            reasoning: N,
            analysis: N,
            types_checking: N,
            identity: N,
            referential_integrity: N,
            cardinality: N,
            functional_dependency: N,
            pattern_constraints: N,
            q_adjacency: F,
            q_k_neighborhood: F,
            q_fixed_length: F,
            q_shortest_path: F,
            q_pattern: N,
            q_summarization: F,
        },
        EngineKind::HyperGraphDb => PaperCells {
            main_memory: F,
            external_memory: F,
            backend_storage: F,
            indexes: F,
            ddl: N,
            dml: N,
            query_language: N,
            api: F,
            gui: N,
            simple_graphs: N,
            hypergraphs: F,
            nested_graphs: N,
            attributed_graphs: N,
            node_labeled: F,
            node_attributed: F,
            directed: F,
            edge_labeled: F,
            edge_attributed: F,
            node_types: F,
            property_types: F,
            relation_types: N,
            object_nodes: N,
            value_nodes: F,
            complex_nodes: N,
            object_relations: N,
            simple_relations: F,
            complex_relations: F,
            ql_grade: N,
            api_facility: F,
            graphical_ql: N,
            retrieval: F,
            reasoning: N,
            analysis: N,
            types_checking: F,
            identity: F,
            referential_integrity: N,
            cardinality: N,
            functional_dependency: N,
            pattern_constraints: N,
            q_adjacency: F,
            q_k_neighborhood: N,
            q_fixed_length: N,
            q_shortest_path: N,
            q_pattern: N,
            q_summarization: F,
        },
        EngineKind::InfiniteGraph => PaperCells {
            main_memory: N,
            external_memory: F,
            backend_storage: N,
            indexes: F,
            ddl: N,
            dml: N,
            query_language: N,
            api: F,
            gui: N,
            simple_graphs: N,
            hypergraphs: N,
            nested_graphs: N,
            attributed_graphs: F,
            node_labeled: F,
            node_attributed: F,
            directed: F,
            edge_labeled: F,
            edge_attributed: F,
            node_types: F,
            property_types: F,
            relation_types: N,
            object_nodes: F,
            value_nodes: F,
            complex_nodes: N,
            object_relations: F,
            simple_relations: F,
            complex_relations: N,
            ql_grade: N,
            api_facility: F,
            graphical_ql: N,
            retrieval: F,
            reasoning: N,
            analysis: N,
            types_checking: F,
            identity: F,
            referential_integrity: N,
            cardinality: N,
            functional_dependency: N,
            pattern_constraints: N,
            q_adjacency: F,
            q_k_neighborhood: F,
            q_fixed_length: F,
            q_shortest_path: F,
            q_pattern: N,
            q_summarization: F,
        },
        EngineKind::Neo4j => PaperCells {
            main_memory: F,
            external_memory: F,
            backend_storage: N,
            indexes: F,
            ddl: N,
            dml: N,
            query_language: N,
            api: F,
            gui: N,
            simple_graphs: N,
            hypergraphs: N,
            nested_graphs: N,
            attributed_graphs: F,
            node_labeled: F,
            node_attributed: F,
            directed: F,
            edge_labeled: F,
            edge_attributed: F,
            node_types: N,
            property_types: N,
            relation_types: N,
            object_nodes: F,
            value_nodes: F,
            complex_nodes: N,
            object_relations: F,
            simple_relations: F,
            complex_relations: N,
            ql_grade: P,
            api_facility: F,
            graphical_ql: N,
            retrieval: F,
            reasoning: N,
            analysis: N,
            types_checking: N,
            identity: N,
            referential_integrity: N,
            cardinality: N,
            functional_dependency: N,
            pattern_constraints: N,
            q_adjacency: F,
            q_k_neighborhood: F,
            q_fixed_length: F,
            q_shortest_path: F,
            q_pattern: N,
            q_summarization: F,
        },
        EngineKind::Sones => PaperCells {
            main_memory: F,
            external_memory: N,
            backend_storage: N,
            indexes: F,
            ddl: F,
            dml: F,
            query_language: F,
            api: F,
            gui: F,
            simple_graphs: N,
            hypergraphs: F,
            nested_graphs: N,
            attributed_graphs: F,
            node_labeled: F,
            node_attributed: F,
            directed: F,
            edge_labeled: F,
            edge_attributed: F,
            node_types: N,
            property_types: N,
            relation_types: N,
            object_nodes: N,
            value_nodes: F,
            complex_nodes: N,
            object_relations: N,
            simple_relations: F,
            complex_relations: F,
            ql_grade: F,
            api_facility: F,
            graphical_ql: F,
            retrieval: F,
            reasoning: N,
            analysis: F,
            types_checking: N,
            identity: F,
            referential_integrity: N,
            cardinality: F,
            functional_dependency: N,
            pattern_constraints: N,
            q_adjacency: F,
            q_k_neighborhood: N,
            q_fixed_length: N,
            q_shortest_path: N,
            q_pattern: N,
            q_summarization: F,
        },
        EngineKind::VertexDb => PaperCells {
            main_memory: N,
            external_memory: F,
            backend_storage: F,
            indexes: N,
            ddl: N,
            dml: N,
            query_language: N,
            api: F,
            gui: N,
            simple_graphs: F,
            hypergraphs: N,
            nested_graphs: N,
            attributed_graphs: N,
            node_labeled: N,
            node_attributed: N,
            directed: F,
            edge_labeled: F,
            edge_attributed: N,
            node_types: N,
            property_types: N,
            relation_types: N,
            object_nodes: N,
            value_nodes: F,
            complex_nodes: N,
            object_relations: N,
            simple_relations: F,
            complex_relations: N,
            ql_grade: N,
            api_facility: F,
            graphical_ql: N,
            retrieval: F,
            reasoning: N,
            analysis: N,
            types_checking: N,
            identity: N,
            referential_integrity: N,
            cardinality: N,
            functional_dependency: N,
            pattern_constraints: N,
            q_adjacency: F,
            q_k_neighborhood: F,
            q_fixed_length: F,
            q_shortest_path: N,
            q_pattern: N,
            q_summarization: F,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claims_hold_globally() {
        let all: Vec<PaperCells> = EngineKind::all().into_iter().map(paper_cells).collect();
        // "Value nodes and simple relations are supported by all the
        // models."
        assert!(all.iter().all(|c| c.value_nodes == F));
        assert!(all.iter().all(|c| c.simple_relations == F));
        // "no one nested graphs"
        assert!(all.iter().all(|c| c.nested_graphs == N));
        // "Only two support hypergraphs"
        assert_eq!(all.iter().filter(|c| c.hypergraphs == F).count(), 2);
        // Every engine has an API (the paper's central observation).
        assert!(all.iter().all(|c| c.api == F && c.api_facility == F));
        // Adjacency and summarization are answerable everywhere
        // (Table VII reconstruction).
        assert!(all
            .iter()
            .all(|c| c.q_adjacency == F && c.q_summarization == F));
    }

    #[test]
    fn language_cells_match_prose() {
        // "AllegroGraph supports SPARQL" (graded partial in Table V).
        assert_eq!(paper_cells(EngineKind::Allegro).ql_grade, P);
        // "Neo4j is developing Cypher" — partial, unreleased in Table II.
        let neo = paper_cells(EngineKind::Neo4j);
        assert_eq!(neo.ql_grade, P);
        assert_eq!(neo.query_language, N);
        // "G-Store and Sones include SQL-based query languages".
        assert_eq!(paper_cells(EngineKind::GStore).query_language, F);
        assert_eq!(paper_cells(EngineKind::Sones).query_language, F);
    }

    #[test]
    fn constraint_cells_match_table_vi() {
        // Only four engines appear in Table VI at all.
        let constrained: Vec<EngineKind> = EngineKind::all()
            .into_iter()
            .filter(|k| {
                let c = paper_cells(*k);
                [
                    c.types_checking,
                    c.identity,
                    c.referential_integrity,
                    c.cardinality,
                    c.functional_dependency,
                    c.pattern_constraints,
                ]
                .iter()
                .any(|s| s.is_supported())
            })
            .collect();
        assert_eq!(
            constrained,
            vec![
                EngineKind::Dex,
                EngineKind::HyperGraphDb,
                EngineKind::InfiniteGraph,
                EngineKind::Sones
            ]
        );
        // FD and pattern constraints are supported by nobody — the
        // paper: "integrity constraints are poorly studied".
        assert!(EngineKind::all()
            .into_iter()
            .all(|k| paper_cells(k).functional_dependency == N
                && paper_cells(k).pattern_constraints == N));
    }
}
