//! Builders for the paper's Tables I–VIII.
//!
//! Every table is rendered from the recorded cells in [`crate::cells`]
//! *after* [`crate::probes::assert_verified`] has confirmed that the
//! running engine emulations reproduce those cells — so a rendered
//! table is backed by execution, not transcription. Table VIII is the
//! bibliographic catalog from [`crate::past_languages`].

use crate::cells::paper_cells;
use crate::matrix::SupportMatrix;
use crate::past_languages;
use crate::probes::assert_verified;
use gdm_core::Result;
use gdm_engines::EngineKind;
use std::path::Path;

/// The paper's eight tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableId {
    /// Table I: data storing features.
    I,
    /// Table II: operation and manipulation features.
    II,
    /// Table III: graph data structures.
    III,
    /// Table IV: representation of entities and relations.
    IV,
    /// Table V: query facilities.
    V,
    /// Table VI: integrity constraints.
    VI,
    /// Table VII: essential-query support in current databases.
    VII,
    /// Table VIII: essential-query support in past query languages.
    VIII,
}

impl TableId {
    /// All tables in order.
    pub fn all() -> [TableId; 8] {
        [
            TableId::I,
            TableId::II,
            TableId::III,
            TableId::IV,
            TableId::V,
            TableId::VI,
            TableId::VII,
            TableId::VIII,
        ]
    }

    /// Parses `1`..`8` or roman numerals.
    pub fn parse(s: &str) -> Option<TableId> {
        match s.trim().to_ascii_uppercase().as_str() {
            "1" | "I" => Some(TableId::I),
            "2" | "II" => Some(TableId::II),
            "3" | "III" => Some(TableId::III),
            "4" | "IV" => Some(TableId::IV),
            "5" | "V" => Some(TableId::V),
            "6" | "VI" => Some(TableId::VI),
            "7" | "VII" => Some(TableId::VII),
            "8" | "VIII" => Some(TableId::VIII),
            _ => None,
        }
    }
}

fn engines() -> [EngineKind; 9] {
    EngineKind::all()
}

/// Builds one table without re-running the probe verification (the
/// caller is responsible for having verified).
pub fn build_table_unverified(id: TableId) -> SupportMatrix {
    match id {
        TableId::I => {
            let mut m = SupportMatrix::new("Table I. Data storing features", "Graph Database");
            m.column("Main memory")
                .column("External memory")
                .column("Backend storage")
                .column("Indexes");
            for kind in engines() {
                let c = paper_cells(kind);
                m.row(
                    kind.label(),
                    vec![
                        c.main_memory,
                        c.external_memory,
                        c.backend_storage,
                        c.indexes,
                    ],
                );
            }
            m
        }
        TableId::II => {
            let mut m = SupportMatrix::new(
                "Table II. Operation and manipulation features",
                "Graph Database",
            );
            m.column("Data Definition Language")
                .column("Data Manipulation Language")
                .column("Query Language")
                .column("API")
                .column("GUI");
            for kind in engines() {
                let c = paper_cells(kind);
                m.row(
                    kind.label(),
                    vec![c.ddl, c.dml, c.query_language, c.api, c.gui],
                );
            }
            m
        }
        TableId::III => {
            let mut m = SupportMatrix::new("Table III. Graph data structures", "Graph Database");
            m.grouped_column("Graphs", "Simple graphs")
                .grouped_column("Graphs", "Hypergraphs")
                .grouped_column("Graphs", "Nested graphs")
                .grouped_column("Graphs", "Attributed graphs")
                .grouped_column("Nodes", "Node labeled")
                .grouped_column("Nodes", "Node attribution")
                .grouped_column("Edges", "Directed")
                .grouped_column("Edges", "Edge labeled")
                .grouped_column("Edges", "Edge attribution");
            for kind in engines() {
                let c = paper_cells(kind);
                m.row(
                    kind.label(),
                    vec![
                        c.simple_graphs,
                        c.hypergraphs,
                        c.nested_graphs,
                        c.attributed_graphs,
                        c.node_labeled,
                        c.node_attributed,
                        c.directed,
                        c.edge_labeled,
                        c.edge_attributed,
                    ],
                );
            }
            m
        }
        TableId::IV => {
            let mut m = SupportMatrix::new(
                "Table IV. Representation of entities and relations",
                "Graph Database",
            );
            m.grouped_column("Schema", "Node types")
                .grouped_column("Schema", "Property types")
                .grouped_column("Schema", "Relation types")
                .grouped_column("Instance", "Object nodes")
                .grouped_column("Instance", "Value nodes")
                .grouped_column("Instance", "Complex nodes")
                .grouped_column("Instance", "Object relations")
                .grouped_column("Instance", "Simple relations")
                .grouped_column("Instance", "Complex relations");
            for kind in engines() {
                let c = paper_cells(kind);
                m.row(
                    kind.label(),
                    vec![
                        c.node_types,
                        c.property_types,
                        c.relation_types,
                        c.object_nodes,
                        c.value_nodes,
                        c.complex_nodes,
                        c.object_relations,
                        c.simple_relations,
                        c.complex_relations,
                    ],
                );
            }
            m
        }
        TableId::V => {
            let mut m = SupportMatrix::new(
                "Table V. Comparison of query facilities (• support, ◦ partial)",
                "Graph Database",
            );
            m.column("Query Lang.")
                .column("API")
                .column("Graphical Q.L.")
                .column("Retrieval")
                .column("Reasoning")
                .column("Analysis");
            for kind in engines() {
                let c = paper_cells(kind);
                m.row(
                    kind.label(),
                    vec![
                        c.ql_grade,
                        c.api_facility,
                        c.graphical_ql,
                        c.retrieval,
                        c.reasoning,
                        c.analysis,
                    ],
                );
            }
            m
        }
        TableId::VI => {
            let mut m = SupportMatrix::new(
                "Table VI. Comparison of integrity constraints",
                "Graph Database",
            );
            m.column("Types checking")
                .column("Node/edge identity")
                .column("Referential integrity")
                .column("Cardinality checking")
                .column("Functional dependency")
                .column("Graph pattern constraints");
            for kind in engines() {
                let c = paper_cells(kind);
                // The paper lists only the four engines with at least
                // one constraint; we keep all rows (blank rows read the
                // same) for diffability.
                m.row(
                    kind.label(),
                    vec![
                        c.types_checking,
                        c.identity,
                        c.referential_integrity,
                        c.cardinality,
                        c.functional_dependency,
                        c.pattern_constraints,
                    ],
                );
            }
            m
        }
        TableId::VII => {
            let mut m = SupportMatrix::new(
                "Table VII. Current graph databases and their support for essential graph queries",
                "Graph Database",
            );
            m.grouped_column("Adjacency", "Node/edge adjacency")
                .grouped_column("Adjacency", "k-neighborhood")
                .grouped_column("Reachability", "Fixed-length paths")
                .grouped_column("Reachability", "Shortest path")
                .column("Pattern matching")
                .column("Summarization");
            for kind in engines() {
                let c = paper_cells(kind);
                m.row(
                    kind.label(),
                    vec![
                        c.q_adjacency,
                        c.q_k_neighborhood,
                        c.q_fixed_length,
                        c.q_shortest_path,
                        c.q_pattern,
                        c.q_summarization,
                    ],
                );
            }
            m
        }
        TableId::VIII => {
            let mut m = SupportMatrix::new(
                "Table VIII. Past graph query languages and their support for essential graph queries (• support, ◦ partial)",
                "Query Language",
            );
            m.column("Node/edge adjacency")
                .column("Fixed-length paths")
                .column("Regular simple paths")
                .column("Shortest path")
                .column("Distance between nodes")
                .column("Pattern matching")
                .column("Summarization");
            for lang in past_languages::catalog() {
                m.row(
                    lang.name,
                    vec![
                        lang.adjacency,
                        lang.fixed_length,
                        lang.regular_simple_paths,
                        lang.shortest_path,
                        lang.distance,
                        lang.pattern_matching,
                        lang.summarization,
                    ],
                );
            }
            m
        }
    }
}

/// Builds one table after verifying the engine emulations against the
/// recorded cells (Table VIII needs no engines and skips verification).
pub fn build_table(id: TableId, workdir: &Path) -> Result<SupportMatrix> {
    if id != TableId::VIII {
        assert_verified(workdir)?;
    }
    Ok(build_table_unverified(id))
}

/// Builds all eight tables with one verification pass.
pub fn all_tables(workdir: &Path) -> Result<Vec<SupportMatrix>> {
    assert_verified(workdir)?;
    Ok(TableId::all()
        .into_iter()
        .map(build_table_unverified)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::Support;

    #[test]
    fn tables_render_the_papers_shape() {
        let t1 = build_table_unverified(TableId::I);
        assert_eq!(t1.rows.len(), 9);
        assert_eq!(t1.columns.len(), 4);
        assert_eq!(t1.get("Neo4j", "Main memory"), Some(Support::Full));
        assert_eq!(t1.get("G-Store", "Main memory"), Some(Support::None));

        let t5 = build_table_unverified(TableId::V);
        assert_eq!(
            t5.get("AllegroGraph", "Query Lang."),
            Some(Support::Partial)
        );
        assert_eq!(t5.get("Neo4j", "Query Lang."), Some(Support::Partial));
        assert_eq!(t5.get("Sones", "Query Lang."), Some(Support::Full));

        let t7 = build_table_unverified(TableId::VII);
        assert_eq!(
            t7.get("HyperGraphDB", "Node/edge adjacency"),
            Some(Support::Full)
        );
        assert_eq!(t7.get("HyperGraphDB", "Shortest path"), Some(Support::None));

        let t8 = build_table_unverified(TableId::VIII);
        assert!(t8.rows.len() >= 8);
    }

    #[test]
    fn table_id_parsing() {
        assert_eq!(TableId::parse("7"), Some(TableId::VII));
        assert_eq!(TableId::parse("iii"), Some(TableId::III));
        assert_eq!(TableId::parse("ix"), None);
    }

    #[test]
    fn verified_build_succeeds() {
        let dir = std::env::temp_dir().join(format!("gdm-tables-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let tables = all_tables(&dir).unwrap();
        assert_eq!(tables.len(), 8);
        for t in &tables {
            let text = t.render();
            assert!(text.contains("Table"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
