//! Execution probes: verify the paper's recorded cells against the
//! running engine emulations.
//!
//! For every cell with an executable counterpart, [`verify_engine`]
//! runs the corresponding facade call and checks that the outcome
//! (success vs. [`Unsupported`](gdm_core::GdmError::Unsupported))
//! matches the recorded support level. Cells with no executable form
//! (GUI, graphical query language, model-family classification,
//! main-memory/backend architecture, Table IV's representation
//! taxonomy) are catalog facts and are cross-checked against the
//! engine descriptors where those exist.

use crate::cells::paper_cells;
use gdm_algo::pattern::{Pattern, PatternNode};
use gdm_core::{GdmError, NodeId, PropertyMap, Result, Support, Value};
use gdm_engines::{make_engine, AnalysisFunc, EngineKind, GraphEngine, SummaryFunc};
use gdm_schema::{Constraint, NodeTypeDef, PropertyType, Schema, ValueType};
use std::path::Path;

/// Collapses a probe outcome into a support level; any error other
/// than `Unsupported` is a harness bug and is reported as a mismatch.
/// An `Interrupted` error gets its own message: the probe hit a
/// governor limit (deadline/budget/cancellation), which says nothing
/// about the emulated engine's feature support — the harness should be
/// run without limits, so it is still reported as a mismatch, but one
/// distinguishable from a crash.
fn support_of<T>(r: &Result<T>) -> std::result::Result<Support, String> {
    match r {
        Ok(_) => Ok(Support::Full),
        Err(e) if e.is_unsupported() => Ok(Support::None),
        Err(e) if e.is_interrupted() => Err(format!("probe interrupted by governor: {e}")),
        Err(e) => Err(format!("probe crashed: {e}")),
    }
}

/// Builds the standard probe graph through the facade, adapting to the
/// engine's model: labeled nodes/edges where supported, plain ones
/// otherwise. Shape: a → b → c → d plus a → c (two length-2 paths from
/// a to c... one via b, plus direct edge a→c).
pub fn build_probe_graph(e: &mut dyn GraphEngine) -> Result<Vec<NodeId>> {
    let mut nodes = Vec::new();
    for _ in 0..4 {
        let n = match e.create_node(Some("probe_t"), PropertyMap::new()) {
            Ok(n) => n,
            Err(err) if err.is_unsupported() => e.create_node(None, PropertyMap::new())?,
            Err(err) => return Err(err),
        };
        nodes.push(n);
    }
    let edge = |e: &mut dyn GraphEngine, a: NodeId, b: NodeId| -> Result<()> {
        match e.create_edge(a, b, Some("probe_r"), PropertyMap::new()) {
            Ok(_) => Ok(()),
            Err(err) if err.is_unsupported() => {
                e.create_edge(a, b, None, PropertyMap::new()).map(|_| ())
            }
            Err(err) => Err(err),
        }
    };
    edge(e, nodes[0], nodes[1])?;
    edge(e, nodes[1], nodes[2])?;
    edge(e, nodes[0], nodes[2])?;
    edge(e, nodes[2], nodes[3])?;
    Ok(nodes)
}

/// Per-engine language statements used by the DDL/DML/QL probes.
fn language_probes(kind: EngineKind) -> (&'static str, &'static str, &'static str) {
    match kind {
        EngineKind::Allegro => (
            "DEFINE PREDICATE <probe_pred>",
            "ADD <probe_s> <probe_p> <probe_o>",
            "SELECT (COUNT(*) AS ?n) WHERE { ?x ?p ?y }",
        ),
        EngineKind::GStore => (
            "CREATE NODE 'probe'",
            "INSERT SOMETHING",
            "SELECT COUNT NODES",
        ),
        EngineKind::Sones => (
            "CREATE VERTEX TYPE ProbeType ATTRIBUTES (Int probe_x)",
            "INSERT INTO ProbeType VALUES (probe_x = 1)",
            "FROM ProbeType p SELECT COUNT(*)",
        ),
        EngineKind::Neo4j => ("CREATE DDL", "INSERT DML", "MATCH (n) RETURN count(*) AS n"),
        _ => ("CREATE DDL PROBE", "INSERT DML PROBE", "QUERY PROBE"),
    }
}

/// A probe schema used by constraint probes.
fn probe_schema() -> Schema {
    let mut s = Schema::new();
    s.add_node_type(
        NodeTypeDef::new("probe_t").with(PropertyType::optional("probe_x", ValueType::Int)),
    )
    .expect("fresh schema");
    s
}

/// Verifies every executable cell for `kind`, building engines in fresh
/// subdirectories of `workdir`. Returns a human-readable mismatch list
/// (empty = the emulation reproduces the paper's row exactly).
pub fn verify_engine(kind: EngineKind, workdir: &Path) -> Result<Vec<String>> {
    let cells = paper_cells(kind);
    let mut mismatches: Vec<String> = Vec::new();
    fn record(
        mismatches: &mut Vec<String>,
        kind: EngineKind,
        feature: &str,
        expected: Support,
        got: std::result::Result<Support, String>,
    ) {
        match got {
            Ok(actual) => {
                // Partial cells must at least execute.
                let expected_exec = if expected == Support::Partial {
                    Support::Full
                } else {
                    expected
                };
                if actual != expected_exec {
                    mismatches.push(format!(
                        "{}: {feature}: paper records {expected:?}, probe observed {actual:?}",
                        kind.label()
                    ));
                }
            }
            Err(msg) => mismatches.push(format!("{}: {feature}: {msg}", kind.label())),
        }
    }
    macro_rules! check {
        ($feature:expr, $expected:expr, $got:expr $(,)?) => {
            record(&mut mismatches, kind, $feature, $expected, $got)
        };
    }

    let fresh = |tag: &str| -> Result<Box<dyn GraphEngine>> {
        let dir = workdir.join(format!(
            "{}-{tag}",
            kind.label().to_lowercase().replace('-', "_")
        ));
        std::fs::create_dir_all(&dir)?;
        make_engine(kind, &dir)
    };

    // ---- Table III structural probes --------------------------------
    {
        let mut e = fresh("structure")?;
        let nodes = build_probe_graph(e.as_mut())?;
        check!(
            "node labels",
            cells.node_labeled,
            support_of(&e.create_node(Some("probe_label_check"), PropertyMap::new())),
        );
        check!(
            "node attribution",
            cells.node_attributed,
            support_of(&e.set_node_attribute(nodes[0], "probe_x", Value::from(1))),
        );
        let labeled_edge = e.create_edge(
            nodes[0],
            nodes[3],
            Some("probe_labeled"),
            PropertyMap::new(),
        );
        check!("edge labels", cells.edge_labeled, support_of(&labeled_edge));
        if let Ok(edge) = labeled_edge {
            check!(
                "edge attribution",
                cells.edge_attributed,
                support_of(&e.set_edge_attribute(edge, "probe_w", Value::from(1))),
            );
        } else {
            // Engines without edge labels also lack edge attributes in
            // the paper's table; probe via an unlabeled edge.
            let edge = e.create_edge(nodes[0], nodes[3], None, PropertyMap::new())?;
            check!(
                "edge attribution",
                cells.edge_attributed,
                support_of(&e.set_edge_attribute(edge, "probe_w", Value::from(1))),
            );
        }
        check!(
            "hyperedges",
            cells.hypergraphs,
            support_of(&e.create_hyperedge("probe_h", &nodes[0..3], PropertyMap::new())),
        );
        check!(
            "nested graphs",
            cells.nested_graphs,
            support_of(&e.nest_subgraph(nodes[0])),
        );
    }

    // ---- Table I storage probes --------------------------------------
    {
        let mut e = fresh("storage")?;
        build_probe_graph(e.as_mut())?;
        check!(
            "external memory",
            cells.external_memory,
            support_of(&e.persist())
        );
        check!(
            "indexes",
            cells.indexes,
            support_of(&e.create_index("probe_x"))
        );
        // Secondary-index probe row: an engine credited with indexes
        // must also answer a value lookup through one, not merely
        // accept the DDL. Engines without `create_index` short-circuit
        // to the same refusal, so the expectation stays the Table I
        // cell.
        let index_lookup = e
            .create_index("probe_y")
            .and_then(|()| e.lookup_by_property("probe_y", &Value::from(1)));
        check!(
            "secondary index lookup",
            cells.indexes,
            support_of(&index_lookup)
        );
        let desc = e.descriptor();
        if desc.backend_storage != cells.backend_storage {
            mismatches.push(format!(
                "{}: backend storage: descriptor says {:?}, paper records {:?}",
                kind.label(),
                desc.backend_storage,
                cells.backend_storage
            ));
        }
    }

    // ---- Table II language probes ------------------------------------
    {
        let mut e = fresh("languages")?;
        build_probe_graph(e.as_mut())?;
        let (ddl, dml, ql) = language_probes(kind);
        check!("DDL", cells.ddl, support_of(&e.execute_ddl(ddl)));
        check!("DML", cells.dml, support_of(&e.execute_dml(dml)));
        // Query language: Table V's grade establishes executability;
        // Table II's cell records the released language.
        let ql_result = e.execute_query(ql);
        check!("query language", cells.ql_grade, support_of(&ql_result));
        let desc = e.descriptor();
        if desc.gui != cells.gui {
            mismatches.push(format!(
                "{}: GUI: descriptor says {:?}, paper records {:?}",
                kind.label(),
                desc.gui,
                cells.gui
            ));
        }
        if desc.graphical_ql != cells.graphical_ql {
            mismatches.push(format!(
                "{}: graphical QL: descriptor says {:?}, paper records {:?}",
                kind.label(),
                desc.graphical_ql,
                cells.graphical_ql
            ));
        }
    }

    // ---- Table V reasoning / analysis ---------------------------------
    {
        let mut e = fresh("facilities")?;
        build_probe_graph(e.as_mut())?;
        check!(
            "reasoning",
            cells.reasoning,
            support_of(&e.reason("probe_q(X, Y) :- probe_r(X, Y).", "probe_q(X, Y)")),
        );
        check!(
            "analysis",
            cells.analysis,
            support_of(&e.analyze(AnalysisFunc::ConnectedComponents)),
        );
    }

    // ---- CSR snapshot fast path (Table V analysis cross-check) --------
    // Freeze the probe graph and require that the snapshot — serially
    // and through the parallel executor — reproduces the live engine's
    // analysis answers exactly. This is how `perf_report` accelerates
    // Table V's analysis probes, so the agreement is checked here, not
    // just in gdm-algo's own tests.
    {
        let mut e = fresh("snapshot")?;
        let nodes = build_probe_graph(e.as_mut())?;
        match e.snapshot() {
            Ok(fz) => {
                let push = |m: &mut Vec<String>, what: &str| {
                    m.push(format!(
                        "{}: snapshot: frozen {what} disagrees with live answer",
                        kind.label()
                    ));
                };
                let comps = gdm_algo::analysis::connected_components(&fz).len();
                if gdm_algo::par_connected_components(&fz, 4).len() != comps {
                    push(&mut mismatches, "parallel components");
                }
                if let Ok(Value::Int(live)) = e.analyze(AnalysisFunc::ConnectedComponents) {
                    if live != comps as i64 {
                        push(&mut mismatches, "connected components");
                    }
                }
                let tris = gdm_algo::analysis::triangle_count(&fz);
                if gdm_algo::par_triangle_count(&fz, 4) != tris {
                    push(&mut mismatches, "parallel triangles");
                }
                if let Ok(Value::Int(live)) = e.analyze(AnalysisFunc::Triangles) {
                    if live != tris as i64 {
                        push(&mut mismatches, "triangle count");
                    }
                }
                if let Ok(live) = e.adjacent(nodes[0], nodes[2]) {
                    if gdm_algo::nodes_adjacent(&fz, nodes[0], nodes[2]) != live {
                        push(&mut mismatches, "adjacency");
                    }
                }
                if let Ok(live) = e.shortest_path(nodes[0], nodes[3]) {
                    let frozen = gdm_algo::shortest_path(&fz, nodes[0], nodes[3]);
                    if frozen.map(|p| p.len()) != live.map(|p| p.len() - 1) {
                        push(&mut mismatches, "shortest path length");
                    }
                }
            }
            Err(err) if err.is_unsupported() => {}
            Err(err) => {
                mismatches.push(format!("{}: snapshot: probe crashed: {err}", kind.label()))
            }
        }
    }

    // ---- Table VI constraint probes ------------------------------------
    {
        let schema = probe_schema();
        let probes: [(&str, Support, Constraint); 6] = [
            (
                "types checking",
                cells.types_checking,
                Constraint::TypeChecking(schema.clone()),
            ),
            (
                "node/edge identity",
                cells.identity,
                Constraint::Identity {
                    type_name: "probe_t".into(),
                    property: "probe_x".into(),
                },
            ),
            (
                "referential integrity",
                cells.referential_integrity,
                Constraint::ReferentialIntegrity,
            ),
            (
                "cardinality checking",
                cells.cardinality,
                Constraint::Cardinality(schema.clone()),
            ),
            (
                "functional dependency",
                cells.functional_dependency,
                Constraint::FunctionalDependency {
                    type_name: "probe_t".into(),
                    determinant: "probe_x".into(),
                    dependent: "probe_y".into(),
                },
            ),
            (
                "graph pattern constraints",
                cells.pattern_constraints,
                Constraint::GraphPattern {
                    name: "probe".into(),
                    pattern: Pattern::new(),
                    kind: gdm_schema::PatternKind::Required,
                },
            ),
        ];
        for (name, expected, constraint) in probes {
            let mut e = fresh("constraints")?;
            check!(
                name,
                expected,
                support_of(&e.install_constraint(constraint))
            );
        }
    }

    // ---- Table VII essential query probes ------------------------------
    {
        let mut e = fresh("essential")?;
        let n = build_probe_graph(e.as_mut())?;
        check!(
            "adjacency",
            cells.q_adjacency,
            support_of(&e.adjacent(n[0], n[1]))
        );
        check!(
            "k-neighborhood",
            cells.q_k_neighborhood,
            support_of(&e.k_neighborhood(n[0], 2)),
        );
        check!(
            "fixed-length paths",
            cells.q_fixed_length,
            support_of(&e.fixed_length_paths(n[0], n[2], 2)),
        );
        check!(
            "shortest path",
            cells.q_shortest_path,
            support_of(&e.shortest_path(n[0], n[3])),
        );
        let mut pattern = Pattern::new();
        let x = pattern.node(PatternNode::var("x"));
        let y = pattern.node(PatternNode::var("y"));
        pattern.edge(x, y, Some("probe_r"))?;
        check!(
            "pattern matching",
            cells.q_pattern,
            support_of(&e.pattern_match(&pattern))
        );
        check!(
            "summarization",
            cells.q_summarization,
            support_of(&e.summarize(SummaryFunc::Order)),
        );
    }

    Ok(mismatches)
}

/// The paper's Section II classification, probed: a system is a
/// *graph database* when it has a transaction engine, a *graph store*
/// otherwise. Returns `(databases, stores)` in table order.
pub fn classify(workdir: &Path) -> Result<(Vec<&'static str>, Vec<&'static str>)> {
    let mut databases = Vec::new();
    let mut stores = Vec::new();
    for kind in EngineKind::all() {
        let dir = workdir.join(format!("classify-{}", kind.label().to_lowercase()));
        std::fs::create_dir_all(&dir)?;
        let mut engine = make_engine(kind, &dir)?;
        match engine.begin_transaction() {
            Ok(()) => {
                engine.rollback_transaction()?;
                databases.push(kind.label());
            }
            Err(e) if e.is_unsupported() => stores.push(kind.label()),
            Err(e) => return Err(e),
        }
    }
    Ok((databases, stores))
}

/// Verifies every engine; returns all mismatches.
pub fn verify_all(workdir: &Path) -> Result<Vec<String>> {
    let mut all = Vec::new();
    for kind in EngineKind::all() {
        all.extend(verify_engine(kind, workdir)?);
    }
    Ok(all)
}

/// Like [`verify_all`] but fails on the first mismatch — the guard the
/// table builders run before rendering.
pub fn assert_verified(workdir: &Path) -> Result<()> {
    let mismatches = verify_all(workdir)?;
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(GdmError::InvalidArgument(format!(
            "engine emulations diverge from the paper's recorded cells:\n{}",
            mismatches.join("\n")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gdm-probes-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn every_engine_matches_its_recorded_row() {
        let dir = workdir("all");
        let mismatches = verify_all(&dir).unwrap();
        assert!(
            mismatches.is_empty(),
            "emulations diverge from the paper:\n{}",
            mismatches.join("\n")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn section_ii_classification() {
        let dir = workdir("classify");
        let (databases, stores) = classify(&dir).unwrap();
        // The paper: "Among the developments satisfying the above
        // condition, we found AllegroGraph, DEX, HypergraphDB,
        // InfiniteGraph, Neo4J and Sones" — the rest are graph stores.
        assert_eq!(
            databases,
            vec![
                "AllegroGraph",
                "DEX",
                "HyperGraphDB",
                "InfiniteGraph",
                "Neo4j",
                "Sones"
            ]
        );
        assert_eq!(stores, vec!["Filament", "G-Store", "VertexDB"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn probe_graph_builds_on_every_engine() {
        let dir = workdir("graph");
        for kind in EngineKind::all() {
            let sub = dir.join(kind.label().to_lowercase().replace('-', "_"));
            std::fs::create_dir_all(&sub).unwrap();
            let mut e = make_engine(kind, &sub).unwrap();
            let nodes = build_probe_graph(e.as_mut()).unwrap();
            assert_eq!(nodes.len(), 4, "{}", kind.label());
            assert!(e.adjacent(nodes[0], nodes[1]).unwrap(), "{}", kind.label());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
