//! Table VIII: essential-query support in *past* graph query
//! languages.
//!
//! The paper's Table VIII summarizes "a previous study \[35\] about
//! (past) graph query languages and their support for querying
//! essential graph queries", concluding that those theoretical
//! languages "provide a formal background for the definition of a
//! standard query language". The table is bibliographic — the
//! languages are 1987–2002 research proposals — so this module is a
//! catalog, reconstructed from the survey literature on graph query
//! languages (Angles & Gutiérrez's survey and Wood's companion
//! overview); EXPERIMENTS.md records it as a reconstruction.

use gdm_core::Support;
use gdm_core::Support::{Full as F, None as N, Partial as P};

/// One past language with its essential-query support row.
#[derive(Debug, Clone)]
pub struct PastLanguage {
    /// Language name.
    pub name: &'static str,
    /// One-line provenance.
    pub origin: &'static str,
    /// Node/edge adjacency.
    pub adjacency: Support,
    /// Fixed-length paths.
    pub fixed_length: Support,
    /// Regular simple paths.
    pub regular_simple_paths: Support,
    /// Shortest path.
    pub shortest_path: Support,
    /// Distance between nodes.
    pub distance: Support,
    /// Pattern matching.
    pub pattern_matching: Support,
    /// Summarization.
    pub summarization: Support,
}

/// The catalog, in rough chronological order.
pub fn catalog() -> Vec<PastLanguage> {
    vec![
        PastLanguage {
            name: "G",
            origin: "Cruz, Mendelzon & Wood 1987 — graphical recursive queries",
            adjacency: F,
            fixed_length: F,
            regular_simple_paths: F,
            shortest_path: N,
            distance: N,
            pattern_matching: P,
            summarization: N,
        },
        PastLanguage {
            name: "G+",
            origin: "Cruz, Mendelzon & Wood 1989 — G plus summarization operators",
            adjacency: F,
            fixed_length: F,
            regular_simple_paths: F,
            shortest_path: F,
            distance: F,
            pattern_matching: P,
            summarization: P,
        },
        PastLanguage {
            name: "GraphLog",
            origin: "Consens & Mendelzon 1990 — Datalog-style graphical queries",
            adjacency: F,
            fixed_length: F,
            regular_simple_paths: F,
            shortest_path: F,
            distance: F,
            pattern_matching: F,
            summarization: P,
        },
        PastLanguage {
            name: "Gram",
            origin: "Amann & Scholl 1992 — regular expressions over walks",
            adjacency: F,
            fixed_length: F,
            regular_simple_paths: F,
            shortest_path: N,
            distance: N,
            pattern_matching: P,
            summarization: N,
        },
        PastLanguage {
            name: "GraphDB",
            origin: "Güting 1994 — object-oriented graph classes and path ops",
            adjacency: F,
            fixed_length: F,
            regular_simple_paths: P,
            shortest_path: F,
            distance: F,
            pattern_matching: P,
            summarization: P,
        },
        PastLanguage {
            name: "Lorel",
            origin: "Abiteboul et al. 1997 — semistructured path queries",
            adjacency: F,
            fixed_length: F,
            regular_simple_paths: F,
            shortest_path: N,
            distance: N,
            pattern_matching: P,
            summarization: F,
        },
        PastLanguage {
            name: "F-G (Hypernode QL)",
            origin: "Levene & Poulovassilis 1990/1995 — nested hypernode queries",
            adjacency: F,
            fixed_length: P,
            regular_simple_paths: N,
            shortest_path: N,
            distance: N,
            pattern_matching: F,
            summarization: N,
        },
        PastLanguage {
            name: "UnQL",
            origin: "Buneman et al. 2000 — structural recursion over trees/graphs",
            adjacency: F,
            fixed_length: F,
            regular_simple_paths: F,
            shortest_path: N,
            distance: N,
            pattern_matching: F,
            summarization: F,
        },
        PastLanguage {
            name: "GOQL",
            origin: "Sheng, Ozsoyoglu 1999 — OQL extension with paths",
            adjacency: F,
            fixed_length: F,
            regular_simple_paths: P,
            shortest_path: N,
            distance: N,
            pattern_matching: P,
            summarization: F,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_non_trivial() {
        let langs = catalog();
        assert!(langs.len() >= 8);
        // The paper's positive conclusion: every essential query is
        // covered by at least one past language.
        assert!(langs.iter().any(|l| l.adjacency == F));
        assert!(langs.iter().any(|l| l.regular_simple_paths == F));
        assert!(langs.iter().any(|l| l.shortest_path == F));
        assert!(langs.iter().any(|l| l.pattern_matching == F));
        assert!(langs.iter().any(|l| l.summarization == F));
    }

    #[test]
    fn names_are_unique() {
        let langs = catalog();
        let mut names: Vec<&str> = langs.iter().map(|l| l.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), langs.len());
    }
}
