//! # gdm-compare
//!
//! The comparison harness that regenerates the paper's Tables I–VIII.
//!
//! Two ingredients per table:
//!
//! 1. [`cells`] — the cell values the paper records (with the
//!    reconstruction caveats documented in EXPERIMENTS.md: the source
//!    PDF's checkmark alignment is partially mangled, so some cells are
//!    reconstructed from the prose).
//! 2. [`probes`] — executable probes against the running engine
//!    emulations. Every probeable claim is *verified by execution*:
//!    a `•` cell must correspond to a facade call that succeeds, a
//!    blank cell to one that returns `Unsupported`. Table builders in
//!    [`tables`] run the probes and fail loudly on any mismatch, so a
//!    regenerated table is evidence, not transcription.
//!
//! [`matrix::SupportMatrix`] renders tables in the paper's visual
//! format (`•` / `◦` / blank) plus markdown and CSV.

pub mod cells;
pub mod matrix;
pub mod past_languages;
pub mod probes;
pub mod tables;

pub use matrix::SupportMatrix;
pub use tables::{all_tables, build_table, TableId};
