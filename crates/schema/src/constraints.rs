//! The six integrity-constraint checkers of Table VI.
//!
//! [`validate`] runs a set of [`Constraint`]s over a whole
//! [`PropertyGraph`] and reports every [`Violation`]. Engines that the
//! paper credits with a constraint install the corresponding checker
//! and reject mutations that introduce violations.

use crate::schema::{Cardinality, Schema};
use gdm_algo::pattern::{match_pattern, Pattern};
use gdm_core::{FxHashMap, GraphView, NodeId, Value};
use gdm_graphs::PropertyGraph;
use std::fmt;

/// Whether a graph-pattern constraint forbids or requires its pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// The pattern must not match anywhere.
    Forbidden,
    /// The pattern must match at least once.
    Required,
}

/// One integrity constraint (one Table VI column).
#[derive(Clone)]
pub enum Constraint {
    /// Instances must conform to the schema: known labels, declared
    /// properties present with the declared types, endpoint types and
    /// mandatory relations respected.
    TypeChecking(Schema),
    /// `property` uniquely identifies nodes labeled `type_name`.
    Identity {
        /// Node type the identity applies to.
        type_name: String,
        /// Identifying property.
        property: String,
    },
    /// Edges must reference live endpoints (always true for in-memory
    /// structures; meaningful for engines layering ids over storage,
    /// which validate against their id sets).
    ReferentialIntegrity,
    /// Edge-type cardinalities from the schema are respected.
    Cardinality(Schema),
    /// Within `type_name`, equal `determinant` values imply equal
    /// `dependent` values.
    FunctionalDependency {
        /// Node type the dependency ranges over.
        type_name: String,
        /// Determining property.
        determinant: String,
        /// Determined property.
        dependent: String,
    },
    /// A structural restriction expressed as a pattern.
    GraphPattern {
        /// Human-readable constraint name for reports.
        name: String,
        /// The pattern.
        pattern: Pattern,
        /// Forbidden or required.
        kind: PatternKind,
    },
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::TypeChecking(_) => write!(f, "TypeChecking"),
            Constraint::Identity {
                type_name,
                property,
            } => write!(f, "Identity({type_name}.{property})"),
            Constraint::ReferentialIntegrity => write!(f, "ReferentialIntegrity"),
            Constraint::Cardinality(_) => write!(f, "Cardinality"),
            Constraint::FunctionalDependency {
                type_name,
                determinant,
                dependent,
            } => write!(f, "FD({type_name}: {determinant} -> {dependent})"),
            Constraint::GraphPattern { name, kind, .. } => {
                write!(f, "GraphPattern({name}, {kind:?})")
            }
        }
    }
}

/// A reported constraint violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which constraint (Debug form).
    pub constraint: String,
    /// What went wrong.
    pub message: String,
    /// Offending nodes, when identifiable.
    pub nodes: Vec<NodeId>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.constraint, self.message)
    }
}

/// Validates `g` against `constraints`, returning every violation.
pub fn validate(g: &PropertyGraph, constraints: &[Constraint]) -> Vec<Violation> {
    let mut out = Vec::new();
    for c in constraints {
        match c {
            Constraint::TypeChecking(schema) => check_types(g, schema, c, &mut out),
            Constraint::Identity {
                type_name,
                property,
            } => check_identity(g, type_name, property, c, &mut out),
            Constraint::ReferentialIntegrity => check_referential(g, c, &mut out),
            Constraint::Cardinality(schema) => check_cardinality(g, schema, c, &mut out),
            Constraint::FunctionalDependency {
                type_name,
                determinant,
                dependent,
            } => check_fd(g, type_name, determinant, dependent, c, &mut out),
            Constraint::GraphPattern {
                name,
                pattern,
                kind,
            } => check_pattern(g, name, pattern, *kind, c, &mut out),
        }
    }
    out
}

fn violation(c: &Constraint, message: String, nodes: Vec<NodeId>) -> Violation {
    Violation {
        constraint: format!("{c:?}"),
        message,
        nodes,
    }
}

fn check_types(g: &PropertyGraph, schema: &Schema, c: &Constraint, out: &mut Vec<Violation>) {
    let mut nodes = Vec::new();
    g.visit_nodes(&mut |n| nodes.push(n));
    for n in &nodes {
        let label = g.node_label_text(*n).expect("live node").to_owned();
        let Some(def) = schema.node_type(&label) else {
            out.push(violation(
                c,
                format!("node {n} has undeclared type {label:?}"),
                vec![*n],
            ));
            continue;
        };
        let props = g.node_properties(*n).expect("live node");
        for pt in &def.properties {
            match props.get(&pt.name) {
                None if pt.required => out.push(violation(
                    c,
                    format!("node {n} ({label}) missing required property {:?}", pt.name),
                    vec![*n],
                )),
                Some(v) if !pt.value_type.admits(v) => out.push(violation(
                    c,
                    format!(
                        "node {n} ({label}).{} has type {}, expected {:?}",
                        pt.name,
                        v.type_name(),
                        pt.value_type
                    ),
                    vec![*n],
                )),
                _ => {}
            }
        }
    }
    // Edge typing: label declared, endpoint types respected, edge
    // property types respected, mandatory relations present.
    for e in g.edge_ids() {
        let label = g.edge_label_text(e).expect("live edge").to_owned();
        let (from, to) = g.edge_endpoints(e).expect("live edge");
        let Some(def) = schema.edge_type(&label) else {
            out.push(violation(
                c,
                format!("edge {e} has undeclared type {label:?}"),
                vec![from, to],
            ));
            continue;
        };
        let from_label = g.node_label_text(from).expect("live");
        let to_label = g.node_label_text(to).expect("live");
        if def.from.as_deref().is_some_and(|want| want != from_label) {
            out.push(violation(
                c,
                format!(
                    "edge {e} ({label}) starts at {from_label:?}, schema requires {:?}",
                    def.from.as_deref().expect("checked")
                ),
                vec![from],
            ));
        }
        if def.to.as_deref().is_some_and(|want| want != to_label) {
            out.push(violation(
                c,
                format!(
                    "edge {e} ({label}) ends at {to_label:?}, schema requires {:?}",
                    def.to.as_deref().expect("checked")
                ),
                vec![to],
            ));
        }
        let props = g.edge_properties(e).expect("live edge");
        for pt in &def.properties {
            match props.get(&pt.name) {
                None if pt.required => out.push(violation(
                    c,
                    format!("edge {e} ({label}) missing required property {:?}", pt.name),
                    vec![from, to],
                )),
                Some(v) if !pt.value_type.admits(v) => out.push(violation(
                    c,
                    format!(
                        "edge {e} ({label}).{} has type {}, expected {:?}",
                        pt.name,
                        v.type_name(),
                        pt.value_type
                    ),
                    vec![from, to],
                )),
                _ => {}
            }
        }
    }
    // Mandatory relations.
    for def in schema.edge_types() {
        if def.optional {
            continue;
        }
        let Some(from_type) = &def.from else { continue };
        for n in g.nodes_with_label(from_type) {
            let mut has = false;
            g.visit_out_edges(n, &mut |er| {
                if er
                    .label
                    .and_then(|s| g.label_text(s))
                    .is_some_and(|t| t == def.name)
                {
                    has = true;
                }
            });
            if !has {
                out.push(violation(
                    c,
                    format!(
                        "node {n} ({from_type}) lacks mandatory relation {:?}",
                        def.name
                    ),
                    vec![n],
                ));
            }
        }
    }
}

fn check_identity(
    g: &PropertyGraph,
    type_name: &str,
    property: &str,
    c: &Constraint,
    out: &mut Vec<Violation>,
) {
    let mut seen: FxHashMap<String, NodeId> = FxHashMap::default();
    for n in g.nodes_with_label(type_name) {
        let key = match g.node_properties(n).expect("live").get(property) {
            Some(v) => format!("{v:?}"),
            None => {
                out.push(violation(
                    c,
                    format!("node {n} ({type_name}) lacks identity property {property:?}"),
                    vec![n],
                ));
                continue;
            }
        };
        if let Some(&prev) = seen.get(&key) {
            out.push(violation(
                c,
                format!("nodes {prev} and {n} ({type_name}) share identity {property} = {key}"),
                vec![prev, n],
            ));
        } else {
            seen.insert(key, n);
        }
    }
}

fn check_referential(g: &PropertyGraph, c: &Constraint, out: &mut Vec<Violation>) {
    for e in g.edge_ids() {
        let (from, to) = g.edge_endpoints(e).expect("live edge");
        for endpoint in [from, to] {
            if !g.contains_node(endpoint) {
                out.push(violation(
                    c,
                    format!("edge {e} references missing node {endpoint}"),
                    vec![endpoint],
                ));
            }
        }
    }
}

fn check_cardinality(g: &PropertyGraph, schema: &Schema, c: &Constraint, out: &mut Vec<Violation>) {
    for def in schema.edge_types() {
        let limit_out = matches!(
            def.cardinality,
            Cardinality::OneFromSource | Cardinality::OneToOne
        );
        let limit_in = matches!(
            def.cardinality,
            Cardinality::OneToTarget | Cardinality::OneToOne
        );
        if !limit_out && !limit_in {
            continue;
        }
        let mut out_counts: FxHashMap<u64, usize> = FxHashMap::default();
        let mut in_counts: FxHashMap<u64, usize> = FxHashMap::default();
        for e in g.edge_ids() {
            if g.edge_label_text(e).expect("live") != def.name {
                continue;
            }
            let (from, to) = g.edge_endpoints(e).expect("live");
            *out_counts.entry(from.raw()).or_default() += 1;
            *in_counts.entry(to.raw()).or_default() += 1;
        }
        if limit_out {
            for (&n, &count) in &out_counts {
                if count > 1 {
                    out.push(violation(
                        c,
                        format!(
                            "node n{n} has {count} outgoing {:?} edges (cardinality {:?})",
                            def.name, def.cardinality
                        ),
                        vec![NodeId(n)],
                    ));
                }
            }
        }
        if limit_in {
            for (&n, &count) in &in_counts {
                if count > 1 {
                    out.push(violation(
                        c,
                        format!(
                            "node n{n} has {count} incoming {:?} edges (cardinality {:?})",
                            def.name, def.cardinality
                        ),
                        vec![NodeId(n)],
                    ));
                }
            }
        }
    }
}

fn check_fd(
    g: &PropertyGraph,
    type_name: &str,
    determinant: &str,
    dependent: &str,
    c: &Constraint,
    out: &mut Vec<Violation>,
) {
    let mut map: FxHashMap<String, (NodeId, Option<Value>)> = FxHashMap::default();
    for n in g.nodes_with_label(type_name) {
        let props = g.node_properties(n).expect("live");
        let Some(det) = props.get(determinant) else {
            continue;
        };
        let dep = props.get(dependent).cloned();
        let key = format!("{det:?}");
        match map.get(&key) {
            Some((prev, prev_dep)) => {
                let equal = match (prev_dep, &dep) {
                    (Some(a), Some(b)) => a.loose_eq(b),
                    (None, None) => true,
                    _ => false,
                };
                if !equal {
                    out.push(violation(
                        c,
                        format!(
                            "FD {determinant} -> {dependent} violated on {type_name}: \
                             nodes {prev} and {n} agree on {determinant} but differ on {dependent}"
                        ),
                        vec![*prev, n],
                    ));
                }
            }
            None => {
                map.insert(key, (n, dep));
            }
        }
    }
}

fn check_pattern(
    g: &PropertyGraph,
    name: &str,
    pattern: &Pattern,
    kind: PatternKind,
    c: &Constraint,
    out: &mut Vec<Violation>,
) {
    let matches = match_pattern(g, pattern);
    match kind {
        PatternKind::Forbidden if !matches.is_empty() => {
            let nodes: Vec<NodeId> = matches[0].values().copied().collect();
            out.push(violation(
                c,
                format!(
                    "forbidden pattern {name:?} matched {} time(s)",
                    matches.len()
                ),
                nodes,
            ));
        }
        PatternKind::Required if matches.is_empty() => {
            out.push(violation(
                c,
                format!("required pattern {name:?} has no match"),
                Vec::new(),
            ));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{EdgeTypeDef, NodeTypeDef, PropertyType, ValueType};
    use gdm_algo::pattern::PatternNode;
    use gdm_core::props;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_node_type(
            NodeTypeDef::new("person")
                .with(PropertyType::required("name", ValueType::Str))
                .with(PropertyType::optional("age", ValueType::Int)),
        )
        .unwrap();
        s.add_node_type(NodeTypeDef::new("company")).unwrap();
        s.add_edge_type(
            EdgeTypeDef::new("works_at")
                .between("person", "company")
                .cardinality(Cardinality::OneFromSource),
        )
        .unwrap();
        s.add_edge_type(EdgeTypeDef::new("knows").between("person", "person"))
            .unwrap();
        s
    }

    fn ok_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_node("person", props! { "name" => "ada", "age" => 36 });
        let b = g.add_node("person", props! { "name" => "bob" });
        let c = g.add_node("company", props! {});
        g.add_edge(a, b, "knows", props! {}).unwrap();
        g.add_edge(a, c, "works_at", props! {}).unwrap();
        g
    }

    #[test]
    fn conforming_graph_has_no_violations() {
        let g = ok_graph();
        let violations = validate(
            &g,
            &[
                Constraint::TypeChecking(schema()),
                Constraint::ReferentialIntegrity,
                Constraint::Cardinality(schema()),
                Constraint::Identity {
                    type_name: "person".into(),
                    property: "name".into(),
                },
            ],
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn undeclared_label_is_a_type_violation() {
        let mut g = ok_graph();
        g.add_node("alien", props! {});
        let v = validate(&g, &[Constraint::TypeChecking(schema())]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("alien"));
    }

    #[test]
    fn missing_required_property() {
        let mut g = ok_graph();
        g.add_node("person", props! { "age" => 5 });
        let v = validate(&g, &[Constraint::TypeChecking(schema())]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("name"));
    }

    #[test]
    fn wrong_property_type() {
        let mut g = ok_graph();
        g.add_node("person", props! { "name" => "eve", "age" => "old" });
        let v = validate(&g, &[Constraint::TypeChecking(schema())]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("age"));
    }

    #[test]
    fn wrong_endpoint_type() {
        let mut g = ok_graph();
        let c1 = g.nodes_with_label("company")[0];
        let p = g.nodes_with_label("person")[0];
        g.add_edge(c1, p, "works_at", props! {}).unwrap(); // reversed
        let v = validate(&g, &[Constraint::TypeChecking(schema())]);
        assert_eq!(v.len(), 2, "both endpoints wrong: {v:?}");
    }

    #[test]
    fn mandatory_relation() {
        let mut s = Schema::new();
        s.add_node_type(NodeTypeDef::new("person")).unwrap();
        s.add_node_type(NodeTypeDef::new("company")).unwrap();
        s.add_edge_type(
            EdgeTypeDef::new("works_at")
                .between("person", "company")
                .mandatory(),
        )
        .unwrap();
        let mut g = PropertyGraph::new();
        let a = g.add_node("person", props! {});
        let c = g.add_node("company", props! {});
        let v = validate(&g, &[Constraint::TypeChecking(s.clone())]);
        assert_eq!(v.len(), 1, "person without works_at");
        g.add_edge(a, c, "works_at", props! {}).unwrap();
        assert!(validate(&g, &[Constraint::TypeChecking(s)]).is_empty());
    }

    #[test]
    fn identity_duplicates_detected() {
        let mut g = ok_graph();
        g.add_node("person", props! { "name" => "ada" });
        let v = validate(
            &g,
            &[Constraint::Identity {
                type_name: "person".into(),
                property: "name".into(),
            }],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].nodes.len(), 2);
    }

    #[test]
    fn cardinality_violation() {
        let mut g = ok_graph();
        let a = g.nodes_with_label("person")[0];
        let c2 = g.add_node("company", props! {});
        g.add_edge(a, c2, "works_at", props! {}).unwrap(); // second job
        let v = validate(&g, &[Constraint::Cardinality(schema())]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("outgoing"));
    }

    #[test]
    fn functional_dependency() {
        let mut g = PropertyGraph::new();
        g.add_node("city", props! { "zip" => 8000, "region" => "north" });
        g.add_node("city", props! { "zip" => 8000, "region" => "south" });
        g.add_node("city", props! { "zip" => 9000, "region" => "south" });
        let fd = Constraint::FunctionalDependency {
            type_name: "city".into(),
            determinant: "zip".into(),
            dependent: "region".into(),
        };
        let v = validate(&g, &[fd]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("zip"));
    }

    #[test]
    fn forbidden_pattern() {
        let mut g = ok_graph();
        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x"));
        p.edge(x, x, Some("knows")).unwrap(); // self-knowledge forbidden
        let c = Constraint::GraphPattern {
            name: "no-self-knows".into(),
            pattern: p.clone(),
            kind: PatternKind::Forbidden,
        };
        assert!(validate(&g, std::slice::from_ref(&c)).is_empty());
        let a = g.nodes_with_label("person")[0];
        g.add_edge(a, a, "knows", props! {}).unwrap();
        assert_eq!(validate(&g, &[c]).len(), 1);
    }

    #[test]
    fn required_pattern() {
        let g = ok_graph();
        let mut p = Pattern::new();
        p.node(PatternNode::var("x").with_label("admin"));
        let c = Constraint::GraphPattern {
            name: "must-have-admin".into(),
            pattern: p,
            kind: PatternKind::Required,
        };
        let v = validate(&g, &[c]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no match"));
    }
}
