//! # gdm-schema
//!
//! Graph schemas and the integrity constraints of the paper's Table VI.
//!
//! "Integrity constraints are general statements and rules that define
//! the set of consistent database states, or changes of state, or
//! both." The paper finds constraints "poorly studied in graph
//! databases" and catalogs six kinds; all six are implemented here as
//! checkers over a [`gdm_graphs::PropertyGraph`]:
//!
//! | Table VI column | Implementation |
//! |---|---|
//! | Types checking | [`Constraint::TypeChecking`] against a [`Schema`] |
//! | Node/edge identity | [`Constraint::Identity`] (unique key property per type) |
//! | Referential integrity | [`Constraint::ReferentialIntegrity`] |
//! | Cardinality checking | [`Constraint::Cardinality`] via [`Cardinality`] on edge types |
//! | Functional dependency | [`Constraint::FunctionalDependency`] |
//! | Graph pattern constraints | [`Constraint::GraphPattern`] (forbidden / required patterns) |
//!
//! The paper also argues that an evolving schema is compatible with
//! constraints "by allowing flexible structures in the schema (as in
//! semi-structure data models). For example, the definition of a
//! relation type as optional" — reproduced by
//! [`PropertyType::required`] and [`EdgeTypeDef::optional`].

pub mod constraints;
pub mod schema;

pub use constraints::{validate, Constraint, PatternKind, Violation};
pub use schema::{Cardinality, EdgeTypeDef, NodeTypeDef, PropertyType, Schema, ValueType};
