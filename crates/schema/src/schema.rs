//! Schema definitions: node types, edge types, property types.
//!
//! Table IV's schema-level columns — *node types*, *property types*,
//! *relation types* — are exactly the three definition forms here.

use gdm_core::{GdmError, Result, Value};

/// The type of a property value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// Boolean values.
    Bool,
    /// Integer values.
    Int,
    /// Float values (integers are accepted and widened).
    Float,
    /// String values.
    Str,
    /// List values.
    List,
    /// Any non-null value.
    Any,
}

impl ValueType {
    /// Does `value` inhabit this type?
    pub fn admits(self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => false,
            (ValueType::Any, _) => true,
            (ValueType::Bool, Value::Bool(_)) => true,
            (ValueType::Int, Value::Int(_)) => true,
            (ValueType::Float, Value::Float(_) | Value::Int(_)) => true,
            (ValueType::Str, Value::Str(_)) => true,
            (ValueType::List, Value::List(_)) => true,
            _ => false,
        }
    }

    /// Parses a type name (case-insensitive), as the DDL front-ends
    /// accept it.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "bool" | "boolean" => Some(ValueType::Bool),
            "int" | "integer" | "long" => Some(ValueType::Int),
            "float" | "double" | "number" => Some(ValueType::Float),
            "str" | "string" | "text" => Some(ValueType::Str),
            "list" | "array" => Some(ValueType::List),
            "any" => Some(ValueType::Any),
            _ => None,
        }
    }
}

/// Declaration of one property on a node or edge type.
#[derive(Debug, Clone)]
pub struct PropertyType {
    /// Property name.
    pub name: String,
    /// Value type.
    pub value_type: ValueType,
    /// Must every instance carry it? (`false` = the paper's evolving-
    /// schema-friendly *optional* declaration.)
    pub required: bool,
    /// Must values be unique within the owning type? (Feeds the
    /// identity and cardinality constraints.)
    pub unique: bool,
}

impl PropertyType {
    /// A required property.
    pub fn required(name: impl Into<String>, value_type: ValueType) -> Self {
        Self {
            name: name.into(),
            value_type,
            required: true,
            unique: false,
        }
    }

    /// An optional property.
    pub fn optional(name: impl Into<String>, value_type: ValueType) -> Self {
        Self {
            name: name.into(),
            value_type,
            required: false,
            unique: false,
        }
    }

    /// Marks the property unique within its type.
    #[must_use]
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }
}

/// Relation-type cardinality, the paper's "uniqueness of properties or
/// relations".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cardinality {
    /// No restriction.
    #[default]
    ManyToMany,
    /// Each source node has at most one outgoing edge of this type.
    OneFromSource,
    /// Each target node has at most one incoming edge of this type.
    OneToTarget,
    /// Both restrictions at once.
    OneToOne,
}

/// Declaration of a node type.
#[derive(Debug, Clone)]
pub struct NodeTypeDef {
    /// Type (label) name.
    pub name: String,
    /// Declared properties.
    pub properties: Vec<PropertyType>,
}

impl NodeTypeDef {
    /// A node type with no properties.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            properties: Vec::new(),
        }
    }

    /// Adds a property declaration.
    #[must_use]
    pub fn with(mut self, prop: PropertyType) -> Self {
        self.properties.push(prop);
        self
    }
}

/// Declaration of an edge (relation) type.
#[derive(Debug, Clone)]
pub struct EdgeTypeDef {
    /// Type (label) name.
    pub name: String,
    /// Required source node type, if restricted.
    pub from: Option<String>,
    /// Required target node type, if restricted.
    pub to: Option<String>,
    /// Declared properties.
    pub properties: Vec<PropertyType>,
    /// Cardinality restriction.
    pub cardinality: Cardinality,
    /// Whether instances may omit this relation entirely (the paper's
    /// evolving-schema example). Only meaningful with a `from` type:
    /// `optional = false` means every node of the `from` type must
    /// have at least one edge of this type.
    pub optional: bool,
}

impl EdgeTypeDef {
    /// A relation type with unrestricted endpoints.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            from: None,
            to: None,
            properties: Vec::new(),
            cardinality: Cardinality::default(),
            optional: true,
        }
    }

    /// Restricts endpoint node types.
    #[must_use]
    pub fn between(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.from = Some(from.into());
        self.to = Some(to.into());
        self
    }

    /// Sets the cardinality restriction.
    #[must_use]
    pub fn cardinality(mut self, c: Cardinality) -> Self {
        self.cardinality = c;
        self
    }

    /// Declares the relation mandatory for every source-type node.
    #[must_use]
    pub fn mandatory(mut self) -> Self {
        self.optional = false;
        self
    }

    /// Adds a property declaration.
    #[must_use]
    pub fn with(mut self, prop: PropertyType) -> Self {
        self.properties.push(prop);
        self
    }
}

/// A graph schema: named node and edge types.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    node_types: Vec<NodeTypeDef>,
    edge_types: Vec<EdgeTypeDef>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node type; duplicate names are rejected.
    pub fn add_node_type(&mut self, def: NodeTypeDef) -> Result<()> {
        if self.node_type(&def.name).is_some() {
            return Err(GdmError::Schema(format!(
                "node type {:?} already defined",
                def.name
            )));
        }
        self.node_types.push(def);
        Ok(())
    }

    /// Adds an edge type; duplicate names and dangling endpoint types
    /// are rejected.
    pub fn add_edge_type(&mut self, def: EdgeTypeDef) -> Result<()> {
        if self.edge_type(&def.name).is_some() {
            return Err(GdmError::Schema(format!(
                "edge type {:?} already defined",
                def.name
            )));
        }
        for endpoint in [&def.from, &def.to].into_iter().flatten() {
            if self.node_type(endpoint).is_none() {
                return Err(GdmError::Schema(format!(
                    "edge type {:?} references undefined node type {endpoint:?}",
                    def.name
                )));
            }
        }
        self.edge_types.push(def);
        Ok(())
    }

    /// Removes a node type (schema evolution). Fails if an edge type
    /// still references it.
    pub fn drop_node_type(&mut self, name: &str) -> Result<()> {
        if self
            .edge_types
            .iter()
            .any(|e| e.from.as_deref() == Some(name) || e.to.as_deref() == Some(name))
        {
            return Err(GdmError::Schema(format!(
                "node type {name:?} is referenced by an edge type"
            )));
        }
        let before = self.node_types.len();
        self.node_types.retain(|t| t.name != name);
        if self.node_types.len() == before {
            return Err(GdmError::Schema(format!("node type {name:?} not defined")));
        }
        Ok(())
    }

    /// Looks up a node type.
    pub fn node_type(&self, name: &str) -> Option<&NodeTypeDef> {
        self.node_types.iter().find(|t| t.name == name)
    }

    /// Looks up an edge type.
    pub fn edge_type(&self, name: &str) -> Option<&EdgeTypeDef> {
        self.edge_types.iter().find(|t| t.name == name)
    }

    /// All node types.
    pub fn node_types(&self) -> &[NodeTypeDef] {
        &self.node_types
    }

    /// All edge types.
    pub fn edge_types(&self) -> &[EdgeTypeDef] {
        &self.edge_types
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types_admit_correctly() {
        assert!(ValueType::Int.admits(&Value::from(3)));
        assert!(!ValueType::Int.admits(&Value::from(3.0)));
        assert!(ValueType::Float.admits(&Value::from(3)), "ints widen");
        assert!(ValueType::Str.admits(&Value::from("x")));
        assert!(ValueType::Any.admits(&Value::from(true)));
        assert!(!ValueType::Any.admits(&Value::Null));
    }

    #[test]
    fn value_type_names() {
        assert_eq!(ValueType::parse("STRING"), Some(ValueType::Str));
        assert_eq!(ValueType::parse("double"), Some(ValueType::Float));
        assert_eq!(ValueType::parse("blob"), None);
    }

    #[test]
    fn schema_construction() {
        let mut s = Schema::new();
        s.add_node_type(
            NodeTypeDef::new("person")
                .with(PropertyType::required("name", ValueType::Str).unique()),
        )
        .unwrap();
        s.add_node_type(NodeTypeDef::new("company")).unwrap();
        s.add_edge_type(
            EdgeTypeDef::new("works_at")
                .between("person", "company")
                .cardinality(Cardinality::OneFromSource),
        )
        .unwrap();
        assert!(s.node_type("person").is_some());
        assert!(s.edge_type("works_at").is_some());
        assert_eq!(s.node_types().len(), 2);
    }

    #[test]
    fn duplicate_types_rejected() {
        let mut s = Schema::new();
        s.add_node_type(NodeTypeDef::new("a")).unwrap();
        assert!(s.add_node_type(NodeTypeDef::new("a")).is_err());
        s.add_edge_type(EdgeTypeDef::new("r")).unwrap();
        assert!(s.add_edge_type(EdgeTypeDef::new("r")).is_err());
    }

    #[test]
    fn dangling_endpoint_types_rejected() {
        let mut s = Schema::new();
        assert!(s
            .add_edge_type(EdgeTypeDef::new("r").between("ghost", "ghost"))
            .is_err());
    }

    #[test]
    fn drop_node_type_checks_references() {
        let mut s = Schema::new();
        s.add_node_type(NodeTypeDef::new("a")).unwrap();
        s.add_node_type(NodeTypeDef::new("b")).unwrap();
        s.add_edge_type(EdgeTypeDef::new("r").between("a", "b"))
            .unwrap();
        assert!(s.drop_node_type("a").is_err());
        assert!(s.drop_node_type("ghost").is_err());
        s.drop_node_type("b").err(); // b referenced too
    }
}
