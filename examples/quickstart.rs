//! Quickstart: build a property graph in the Neo4j emulation, run the
//! essential queries, and query it in the partial Cypher dialect.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use graph_db_models::core::{props, Result};
use graph_db_models::engines::{make_engine, EngineKind, SummaryFunc};

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("gdm-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // 1. Open an engine. Every surveyed database sits behind the same
    //    facade; swap `Neo4j` for `Dex`, `Allegro`, ... to compare.
    let mut db = make_engine(EngineKind::Neo4j, &dir)?;

    // 2. Build a small collaboration graph.
    let ada = db.create_node(Some("Person"), props! { "name" => "ada", "age" => 36 })?;
    let bob = db.create_node(Some("Person"), props! { "name" => "bob", "age" => 25 })?;
    let cleo = db.create_node(Some("Person"), props! { "name" => "cleo", "age" => 41 })?;
    let paper = db.create_node(Some("Paper"), props! { "title" => "graph models" })?;
    db.create_edge(ada, bob, Some("KNOWS"), props! { "since" => 2001 })?;
    db.create_edge(bob, cleo, Some("KNOWS"), props! {})?;
    db.create_edge(ada, paper, Some("WROTE"), props! {})?;
    db.create_edge(cleo, paper, Some("WROTE"), props! {})?;

    // 3. The essential queries of the paper's Section IV.
    println!("adjacent(ada, bob)        = {}", db.adjacent(ada, bob)?);
    println!(
        "k_neighborhood(ada, 2)    = {:?}",
        db.k_neighborhood(ada, 2)?
    );
    println!(
        "shortest_path(ada, cleo)  = {:?}",
        db.shortest_path(ada, cleo)?
    );
    println!(
        "order / size              = {} / {}",
        db.summarize(SummaryFunc::Order)?,
        db.summarize(SummaryFunc::Size)?
    );

    // 4. The in-development Cypher dialect (the paper's Table V `◦`).
    let rs =
        db.execute_query("MATCH (a:Person)-[:WROTE]->(p:Paper) RETURN a.name ORDER BY a.name")?;
    println!("\nauthors of the paper:\n{}", rs.to_text());

    let rs =
        db.execute_query("MATCH (a:Person {name: 'ada'})-[:KNOWS*1..2]->(b:Person) RETURN b.name")?;
    println!("ada's extended circle:\n{}", rs.to_text());

    // 5. Durability: persist and reopen.
    db.persist()?;
    let db2 = make_engine(EngineKind::Neo4j, &dir)?;
    assert_eq!(db2.node_count(), 4);
    println!("persisted and reopened: {} nodes", db2.node_count());
    Ok(())
}
