//! Crash recovery, demonstrated with a real process kill.
//!
//! Run in two steps against the same directory:
//!
//! ```sh
//! cargo run --example durability -- write /tmp/gdm-durable   # aborts itself
//! cargo run --example durability -- read  /tmp/gdm-durable   # recovers
//! ```
//!
//! The `write` step opens a durable Neo4j emulation, commits a small
//! social graph (including one transaction that is rolled back and must
//! never reappear), then dies via `std::process::abort()` — no
//! destructors, no clean shutdown, exactly like a `kill -9`. The `read`
//! step reopens the same directory: the write-ahead log replays and
//! every committed mutation is visible again.

use graph_db_models::core::{props, Value};
use graph_db_models::engines::{make_engine_durable, EngineKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let (mode, dir) = match (args.next(), args.next()) {
        (Some(m), Some(d)) => (m, std::path::PathBuf::from(d)),
        _ => {
            eprintln!("usage: durability <write|read> <dir>");
            std::process::exit(2);
        }
    };

    match mode.as_str() {
        "write" => {
            let _ = std::fs::remove_dir_all(&dir);
            let mut db = make_engine_durable(EngineKind::Neo4j, &dir).expect("open durable");

            let mut people = Vec::new();
            for (i, name) in ["ada", "bob", "cyn", "dee", "eli"].iter().enumerate() {
                let id = db
                    .create_node(
                        Some("Person"),
                        props! { "name" => *name, "seq" => Value::Int(i as i64) },
                    )
                    .expect("create_node");
                people.push(id);
            }
            for w in people.windows(2) {
                db.create_edge(w[0], w[1], Some("KNOWS"), props! {})
                    .expect("create_edge");
            }

            // A transaction that commits atomically…
            db.begin_transaction().expect("begin");
            let fay = db
                .create_node(Some("Person"), props! { "name" => "fay" })
                .expect("create in txn");
            db.create_edge(people[0], fay, Some("KNOWS"), props! {})
                .expect("edge in txn");
            db.commit_transaction().expect("commit");

            // …and one that rolls back and must never reappear.
            db.begin_transaction().expect("begin");
            db.create_node(Some("Person"), props! { "name" => "ghost" })
                .expect("create doomed");
            db.rollback_transaction().expect("rollback");

            println!(
                "committed {} nodes / {} edges; dying without shutdown…",
                db.node_count(),
                db.edge_count()
            );
            // Simulate a hard crash: no Drop impls run, nothing flushes.
            std::process::abort();
        }
        "read" => {
            let mut db = make_engine_durable(EngineKind::Neo4j, &dir).expect("recover");
            println!(
                "recovered {} nodes / {} edges",
                db.node_count(),
                db.edge_count()
            );
            let rs = db
                .execute_query("MATCH (a:Person)-[:KNOWS]->(b) RETURN b.name")
                .expect("query");
            let mut names: Vec<&str> = rs.rows.iter().filter_map(|r| r[0].as_str()).collect();
            names.sort_unstable();
            println!("KNOWS targets: {names:?}");
            assert!(
                !names.contains(&"ghost"),
                "rolled-back transaction resurfaced"
            );
        }
        other => {
            eprintln!("unknown mode {other:?}; use write|read");
            std::process::exit(2);
        }
    }
}
