//! The paper's modeling claim, executed.
//!
//! Section III.A: "hypergraphs and attributed graphs can be modeled by
//! nested graphs. In contrast, the multilevel nesting provided by
//! nested graphs cannot be modeled by any of the other structures."
//! This example runs both embeddings and their inverses, then shows a
//! depth-3 nested graph that no flat structure can express without an
//! encoding.
//!
//! ```sh
//! cargo run --example model_translations
//! ```

use graph_db_models::core::{props, GraphView, Result, Value};
use graph_db_models::graphs::nested::{translate, NestedGraph};
use graph_db_models::graphs::{HyperGraph, PropertyGraph};

fn main() -> Result<()> {
    // ---- hypergraph → nested graph → hypergraph ---------------------
    let mut h = HyperGraph::new();
    let alice = h.add_node("person", props! { "name" => "alice" });
    let bob = h.add_node("person", props! { "name" => "bob" });
    let carol = h.add_node("person", props! { "name" => "carol" });
    let meeting = h.add_link("meeting", &[alice, bob, carol], props! {})?;
    h.add_link("minutes_of", &[meeting, alice], props! {})?; // link on a link

    let nested = translate::hyper_to_nested(&h);
    println!(
        "hypergraph ({} nodes, {} links) → nested graph: {} top-level nodes, depth {}",
        h.node_count(),
        h.link_count(),
        nested.node_count(),
        nested.depth()
    );
    let back = translate::nested_to_hyper(&nested)?;
    assert_eq!(back.node_count(), h.node_count());
    assert_eq!(back.link_count(), h.link_count());
    println!(
        "round-trip restored {} nodes and {} links ✓\n",
        back.node_count(),
        back.link_count()
    );

    // ---- attributed graph → nested graph → attributed graph ---------
    let mut p = PropertyGraph::new();
    let ada = p.add_node("person", props! { "name" => "ada", "age" => 36 });
    let acme = p.add_node("company", props! { "name" => "acme" });
    p.add_edge(ada, acme, "works_at", props! { "since" => 2019 })?;

    let nested_p = translate::property_to_nested(&p);
    println!(
        "attributed graph → nested graph: {} top-level nodes (attributes became subgraphs), depth {}",
        nested_p.node_count(),
        nested_p.depth()
    );
    let back_p = translate::nested_to_property(&nested_p)?;
    let people = back_p.nodes_with_label("person");
    assert_eq!(
        graph_db_models::core::AttributedView::node_property(&back_p, people[0], "age"),
        Some(Value::from(36))
    );
    let e = back_p.edge_ids()[0];
    assert_eq!(
        back_p.edge_properties(e)?.get("since"),
        Some(&Value::from(2019))
    );
    println!("round-trip restored labels, node attributes, and edge attributes ✓\n");

    // ---- the direction that does NOT work ---------------------------
    // Build organizational charts nested three levels deep: a company
    // containing departments containing teams.
    let mut team = NestedGraph::new();
    team.add_node("engineer", props! {});
    team.add_node("engineer", props! {});
    let mut dept = NestedGraph::new();
    let t = dept.add_node("team-graphs", props! {});
    dept.nest(t, team)?;
    let mut org = NestedGraph::new();
    let d = org.add_node("dept-research", props! {});
    org.nest(d, dept)?;
    println!(
        "organizational chart: depth {} (flat models cap at depth 1; hyper/attributed \
         encode one extra level at most — the paper's asymmetry)",
        org.depth()
    );
    assert_eq!(org.depth(), 3);
    assert_eq!(org.total_node_count(), 4);
    Ok(())
}
