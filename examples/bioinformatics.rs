//! Bioinformatics — the HyperGraphDB motivation: "a natural
//! representation of higher-order relations ... particularly useful
//! for modeling data of areas like knowledge representation,
//! artificial intelligence and bio-informatics."
//!
//! A metabolic reaction relates an enzyme, substrates, and products
//! *in one relation* — a hyperedge — where a binary model would need
//! reified intermediate nodes. This example models a mini pathway and
//! annotates a relation with provenance (a link on a link, Table III's
//! "edges between edges").
//!
//! ```sh
//! cargo run --example bioinformatics
//! ```

use graph_db_models::core::{props, Result, Value};
use graph_db_models::engines::hypergraphdb::HyperGraphDbEngine;
use graph_db_models::engines::{GraphEngine, SummaryFunc};
use graph_db_models::graphs::hyper::AtomId;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("gdm-bio-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let mut db = HyperGraphDbEngine::open(&dir)?;

    // Molecules and enzymes as typed atoms.
    let glucose = db.create_node(Some("metabolite"), props! { "name" => "glucose" })?;
    let g6p = db.create_node(
        Some("metabolite"),
        props! { "name" => "glucose-6-phosphate" },
    )?;
    let f6p = db.create_node(
        Some("metabolite"),
        props! { "name" => "fructose-6-phosphate" },
    )?;
    let atp = db.create_node(Some("cofactor"), props! { "name" => "ATP" })?;
    let adp = db.create_node(Some("cofactor"), props! { "name" => "ADP" })?;
    let hexokinase = db.create_node(Some("enzyme"), props! { "name" => "hexokinase" })?;
    let pgi = db.create_node(
        Some("enzyme"),
        props! { "name" => "phosphoglucose isomerase" },
    )?;

    // Reactions as hyperedges: enzyme + substrates + products in one
    // higher-order relation.
    let r1 = db.create_hyperedge(
        "reaction",
        &[hexokinase, glucose, atp, g6p, adp],
        props! { "ec" => "2.7.1.1", "delta_g" => -16.7 },
    )?;
    let _r2 = db.create_hyperedge(
        "reaction",
        &[pgi, g6p, f6p],
        props! { "ec" => "5.3.1.9", "delta_g" => 1.7 },
    )?;

    // Provenance annotation on the first reaction: a link whose target
    // is itself a link.
    let source = db.create_node(Some("publication"), props! { "doi" => "10.1042/example" })?;
    db.create_edge_on_edge(r1, source, "reported_in")?;

    println!(
        "pathway stored: {} atoms ({} molecules/enzymes, {} relations)\n",
        db.node_count() + db.edge_count(),
        db.node_count(),
        db.edge_count()
    );

    // Queries through the hypergraph API.
    println!(
        "glucose participates with: {:?}",
        db.atoms()
            .neighbors(AtomId(glucose.raw()))?
            .iter()
            .map(|a| db.atoms().property(*a, "name").cloned())
            .collect::<Vec<Option<Value>>>()
    );
    println!(
        "g6p is adjacent to f6p (shared reaction): {}",
        db.adjacent(g6p, f6p)?
    );
    println!(
        "hexokinase reaction arity: {}",
        db.atoms().arity(AtomId(r1.raw()))?
    );
    println!(
        "provenance links on r1: {:?}",
        db.atoms().incidence(AtomId(r1.raw()))?
    );

    // Identity constraint: metabolite names are unique (Table VI's
    // node/edge identity for HyperGraphDB).
    db.install_constraint(graph_db_models::schema::Constraint::Identity {
        type_name: "metabolite".into(),
        property: "name".into(),
    })?;
    let dup = db.create_node(Some("metabolite"), props! { "name" => "glucose" });
    println!("\nduplicate metabolite rejected: {}", dup.unwrap_err());

    // Property lookup through a hash index.
    db.create_index("name")?;
    let hits = db.lookup_by_property("name", &Value::from("ATP"))?;
    println!("index lookup for ATP: {hits:?}");

    println!(
        "degree stats over the 2-section: max degree = {}",
        db.summarize(SummaryFunc::MaxDegree)?
    );
    db.persist()?;
    Ok(())
}
