//! Semantic Web — the AllegroGraph story: RDF triples, SPARQL-style
//! pattern queries, and rule-based reasoning (the paper's Table V
//! "Reasoning" column, Prolog in the original, Datalog here).
//!
//! ```sh
//! cargo run --example semantic_web
//! ```

use graph_db_models::core::Result;
use graph_db_models::engines::{make_engine, AnalysisFunc, EngineKind};

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("gdm-semweb-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let mut ag = make_engine(EngineKind::Allegro, &dir)?;

    // 1. Load a tiny ontology + instance data through the DML.
    for stmt in [
        "ADD <socrates> <is_a> <human>",
        "ADD <plato> <is_a> <human>",
        "ADD <human> <subclass_of> <mortal>",
        "ADD <mortal> <subclass_of> <being>",
        "ADD <socrates> <taught> <plato>",
        "ADD <plato> <taught> <aristotle>",
        "ADD <aristotle> <is_a> <human>",
        "ADD <socrates> <age> '70'",
        "ADD <plato> <age> '80'",
    ] {
        ag.execute_dml(stmt)?;
    }
    println!("loaded {} triples\n", ag.edge_count());

    // 2. SPARQL-style basic graph patterns.
    let rs = ag.execute_query("SELECT ?x WHERE { ?x <is_a> <human> } ORDER BY ?x")?;
    println!("humans:\n{}", rs.to_text());

    let rs = ag.execute_query(
        "SELECT ?teacher ?student WHERE { ?teacher <taught> ?student . ?student <is_a> <human> }",
    )?;
    println!("teaching pairs:\n{}", rs.to_text());

    let rs = ag.execute_query("SELECT ?p WHERE { ?p <age> ?a . FILTER(?a > 75) }")?;
    println!("older than 75:\n{}", rs.to_text());

    // 3. Reasoning: classify every individual through the subclass
    //    hierarchy (transitive closure, the classic inference).
    let rules = "
        type(X, C) :- is_a(X, C).
        type(X, Super) :- type(X, Sub), subclass_of(Sub, Super).
        lineage(X, Y) :- taught(X, Y).
        lineage(X, Z) :- taught(X, Y), lineage(Y, Z).
    ";
    let mortals = ag.reason(rules, "type(X, mortal)")?;
    println!(
        "inferred mortals: {:?}",
        mortals.iter().map(|r| r[0].as_str()).collect::<Vec<_>>()
    );
    let lineage = ag.reason(rules, "lineage(socrates, X)")?;
    println!(
        "socrates' intellectual lineage: {:?}",
        lineage.iter().map(|r| r[0].as_str()).collect::<Vec<_>>()
    );

    // 4. The SNA special functions the paper credits AllegroGraph with.
    println!(
        "\nconnected components of the triple graph: {}",
        ag.analyze(AnalysisFunc::ConnectedComponents)?
    );
    ag.persist()?;
    println!("persisted to {}", dir.display());
    Ok(())
}
