//! Data exchange — the gap the paper calls out: "the support to
//! import and export data in different data formats ... none of them
//! has been selected as the standard one. This issue is particularly
//! relevant for data exchange and sharing."
//!
//! This example does what a 2012 user could not: exports a graph from
//! one engine's model to GraphML, re-imports it, and loads it into a
//! *different* engine.
//!
//! ```sh
//! cargo run --example data_exchange
//! ```

use gdm_bench::{load_into_engine, social_graph, SocialParams};
use graph_db_models::core::{GraphView, Result};
use graph_db_models::engines::{make_engine, EngineKind};
use graph_db_models::graphs::graphml;
use graph_db_models::graphs::PropertyGraph;

fn main() -> Result<()> {
    let base = std::env::temp_dir().join(format!("gdm-exchange-{}", std::process::id()));
    std::fs::create_dir_all(&base)?;

    // 1. A society born in DEX's attributed model.
    let society = social_graph(SocialParams {
        people: 120,
        communities: 4,
        intra_edges: 4,
        inter_edges: 1,
        seed: 7,
    });
    println!(
        "source graph: {} nodes, {} edges",
        society.node_count(),
        society.edge_count()
    );

    // 2. Export to GraphML and park it on disk — the exchange artifact.
    let xml = graphml::export(&society)?;
    let path = base.join("society.graphml");
    std::fs::write(&path, &xml)?;
    println!(
        "exported {} bytes of GraphML to {}",
        xml.len(),
        path.display()
    );

    // 3. Re-import and verify nothing was lost.
    let reloaded: PropertyGraph = graphml::import(&std::fs::read_to_string(&path)?)?;
    assert_eq!(reloaded.node_count(), society.node_count());
    assert_eq!(reloaded.edge_count(), society.edge_count());
    println!("re-imported: counts match ✓");

    // 4. Load the exchanged graph into two *different* engines.
    for kind in [EngineKind::Neo4j, EngineKind::VertexDb] {
        let dir = base.join(kind.label().to_lowercase());
        std::fs::create_dir_all(&dir)?;
        let mut engine = make_engine(kind, &dir)?;
        let nodes = load_into_engine(engine.as_mut(), &reloaded)?;
        println!(
            "{}: loaded {} nodes / {} edges; n0 adjacent to its first neighbor: {}",
            kind.label(),
            engine.node_count(),
            engine.edge_count(),
            engine
                .k_neighborhood(nodes[0], 1)
                .map(|h| !h.is_empty())
                .unwrap_or(true)
        );
    }
    Ok(())
}
