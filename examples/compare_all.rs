//! Regenerates all eight comparison tables in one run — the paper's
//! complete evaluation — after verifying every recorded cell against
//! the running engine emulations.
//!
//! ```sh
//! cargo run --example compare_all
//! ```
//! (Equivalent to `cargo run -p gdm-bench --bin tables`.)

use graph_db_models::compare::probes::verify_all;
use graph_db_models::compare::tables::{build_table_unverified, TableId};
use graph_db_models::core::Result;

fn main() -> Result<()> {
    let workdir = std::env::temp_dir().join(format!("gdm-compare-all-{}", std::process::id()));
    std::fs::create_dir_all(&workdir)?;

    println!("probing the nine engine emulations against the paper's recorded cells ...");
    let mismatches = verify_all(&workdir)?;
    if mismatches.is_empty() {
        println!("all executable cells verified by probes.\n");
    } else {
        eprintln!("MISMATCHES:\n{}", mismatches.join("\n"));
        std::process::exit(1);
    }

    for id in TableId::all() {
        println!("{}", build_table_unverified(id).render());
    }
    let _ = std::fs::remove_dir_all(&workdir);
    Ok(())
}
