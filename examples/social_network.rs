//! Social network analysis — the application domain the paper (and
//! AllegroGraph's marketing) leads with. Generates a community-
//! structured society, loads it into two engines with different data
//! models (DEX's attributed graph and a plain VertexDB store), and
//! compares what each model lets you ask.
//!
//! ```sh
//! cargo run --example social_network
//! ```

use gdm_bench::{load_into_engine, social_graph, SocialParams};
use graph_db_models::algo::summary::Aggregate;
use graph_db_models::core::{Result, Value};
use graph_db_models::engines::{make_engine, AnalysisFunc, EngineKind, SummaryFunc};

fn main() -> Result<()> {
    let society = social_graph(SocialParams {
        people: 400,
        communities: 8,
        intra_edges: 6,
        inter_edges: 1,
        seed: 2012,
    });
    println!(
        "generated society: {} people, {} knows-edges, 8 communities\n",
        graph_db_models::core::GraphView::node_count(&society),
        graph_db_models::core::GraphView::edge_count(&society)
    );

    let base = std::env::temp_dir().join(format!("gdm-social-{}", std::process::id()));

    // ---- DEX: attributed graph with analysis functions -------------
    let dex_dir = base.join("dex");
    std::fs::create_dir_all(&dex_dir)?;
    let mut dex = make_engine(EngineKind::Dex, &dex_dir)?;
    let nodes = load_into_engine(dex.as_mut(), &society)?;

    println!("== DEX (attributed graph, bitmap indexes, analysis API) ==");
    dex.create_index("community")?;
    let c3 = dex.lookup_by_property("community", &Value::Int(3))?;
    println!("community 3 members (via bitmap index): {}", c3.len());
    println!(
        "average age: {}",
        dex.summarize(SummaryFunc::PropertyAggregate(Aggregate::Avg, "age"))?
    );
    println!("max degree: {}", dex.summarize(SummaryFunc::MaxDegree)?);
    println!("triangles: {}", dex.analyze(AnalysisFunc::Triangles)?);
    println!(
        "connected components: {}",
        dex.analyze(AnalysisFunc::ConnectedComponents)?
    );
    println!(
        "shortest path p0 -> p399: {:?}",
        dex.shortest_path(nodes[0], nodes[399])?
            .map(|p| p.len() - 1)
    );

    // ---- VertexDB: the same society, simple-graph model ------------
    let vdb_dir = base.join("vertexdb");
    std::fs::create_dir_all(&vdb_dir)?;
    let mut vdb = make_engine(EngineKind::VertexDb, &vdb_dir)?;
    let vnodes = load_into_engine(vdb.as_mut(), &society)?;

    println!("\n== VertexDB (simple graph on a disk B-tree) ==");
    println!(
        "2-neighborhood of p0: {} people",
        vdb.k_neighborhood(vnodes[0], 2)?.len()
    );
    // The simple-graph model has no attributes or analysis — the
    // comparison the paper's Table III/V rows encode:
    match vdb.summarize(SummaryFunc::PropertyAggregate(Aggregate::Avg, "age")) {
        Err(e) => println!("average age: refused — {e}"),
        Ok(v) => println!("average age: {v} (unexpected)"),
    }
    match vdb.analyze(AnalysisFunc::Triangles) {
        Err(e) => println!("triangles: refused — {e}"),
        Ok(v) => println!("triangles: {v} (unexpected)"),
    }
    Ok(())
}
