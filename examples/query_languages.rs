//! The paper's central gripe, demonstrated: "The lack of a standard
//! query language is a disadvantage of current graph databases ...
//! the selection is hardly determined by the programmer skills or by
//! application requirements."
//!
//! One question — *which people over 25 does ana reach in one or two
//! steps?* — asked five ways: Cypher (Neo4j), GQL (Sones), SPARQL
//! (AllegroGraph), GSQL paths (G-Store), and Datalog rules
//! (AllegroGraph reasoning). Same logic, five surfaces.
//!
//! ```sh
//! cargo run --example query_languages
//! ```

use graph_db_models::core::{props, Result};
use graph_db_models::engines::{make_engine, EngineKind};

const PEOPLE: [(&str, i64); 4] = [("ana", 30), ("bob", 45), ("cleo", 27), ("dan", 19)];
const KNOWS: [(&str, &str); 4] = [
    ("ana", "bob"),
    ("bob", "cleo"),
    ("ana", "dan"),
    ("dan", "cleo"),
];

fn main() -> Result<()> {
    let base = std::env::temp_dir().join(format!("gdm-langs-{}", std::process::id()));
    std::fs::create_dir_all(&base)?;

    // ---- Cypher (Neo4j, the paper's ◦: in development in 2012) ------
    std::fs::create_dir_all(base.join("neo4j"))?;
    let mut neo = make_engine(EngineKind::Neo4j, &base.join("neo4j"))?;
    for (name, age) in PEOPLE {
        neo.execute_query(&format!("CREATE (p:Person {{name: '{name}', age: {age}}})"))?;
    }
    let mut ids = std::collections::HashMap::new();
    for (name, _) in PEOPLE {
        let rs = neo.execute_query(&format!("MATCH (p:Person {{name: '{name}'}}) RETURN p"))?;
        ids.insert(name, rs.rows[0][0].as_int().expect("node id"));
    }
    for (a, b) in KNOWS {
        neo.create_edge(
            graph_db_models::core::NodeId(ids[a] as u64),
            graph_db_models::core::NodeId(ids[b] as u64),
            Some("knows"),
            props! {},
        )?;
    }
    let cypher = "MATCH (a:Person {name: 'ana'})-[:knows*1..2]->(b:Person) \
                  WHERE b.age > 25 RETURN b.name ORDER BY b.name";
    println!(
        "— Cypher —\n{cypher}\n{}",
        neo.execute_query(cypher)?.to_text()
    );

    // ---- GQL (Sones' SQL dialect) ------------------------------------
    std::fs::create_dir_all(base.join("sones"))?;
    let mut sones = make_engine(EngineKind::Sones, &base.join("sones"))?;
    sones.execute_ddl("CREATE VERTEX TYPE Person ATTRIBUTES (String name, Int age)")?;
    sones.execute_ddl("CREATE EDGE TYPE knows FROM Person TO Person")?;
    for (name, age) in PEOPLE {
        sones.execute_dml(&format!(
            "INSERT INTO Person VALUES (name = '{name}', age = {age})"
        ))?;
    }
    for (a, b) in KNOWS {
        sones.execute_dml(&format!(
            "INSERT EDGE knows FROM Person (name = '{a}') TO Person (name = '{b}')"
        ))?;
    }
    // GQL has no path quantifier — the single-type FROM..SELECT form
    // answers the filter; multi-hop needs the API (the paper's point
    // about expressiveness differences between the dialects).
    let gql = "FROM Person p SELECT p.name WHERE p.age > 25 ORDER BY p.name";
    println!(
        "— GQL (filter only; paths need the API) —\n{gql}\n{}",
        sones.execute_query(gql)?.to_text()
    );

    // ---- SPARQL + Datalog (AllegroGraph) ------------------------------
    std::fs::create_dir_all(base.join("allegro"))?;
    let mut ag = make_engine(EngineKind::Allegro, &base.join("allegro"))?;
    for (name, age) in PEOPLE {
        ag.execute_dml(&format!("ADD <{name}> <age> '{age}'"))?;
    }
    for (a, b) in KNOWS {
        ag.execute_dml(&format!("ADD <{a}> <knows> <{b}>"))?;
    }
    let sparql = "SELECT DISTINCT ?b WHERE { <ana> <knows> ?m . ?m <knows> ?b . ?b <age> ?a . FILTER(?a > 25) }";
    println!(
        "— SPARQL (exactly two hops; 1..2 needs a union) —\n{sparql}\n{}",
        ag.execute_query(sparql)?.to_text()
    );

    let rules = "
        reach(X, Y) :- knows(X, Y).
        reach(X, Z) :- knows(X, Y), reach(Y, Z).
    ";
    let rows = ag.reason(rules, "reach(ana, X)")?;
    println!(
        "— Datalog (reasoning; unbounded reach) —\nreach(ana, X) = {:?}\n",
        rows.iter().map(|r| r[0].as_str()).collect::<Vec<_>>()
    );

    // ---- GSQL (G-Store's path dialect: ids, not attributes) ----------
    std::fs::create_dir_all(base.join("gstore"))?;
    let mut gs = make_engine(EngineKind::GStore, &base.join("gstore"))?;
    for _ in 0..PEOPLE.len() {
        gs.execute_ddl("CREATE NODE 'person'")?;
    }
    let idx = |n: &str| PEOPLE.iter().position(|(p, _)| *p == n).expect("known");
    for (a, b) in KNOWS {
        gs.execute_ddl(&format!("CREATE EDGE {} {}", idx(a), idx(b)))?;
    }
    let gsql = "SELECT REACHABLE FROM 0";
    println!(
        "— GSQL (vertex-labeled model: reachability over ids, no attribute filter) —\n{gsql}\n{}",
        gs.execute_query(gsql)?.to_text()
    );

    println!(
        "five surfaces, one logical question — the paper: \"the selection is hardly\n\
         determined by the programmer skills or by application requirements.\""
    );
    Ok(())
}
