//! Property tests for the storage substrates: the disk B-tree is
//! differentially tested against the in-memory oracle under random
//! operation sequences, with structural invariants checked after every
//! batch, and the undo-log transaction layer must restore any state.

use graph_db_models::storage::{BufferPool, DiskBTree, KvStore, MemKv, UndoKv};
use proptest::prelude::*;

/// A random KV operation.
#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
    Scan(Vec<u8>, Option<Vec<u8>>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small keyspace so collisions (overwrites, real deletes) happen.
    prop::collection::vec(prop::num::u8::ANY, 1..12)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            key_strategy(),
            prop::collection::vec(prop::num::u8::ANY, 0..64)
        )
            .prop_map(|(k, v)| Op::Put(k, v)),
        key_strategy().prop_map(Op::Delete),
        key_strategy().prop_map(Op::Get),
        (key_strategy(), prop::option::of(key_strategy())).prop_map(|(a, b)| Op::Scan(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disk_btree_matches_memkv(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut tree = DiskBTree::new(BufferPool::memory(8)).expect("tree");
        let mut oracle = MemKv::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    prop_assert_eq!(tree.put(k, v).expect("put"), oracle.put(k, v).expect("put"));
                }
                Op::Delete(k) => {
                    prop_assert_eq!(tree.delete(k).expect("del"), oracle.delete(k).expect("del"));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(k).expect("get"), oracle.get(k).expect("get"));
                }
                Op::Scan(start, end) => {
                    prop_assert_eq!(
                        tree.scan_range(start, end.as_deref()).expect("scan"),
                        oracle.scan_range(start, end.as_deref()).expect("scan")
                    );
                }
            }
        }
        prop_assert_eq!(tree.len().expect("len"), oracle.len().expect("len"));
        tree.check_invariants().expect("invariants hold");
    }

    #[test]
    fn undo_log_restores_any_state(
        base in prop::collection::vec((key_strategy(), key_strategy()), 0..40),
        txn in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut kv = UndoKv::new(MemKv::new());
        for (k, v) in &base {
            kv.put(k, v).expect("seed");
        }
        let before = kv.scan_range(b"", None).expect("snapshot");
        kv.begin().expect("begin");
        for op in &txn {
            match op {
                Op::Put(k, v) => { kv.put(k, v).expect("put"); }
                Op::Delete(k) => { kv.delete(k).expect("delete"); }
                _ => {}
            }
        }
        kv.rollback().expect("rollback");
        let after = kv.scan_range(b"", None).expect("snapshot");
        prop_assert_eq!(before, after);
    }

    #[test]
    fn heavy_delete_keeps_tree_valid(keys in prop::collection::vec(key_strategy(), 1..300)) {
        let mut tree = DiskBTree::new(BufferPool::memory(8)).expect("tree");
        for k in &keys {
            tree.put(k, b"payload-of-some-size-to-force-splits").expect("put");
        }
        tree.check_invariants().expect("after inserts");
        // Delete every other distinct key.
        let mut distinct: Vec<&Vec<u8>> = keys.iter().collect();
        distinct.sort();
        distinct.dedup();
        for k in distinct.iter().step_by(2) {
            tree.delete(k).expect("delete");
        }
        tree.check_invariants().expect("after deletes");
        // The survivors must all be present.
        for (i, k) in distinct.iter().enumerate() {
            let got = tree.get(k).expect("get");
            prop_assert_eq!(got.is_some(), i % 2 == 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitmap_matches_btreeset_oracle(
        ops in prop::collection::vec((0u8..4, 0u64..300), 1..300)
    ) {
        use graph_db_models::storage::Bitmap;
        use std::collections::BTreeSet;
        let mut bm = Bitmap::new();
        let mut oracle: BTreeSet<u64> = BTreeSet::new();
        for (op, id) in ops {
            match op {
                0 | 1 => {
                    prop_assert_eq!(bm.insert(id), oracle.insert(id));
                }
                2 => {
                    prop_assert_eq!(bm.remove(id), oracle.remove(&id));
                }
                _ => {
                    prop_assert_eq!(bm.contains(id), oracle.contains(&id));
                }
            }
        }
        prop_assert_eq!(bm.len(), oracle.len());
        let from_bm: Vec<u64> = bm.iter().collect();
        let from_oracle: Vec<u64> = oracle.iter().copied().collect();
        prop_assert_eq!(from_bm, from_oracle);
    }

    #[test]
    fn bitmap_set_algebra_matches_btreeset(
        a in prop::collection::btree_set(0u64..200, 0..80),
        b in prop::collection::btree_set(0u64..200, 0..80),
    ) {
        use graph_db_models::storage::Bitmap;
        let bma: Bitmap = a.iter().copied().collect();
        let bmb: Bitmap = b.iter().copied().collect();
        let union: Vec<u64> = bma.union(&bmb).iter().collect();
        let inter: Vec<u64> = bma.intersection(&bmb).iter().collect();
        let diff: Vec<u64> = bma.difference(&bmb).iter().collect();
        prop_assert_eq!(union, a.union(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(inter, a.intersection(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(diff, a.difference(&b).copied().collect::<Vec<_>>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pager_round_trips_through_flush_and_reopen(
        writes in prop::collection::vec((0usize..12, prop::num::u8::ANY), 1..60)
    ) {
        use graph_db_models::storage::{BufferPool, PageId, PAGE_SIZE};
        let dir = std::env::temp_dir().join(format!(
            "gdm-pager-prop-{}-{:x}",
            std::process::id(),
            writes.len() * 31 + writes.first().map(|w| w.0).unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir).expect("dir");
        let path = dir.join("pool.pages");
        let _ = std::fs::remove_file(&path);
        let mut expected: std::collections::HashMap<u32, u8> = std::collections::HashMap::new();
        {
            // Tiny pool: every write evicts.
            let mut pool = BufferPool::file(&path, 2).expect("pool");
            let pages: Vec<PageId> =
                (0..12).map(|_| pool.allocate_page().expect("alloc")).collect();
            for (slot, byte) in &writes {
                let pid = pages[*slot];
                pool.update_page(pid, |data| {
                    data[0] = *byte;
                    data[PAGE_SIZE - 1] = byte.wrapping_add(1);
                })
                .expect("write");
                expected.insert(pid.raw(), *byte);
            }
            pool.flush().expect("flush");
        }
        {
            let mut pool = BufferPool::file(&path, 2).expect("reopen");
            for (raw, byte) in &expected {
                let (first, last) = pool
                    .with_page(PageId(*raw), |d| (d[0], d[PAGE_SIZE - 1]))
                    .expect("read");
                prop_assert_eq!(first, *byte);
                prop_assert_eq!(last, byte.wrapping_add(1));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn btree_survives_reopen_with_mixed_history() {
    let dir = std::env::temp_dir().join(format!("gdm-it-btree-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.db");
    {
        let mut tree = DiskBTree::file(&path, 8).unwrap();
        for i in 0..500u32 {
            tree.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        for i in (0..500).step_by(3) {
            tree.delete(format!("k{i:05}").as_bytes()).unwrap();
        }
        tree.flush().unwrap();
    }
    {
        let mut tree = DiskBTree::file(&path, 8).unwrap();
        tree.check_invariants().unwrap();
        for i in 0..500u32 {
            let present = tree.get(format!("k{i:05}").as_bytes()).unwrap().is_some();
            assert_eq!(present, i % 3 != 0, "i={i}");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
