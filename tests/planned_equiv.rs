//! Property suite for the cost-based pattern planner.
//!
//! Two invariants hold the planner together:
//!
//! 1. **Planned ≡ unplanned.** On any graph and any pattern/query, the
//!    planned matcher (index-seeded domains, selectivity ordering) and
//!    the shared-algebra planner (predicate pushdown) must produce the
//!    same bindings/rows as the unplanned reference path — same sets,
//!    any order (result rows are compared after the deterministic
//!    sort both paths share).
//! 2. **Maintained ≡ rebuilt.** `PropertyGraph`'s auto-maintained
//!    per-key value indexes, after an arbitrary insert/remove/update
//!    sequence, must answer exactly like an index rebuilt from scratch
//!    over the surviving nodes — and both must agree with a raw scan.

use graph_db_models::algo::pattern::{canonical, match_pattern, Pattern, PatternNode};
use graph_db_models::algo::planned::{auto_domains, match_pattern_auto, match_pattern_planned};
use graph_db_models::algo::{
    match_pattern_vectorized, match_pattern_vectorized_auto,
    match_pattern_vectorized_auto_governed, FrozenGraph,
};
use graph_db_models::core::{props, AttributedView, GraphView, NodeId, Value};
use graph_db_models::graphs::PropertyGraph;
use graph_db_models::query::eval::{evaluate_select, evaluate_select_unplanned};
use graph_db_models::query::plan::{evaluate_select_planned, ExplainPlan};
use graph_db_models::query::{BinOp, Expr, Projection, SelectQuery};
use graph_db_models::storage::{BTreeIndex, ValueIndex};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["person", "place", "thing"];
const COLORS: [&str; 2] = ["red", "blue"];
const EDGE_LABELS: [&str; 3] = ["a", "b", "c"];

type NodeSpec = (u8, i64, bool, u8);
type EdgeSpec = (usize, usize, u8, i64, bool);

/// A random attributed graph: every node gets a label, an Int-or-Float
/// `k` (both families, so loose equality matters), and a `c` color;
/// every edge gets an Int-or-Float `w`, so range predicates over edge
/// properties have something to bite on.
fn graph_strategy() -> impl Strategy<Value = (PropertyGraph, Vec<NodeId>)> {
    (
        prop::collection::vec((0u8..3, 0i64..4, prop::bool::ANY, 0u8..2), 2..12),
        prop::collection::vec(
            (0usize..12, 0usize..12, 0u8..3, 0i64..5, prop::bool::ANY),
            0..24,
        ),
    )
        .prop_map(|(specs, edges): (Vec<NodeSpec>, Vec<EdgeSpec>)| {
            let mut g = PropertyGraph::new();
            let nodes: Vec<NodeId> = specs
                .iter()
                .map(|&(l, k, float, c)| {
                    let k = if float {
                        Value::Float(k as f64)
                    } else {
                        Value::Int(k)
                    };
                    g.add_node(
                        LABELS[l as usize],
                        props! { "k" => k, "c" => COLORS[c as usize] },
                    )
                })
                .collect();
            for (a, b, l, w, float) in edges {
                let n = nodes.len();
                let w = if float {
                    Value::Float(w as f64)
                } else {
                    Value::Int(w)
                };
                g.add_edge(
                    nodes[a % n],
                    nodes[b % n],
                    EDGE_LABELS[l as usize],
                    props! { "w" => w },
                )
                .expect("endpoints exist");
            }
            (g, nodes)
        })
}

type VarSpec = (u8, u8);
type PatternEdgeSpec = ((usize, usize, u8, bool), (u8, i64, i64));

/// Builds a pattern from raw spec data: per-variable optional label
/// (including one no node carries) and optional property constraint
/// (Int, loose-equal Float, or string), plus arbitrary edges —
/// self-loops and parallel constraints included. Edges optionally
/// carry a range predicate over `w` (half-open, closed, empty, and
/// cross-family Int/Float bounds all reachable).
fn build_pattern(vars: &[VarSpec], edges: &[PatternEdgeSpec]) -> Pattern {
    let mut p = Pattern::new();
    for (i, &(l, c)) in vars.iter().enumerate() {
        let mut pn = PatternNode::var(format!("v{i}"));
        pn = match l {
            0 | 1 => pn,
            2 => pn.with_label("person"),
            3 => pn.with_label("place"),
            _ => pn.with_label("zzz"),
        };
        pn = match c {
            0..=2 => pn,
            3 => pn.with_prop("k", 2),
            4 => pn.with_prop("k", 2.0),
            _ => pn.with_prop("c", "red"),
        };
        p.node(pn);
    }
    for &((f, t, l, undirected), (range, lo, hi)) in edges {
        let (f, t) = (f % vars.len(), t % vars.len());
        let label = match l {
            0 => None,
            1 => Some("a"),
            2 => Some("b"),
            _ => Some("zz"),
        };
        if undirected {
            p.edge_undirected(f, t, label).expect("vars exist");
        } else {
            p.edge(f, t, label).expect("vars exist");
        }
        match range {
            0..=2 => {} // no range predicate
            3 => p
                .edge_range("w", Some(Value::Int(lo)), None)
                .expect("edge exists"),
            4 => p
                .edge_range("w", None, Some(Value::Float(hi as f64)))
                .expect("edge exists"),
            _ => p
                .edge_range("w", Some(Value::Int(lo)), Some(Value::Int(hi)))
                .expect("edge exists"),
        }
    }
    p
}

fn pattern_strategy() -> impl Strategy<Value = (Vec<VarSpec>, Vec<PatternEdgeSpec>)> {
    (
        prop::collection::vec((0u8..6, 0u8..6), 1..4),
        prop::collection::vec(
            (
                (0usize..4, 0usize..4, 0u8..4, prop::bool::ANY),
                (0u8..6, 0i64..5, 0i64..5),
            ),
            0..4,
        ),
    )
}

proptest! {
    /// Invariant 1 at the matcher level: the auto-planned matcher (on
    /// the live graph and on its CSR snapshot), an explicit-domain
    /// run, and the vectorized batch executor (auto, explicit-domain,
    /// and governed-with-no-limits) all reproduce the unplanned
    /// binding set.
    #[test]
    fn planned_matcher_equals_unplanned(
        (g, _) in graph_strategy(),
        (vars, edges) in pattern_strategy(),
    ) {
        let p = build_pattern(&vars, &edges);
        let reference = canonical(&match_pattern(&g, &p));

        let auto = match_pattern_auto(&g, &p);
        prop_assert_eq!(canonical(&auto.to_bindings()), reference.clone());

        let domains = auto_domains(&g, &p);
        let planned = match_pattern_planned(&g, &p, &domains);
        prop_assert_eq!(canonical(&planned.to_bindings()), reference.clone());

        let fz = FrozenGraph::freeze_attributed(&g);
        let frozen = match_pattern_auto(&fz, &p);
        prop_assert_eq!(canonical(&frozen.to_bindings()), reference.clone());

        // Vectorized ≡ planned ≡ unplanned: the batch executor run
        // three ways — auto-seeded, with explicitly supplied domains
        // (seeded on the *snapshot*, so dense translation is covered),
        // and under an unlimited guard (per-batch governor ticks must
        // not change the result).
        let vec_auto = match_pattern_vectorized_auto(&fz, &p);
        prop_assert_eq!(canonical(&vec_auto.to_bindings()), reference.clone());

        let fz_domains = auto_domains(&fz, &p);
        let vec_explicit = match_pattern_vectorized(&fz, &p, &fz_domains);
        prop_assert_eq!(canonical(&vec_explicit.to_bindings()), reference.clone());

        let guard = graph_db_models::govern::ExecutionGuard::unlimited();
        let vec_governed = match_pattern_vectorized_auto_governed(&fz, &p, &guard)
            .expect("unlimited guard never interrupts");
        prop_assert_eq!(canonical(&vec_governed.to_bindings()), reference);

        // Morsel-driven parallel executor ≡ vectorized, and not just
        // set-equal: the tables must be *byte-identical* (same rows in
        // the same order). The forced entry point skips the
        // minimum-root-count threshold so these tiny graphs really do
        // split into per-worker morsels, even on a single-core machine.
        let par_forced =
            graph_db_models::algo::par_vectorized::match_pattern_par_vectorized_forced(
                &fz, &p, &fz_domains, 3, None,
            )
            .expect("ungoverned run never interrupts");
        prop_assert_eq!(&par_forced, &vec_explicit);

        // The public auto-seeded entry point (what the facade and the
        // planner call) agrees with its sequential counterpart too.
        let par_auto = graph_db_models::algo::match_pattern_par_vectorized(&fz, &p, 2);
        prop_assert_eq!(&par_auto, &vec_auto);
    }
}

type ConjunctSpec = (usize, u8, u8, i64);

/// Builds a WHERE conjunction over the pattern variables: a mix of
/// pushable equalities (stored props, the label pseudo-property) and
/// residual predicates (comparisons, NULL equality).
fn build_filter(vars: usize, conjuncts: &[ConjunctSpec]) -> Option<Expr> {
    conjuncts
        .iter()
        .map(|&(v, key, op, lit)| {
            let var = format!("v{}", v % vars);
            let (key, lit) = match key {
                0 => ("k", Value::Int(lit)),
                1 => ("k", Value::Float(lit as f64)),
                2 => (
                    "c",
                    Value::Str(COLORS[lit.unsigned_abs() as usize % 2].to_owned()),
                ),
                3 => (
                    "label",
                    Value::Str(LABELS[lit.unsigned_abs() as usize % 3].to_owned()),
                ),
                _ => ("k", Value::Null),
            };
            let prop = Expr::Prop(var, key.to_owned());
            match op {
                0 | 1 => Expr::bin(BinOp::Eq, prop, Expr::Lit(lit)),
                2 => Expr::bin(BinOp::Eq, Expr::Lit(lit), prop),
                // The full range-pushdown surface: every comparison
                // operator, both operand orders (a reversed literal
                // flips the effective bound direction).
                3 => Expr::bin(BinOp::Gt, prop, Expr::Lit(lit)),
                4 => Expr::bin(BinOp::Lt, prop, Expr::Lit(lit)),
                5 => Expr::bin(BinOp::Ge, prop, Expr::Lit(lit)),
                6 => Expr::bin(BinOp::Le, Expr::Lit(lit), prop),
                _ => Expr::bin(BinOp::Ne, prop, Expr::Lit(lit)),
            }
        })
        .reduce(|a, b| Expr::bin(BinOp::And, a, b))
}

proptest! {
    /// Invariant 1 at the query level: pushdown + planned matching
    /// returns byte-identical rows to the unplanned pipeline, and the
    /// recorded plan round-trips through its text form.
    #[test]
    fn planned_query_equals_unplanned(
        (g, _) in graph_strategy(),
        (vars, edges) in pattern_strategy(),
        conjuncts in prop::collection::vec((0usize..4, 0u8..5, 0u8..8, 0i64..4), 0..4),
    ) {
        let mut q = SelectQuery {
            pattern: build_pattern(&vars, &edges),
            ..SelectQuery::default()
        };
        for i in 0..vars.len() {
            q.projections.push(Projection::Expr {
                name: format!("v{i}"),
                expr: Expr::Var(format!("v{i}")),
            });
        }
        q.filter = build_filter(vars.len(), &conjuncts);

        let reference = evaluate_select_unplanned(&g, &q).expect("reference path evaluates");
        let (rows, explain) = evaluate_select_planned(&g, &q).expect("planned path evaluates");
        prop_assert_eq!(&rows, &reference);
        // The facade entry point is the planned path.
        prop_assert_eq!(&evaluate_select(&g, &q).expect("facade evaluates"), &reference);
        prop_assert!(!explain.vectorized, "live graphs have no batch backend");
        let parsed = ExplainPlan::parse(&explain.render()).expect("explain round-trips");
        prop_assert_eq!(parsed, explain);

        // On the CSR snapshot the planner picks the vectorized backend
        // — and the rows must not change.
        let fz = FrozenGraph::freeze_attributed(&g);
        let (fz_rows, fz_explain) =
            evaluate_select_planned(&fz, &q).expect("frozen planned path evaluates");
        prop_assert_eq!(&fz_rows, &reference);
        prop_assert!(fz_explain.vectorized, "snapshot queries run batch-at-a-time");
    }
}

/// Deterministic range-pushdown checks the property suite cannot pin
/// down: the plan must *say* it seeded from the ordered index, strict
/// bounds must stay exact despite the index's inclusive ranges, and a
/// between-shaped conjunct pair must intersect to one domain.
#[test]
fn range_predicates_seed_ordered_indexes() {
    let mut g = PropertyGraph::new();
    for (name, age) in [("ada", 36), ("bob", 25), ("cleo", 41), ("dan", 36)] {
        g.add_node("person", props! { "name" => name, "age" => age });
    }
    let range_query = |filter: Expr| {
        let mut q = SelectQuery::default();
        q.pattern.node(PatternNode::var("p"));
        q.projections.push(Projection::Expr {
            name: "name".into(),
            expr: Expr::Prop("p".into(), "name".into()),
        });
        q.filter = Some(filter);
        q
    };
    let age = || Expr::Prop("p".into(), "age".into());

    // Strict bound: age > 36 must exclude the boundary value even
    // though the index range is inclusive.
    let q = range_query(Expr::bin(BinOp::Gt, age(), Expr::Lit(Value::from(36))));
    let (rows, explain) = evaluate_select_planned(&g, &q).expect("planned path evaluates");
    assert_eq!(rows, evaluate_select_unplanned(&g, &q).unwrap());
    assert_eq!(rows.len(), 1, "only cleo is over 36");
    assert_eq!(rows.rows[0][0], Value::from("cleo"));
    let step = &explain.steps[0];
    assert_eq!(step.ranges, 1, "one range predicate seeded");
    assert_eq!(
        step.access,
        graph_db_models::query::plan::Access::Index,
        "range seeding upgrades the scan to index access"
    );
    assert_eq!(explain.residual, 1, "the predicate stays in the filter");
    let parsed = ExplainPlan::parse(&explain.render()).expect("ranges field round-trips");
    assert_eq!(parsed, explain);

    // Between-shaped pair: 30 <= age AND age < 40 intersects both
    // index probes (ranges=2) and still matches the reference rows.
    let q = range_query(Expr::bin(
        BinOp::And,
        Expr::bin(BinOp::Le, Expr::Lit(Value::from(30)), age()),
        Expr::bin(BinOp::Lt, age(), Expr::Lit(Value::from(40))),
    ));
    let (rows, explain) = evaluate_select_planned(&g, &q).expect("planned path evaluates");
    assert_eq!(rows, evaluate_select_unplanned(&g, &q).unwrap());
    assert_eq!(rows.len(), 2, "ada and dan are in [30, 40)");
    assert_eq!(explain.steps[0].ranges, 2, "both bounds seeded");

    // A never-indexed key cannot seed; the query still answers by scan.
    let q = range_query(Expr::bin(
        BinOp::Lt,
        Expr::Prop("p".into(), "salary".into()),
        Expr::Lit(Value::from(10)),
    ));
    let (rows, explain) = evaluate_select_planned(&g, &q).expect("planned path evaluates");
    assert_eq!(rows, evaluate_select_unplanned(&g, &q).unwrap());
    assert!(rows.is_empty(), "nobody has a salary property");
    assert_eq!(explain.steps[0].ranges, 0, "no ordered index covers salary");
    assert_eq!(
        explain.steps[0].access,
        graph_db_models::query::plan::Access::Scan
    );
}

fn probe_values() -> Vec<Value> {
    let mut probes: Vec<Value> = (0..5)
        .flat_map(|i| [Value::Int(i), Value::Float(i as f64)])
        .collect();
    probes.push(Value::Str("red".to_owned()));
    probes.push(Value::Str("blue".to_owned()));
    probes
}

proptest! {
    /// Invariant 2: after a random insert/remove/update sequence, the
    /// auto-maintained indexes answer exactly like indexes rebuilt
    /// from scratch over the surviving nodes, and like a raw scan.
    #[test]
    fn maintained_indexes_equal_rebuilt(
        ops in prop::collection::vec((0u8..4, 0usize..16, 0u8..2, 0i64..5, prop::bool::ANY), 1..48),
    ) {
        let mut g = PropertyGraph::new();
        let mut alive: Vec<NodeId> = Vec::new();
        for (op, sel, key, val, float) in ops {
            let value = if float {
                Value::Float(val as f64)
            } else {
                Value::Int(val)
            };
            match op {
                // Insert (seeded with an indexed property).
                0 | 1 => {
                    let label = LABELS[sel % LABELS.len()];
                    alive.push(g.add_node(label, props! { "k" => value }));
                }
                // Remove.
                2 => {
                    if !alive.is_empty() {
                        let n = alive.remove(sel % alive.len());
                        g.remove_node(n).expect("node is alive");
                    }
                }
                // Update (sometimes a fresh key, sometimes overwriting).
                _ => {
                    if !alive.is_empty() {
                        let n = alive[sel % alive.len()];
                        let key = ["k", "c"][key as usize];
                        g.set_node_property(n, key, value).expect("node is alive");
                    }
                }
            }
        }

        let keys: Vec<String> = g
            .indexed_property_keys()
            .iter()
            .map(|k| (*k).to_owned())
            .collect();
        for key in &keys {
            // Rebuild the index from scratch over the surviving nodes.
            let mut rebuilt = BTreeIndex::new();
            for &n in &alive {
                if let Some(v) = g.node_property(n, key) {
                    rebuilt.insert(&v, n.raw());
                }
            }
            for probe in probe_values() {
                let mut maintained: Vec<u64> =
                    g.nodes_with_property(key, &probe).iter().map(|n| n.raw()).collect();
                maintained.sort_unstable();
                let mut fresh = rebuilt.lookup_loose(&probe);
                fresh.sort_unstable();
                let mut scan: Vec<u64> = alive
                    .iter()
                    .filter(|&&n| {
                        g.node_property(n, key).is_some_and(|got| got.loose_eq(&probe))
                    })
                    .map(|n| n.raw())
                    .collect();
                scan.sort_unstable();
                prop_assert_eq!(&maintained, &fresh, "key {} probe {:?}", key, probe);
                prop_assert_eq!(&fresh, &scan, "key {} probe {:?}", key, probe);
            }
        }
        // A key never written is never indexed — and never matches.
        prop_assert!(g.nodes_with_property("never", &Value::Int(1)).is_empty());

        // The index-backed candidate sets agree with the trait's
        // full-scan contract after all that churn, too.
        for label in LABELS.iter().map(Some).chain([None]) {
            for probe in [Value::Int(3), Value::Float(3.0)] {
                let constraint = [("k".to_owned(), probe)];
                let mut fast: Vec<u64> = g
                    .candidates(label.copied(), &constraint)
                    .iter()
                    .map(|n| n.raw())
                    .collect();
                fast.sort_unstable();
                let mut slow: Vec<u64> = alive
                    .iter()
                    .filter(|&&n| {
                        let label_ok = match label {
                            None => true,
                            Some(want) => g
                                .node_label(n)
                                .and_then(|s| g.label_text(s))
                                .is_some_and(|t| t == *want),
                        };
                        label_ok
                            && constraint.iter().all(|(k, v)| {
                                g.node_property(n, k).is_some_and(|got| got.loose_eq(v))
                            })
                    })
                    .map(|n| n.raw())
                    .collect();
                slow.sort_unstable();
                prop_assert_eq!(fast, slow);
            }
        }
    }
}
