//! Property test for the SPARQL evaluator: its index-driven
//! triple-pattern joins must agree with a naive nested-loop oracle on
//! random triple stores and random basic graph patterns.

use graph_db_models::graphs::rdf::{RdfGraph, Term};
use graph_db_models::query::sparql;
use proptest::prelude::*;
use std::collections::BTreeSet;

const RESOURCES: [&str; 5] = ["a", "b", "c", "d", "e"];
const PREDICATES: [&str; 3] = ["p", "q", "r"];

fn store_strategy() -> impl Strategy<Value = RdfGraph> {
    prop::collection::vec((0usize..5, 0usize..3, 0usize..5), 0..25).prop_map(|triples| {
        let mut g = RdfGraph::new();
        for (s, p, o) in triples {
            g.add(
                &Term::iri(RESOURCES[s]),
                &Term::iri(PREDICATES[p]),
                &Term::iri(RESOURCES[o]),
            )
            .expect("valid triple");
        }
        g
    })
}

/// A pattern position: 0..5 = constant resource, 5.. = variable index.
type Pos = usize;

fn pattern_strategy() -> impl Strategy<Value = Vec<(Pos, usize, Pos)>> {
    prop::collection::vec((0usize..8, 0usize..3, 0usize..8), 1..4)
}

fn pos_text(p: Pos) -> String {
    if p < 5 {
        format!("<{}>", RESOURCES[p])
    } else {
        format!("?v{}", p - 5)
    }
}

/// Naive oracle: try every assignment of resources to the variables
/// appearing in the pattern and keep those satisfied by the store.
fn oracle(g: &RdfGraph, patterns: &[(Pos, usize, Pos)]) -> BTreeSet<Vec<String>> {
    // Variables used, sorted by index (matches SELECT ?v0 ?v1 ?v2).
    let mut vars: Vec<usize> = patterns
        .iter()
        .flat_map(|&(s, _, o)| [s, o])
        .filter(|&p| p >= 5)
        .map(|p| p - 5)
        .collect();
    vars.sort_unstable();
    vars.dedup();
    let mut out = BTreeSet::new();
    let mut assignment = vec![0usize; vars.len()];
    loop {
        // Check every pattern under this assignment.
        let resolve = |p: Pos| -> &str {
            if p < 5 {
                RESOURCES[p]
            } else {
                let vi = vars.iter().position(|&v| v == p - 5).expect("known var");
                RESOURCES[assignment[vi]]
            }
        };
        let ok = patterns.iter().all(|&(s, p, o)| {
            g.contains(
                &Term::iri(resolve(s)),
                &Term::iri(PREDICATES[p]),
                &Term::iri(resolve(o)),
            )
        });
        if ok {
            out.insert(
                assignment
                    .iter()
                    .map(|&i| RESOURCES[i].to_owned())
                    .collect(),
            );
        }
        // Next assignment (odometer).
        let mut idx = 0;
        loop {
            if idx == assignment.len() {
                return out;
            }
            assignment[idx] += 1;
            if assignment[idx] < RESOURCES.len() {
                break;
            }
            assignment[idx] = 0;
            idx += 1;
        }
        if assignment.is_empty() {
            return out;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparql_joins_match_nested_loop_oracle(
        g in store_strategy(),
        patterns in pattern_strategy(),
    ) {
        // Build the query text: SELECT all used vars in index order.
        let mut vars: Vec<usize> = patterns
            .iter()
            .flat_map(|&(s, _, o)| [s, o])
            .filter(|&p| p >= 5)
            .map(|p| p - 5)
            .collect();
        vars.sort_unstable();
        vars.dedup();
        let body: Vec<String> = patterns
            .iter()
            .map(|&(s, p, o)| {
                format!("{} <{}> {}", pos_text(s), PREDICATES[p], pos_text(o))
            })
            .collect();
        let select = if vars.is_empty() {
            // All-constant pattern: count matches instead.
            let q = format!("SELECT (COUNT(*) AS ?n) WHERE {{ {} }}", body.join(" . "));
            let rs = sparql::query(&g, &q).expect("query runs");
            let expected = if oracle(&g, &patterns).is_empty() { 0 } else { 1 };
            prop_assert_eq!(
                rs.rows[0][0].as_int().expect("count"),
                expected,
                "{}", q
            );
            return Ok(());
        } else {
            vars.iter().map(|v| format!("?v{v}")).collect::<Vec<_>>().join(" ")
        };
        let q = format!(
            "SELECT DISTINCT {select} WHERE {{ {} }}",
            body.join(" . ")
        );
        let rs = sparql::query(&g, &q).expect("query runs");
        let got: BTreeSet<Vec<String>> = rs
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|v| v.as_str().expect("resource").to_owned())
                    .collect()
            })
            .collect();
        prop_assert_eq!(got, oracle(&g, &patterns), "{}", q);
    }
}
