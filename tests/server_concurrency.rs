//! The multi-tenant server under concurrency: correctness, fairness,
//! overload shedding, shutdown drain.
//!
//! Four guarantees, each its own test:
//!
//! 1. **Identity.** Queries answered over the wire from the server's
//!    snapshot return exactly the rows the in-process facade returns.
//! 2. **Fairness.** With a greedy tenant saturating its allowance, the
//!    greedy tenant gets structured `Interrupted` throttles while a
//!    light tenant keeps completing queries — its throughput within 2×
//!    of a solo baseline run, its results still exact.
//! 3. **Shedding.** Past the per-tenant in-flight cap or the global
//!    wait queue, requests get a structured `Overloaded` reply rather
//!    than queueing without bound.
//! 4. **Drain.** Shutdown finishes in-flight work, answers `Bye`, and
//!    joins every server thread — no hang, no abort.
//!
//! Timing discipline: this machine may have a single core, so the
//! fairness assertion is count-based over a fixed window (completed
//! queries), with the greedy client backing off on throttle exactly as
//! the protocol's structured replies tell it to.

use graph_db_models::bench::workload::{load_into_engine, social_graph, SocialParams};
use graph_db_models::core::Value;
use graph_db_models::engines::{make_engine, EngineKind, GraphEngine};
use graph_db_models::server::protocol::Response;
use graph_db_models::server::{serve, Client, ServerConfig, TenantConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A loaded engine on a deterministic ~150-person social graph.
fn engine_with_graph(tag: &str) -> Box<dyn GraphEngine> {
    let dir = std::env::temp_dir().join(format!("gdm-server-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut db = make_engine(EngineKind::Neo4j, &dir).expect("engine");
    let graph = social_graph(SocialParams {
        people: 150,
        communities: 5,
        intra_edges: 6,
        inter_edges: 2,
        seed: 7,
    });
    load_into_engine(db.as_mut(), &graph).expect("load");
    db
}

fn two_tenant_config() -> ServerConfig {
    let mut config = ServerConfig::default();
    config.tenants.push(TenantConfig::new("light", 3));
    config.tenants.push(TenantConfig::new("greedy", 1));
    config
}

/// Sorts rows for order-insensitive comparison.
fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

const QUERIES: &[&str] = &[
    "MATCH (p:person) WHERE p.community = 2 RETURN p.name",
    "MATCH (p:person) WHERE p.age >= 30 AND p.age < 40 RETURN p.name, p.age",
    "MATCH (a:person)-[:knows]->(b:person) WHERE a.community = 0 RETURN b.name",
    "MATCH (p:person) RETURN p.community",
];

#[test]
fn served_results_match_the_in_process_facade() {
    let mut db = engine_with_graph("identity");
    let handle = serve(
        db.serving_snapshot().expect("snapshot"),
        two_tenant_config(),
    )
    .expect("serve");

    let mut client = Client::connect(handle.addr()).expect("connect");
    match client.hello("light", None).expect("hello") {
        Response::Welcome(w) => assert_eq!(w.tenant, "light"),
        other => panic!("expected Welcome, got {other:?}"),
    }

    for (i, q) in QUERIES.iter().enumerate() {
        let local = db.execute_query(q).expect("in-process query");
        let local_rows = sorted(local.rows);
        match client.query(q).expect("served query") {
            Response::Rows(r) => {
                assert_eq!(r.columns, local.columns, "columns for {q}");
                assert_eq!(sorted(r.rows), local_rows, "rows for {q}");
                assert!(!r.cached_plan, "first run of query {i} cannot be cached");
            }
            other => panic!("expected Rows for {q}, got {other:?}"),
        }
        // Same text again: the shared plan cache must hit, same rows.
        match client.query(q).expect("served query, cached") {
            Response::Rows(r) => {
                assert!(r.cached_plan, "second run of query {i} must hit the cache");
                assert_eq!(sorted(r.rows), local_rows, "cached rows for {q}");
            }
            other => panic!("expected Rows for {q}, got {other:?}"),
        }
    }

    // Writes are refused: the server fronts an immutable snapshot.
    match client
        .query("CREATE (n:person {name: 'mallory'})")
        .expect("dml")
    {
        Response::Error(e) => assert!(e.message.contains("immutable snapshot")),
        other => panic!("expected Error for DML, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    assert!(stats.plan_cache.hits >= QUERIES.len() as u64);
    assert_eq!(stats.plan_cache.entries, QUERIES.len() as u64);

    client.goodbye().expect("goodbye");
    handle.shutdown();
}

#[test]
fn greedy_tenant_is_throttled_while_light_tenant_keeps_its_throughput() {
    let db = engine_with_graph("fairness");
    let snapshot = db.serving_snapshot().expect("snapshot");

    let mut config = two_tenant_config();
    config.slots = 3;
    config.queue = 4;
    config.refill_interval = Duration::from_millis(10);
    // Scale supply well below the greedy join's demand (~8k credits
    // per run, measured) while leaving the light index probe (1 credit
    // per run) far under its weighted share — so the greedy tenant
    // must throttle and the light tenant never does. Small burst caps
    // keep the greedy tenant's opening free-ride short.
    config.refill_credits = 200;
    for t in &mut config.tenants {
        t.burst_cap = 2_000;
    }

    let light_query = "MATCH (p:person) WHERE p.name = 'person42' RETURN p.age";
    let greedy_query =
        "MATCH (a:person)-[:knows]->(b:person)-[:knows]->(c:person) RETURN c.community";
    const WINDOW: Duration = Duration::from_millis(500);

    // Expected light rows, computed once from the same snapshot.
    let expected = {
        let handle = serve(
            db.serving_snapshot().expect("snapshot"),
            two_tenant_config(),
        )
        .expect("serve");
        let mut c = Client::connect(handle.addr()).expect("connect");
        c.hello("light", None).expect("hello");
        let rows = match c.query(light_query).expect("query") {
            Response::Rows(r) => sorted(r.rows),
            other => panic!("expected Rows, got {other:?}"),
        };
        c.goodbye().ok();
        handle.shutdown();
        rows
    };
    assert!(
        !expected.is_empty(),
        "the light query must select something"
    );

    // Runs light queries back-to-back for the window; returns
    // (completed count, per-query latencies).
    let run_light = |addr: std::net::SocketAddr| -> (u64, Vec<Duration>) {
        let mut c = Client::connect(addr).expect("connect");
        c.hello("light", None).expect("hello");
        let mut done = 0u64;
        let mut latencies = Vec::new();
        let start = Instant::now();
        while start.elapsed() < WINDOW {
            let t0 = Instant::now();
            match c.query(light_query).expect("light query") {
                Response::Rows(r) => {
                    assert_eq!(sorted(r.rows), expected, "light rows stay exact under load");
                    done += 1;
                    latencies.push(t0.elapsed());
                    // Pace the light tenant like an interactive client;
                    // an unpaced spin loop would outrun any finite
                    // allowance on a fast enough machine, making the
                    // "never throttled" guarantee machine-dependent.
                    std::thread::sleep(Duration::from_millis(1));
                }
                Response::Overloaded(_) => std::thread::sleep(Duration::from_millis(1)),
                other => panic!("light tenant must never be throttled, got {other:?}"),
            }
        }
        c.goodbye().ok();
        (done, latencies)
    };

    // Solo baseline.
    let handle = serve(snapshot.clone(), config.clone()).expect("serve");
    let (solo, _) = run_light(handle.addr());
    handle.shutdown();
    assert!(solo > 0, "baseline must complete at least one query");

    // Contended run: two greedy sessions saturate their allowance,
    // backing off per the structured throttle reply.
    let handle = serve(snapshot, config).expect("serve");
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let mut throttle_counts = Vec::new();
    let greedy_threads: Vec<_> = (0..2)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.hello("greedy", None).expect("hello");
                let mut throttled = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match c.query(greedy_query).expect("greedy query") {
                        Response::Interrupted(i) => {
                            assert_eq!(i.reason, "tenant allowance exhausted");
                            throttled += 1;
                            // A well-behaved client backs off until the
                            // next refill instead of spinning.
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Response::Rows(_) | Response::Overloaded(_) => {}
                        other => panic!("unexpected greedy reply {other:?}"),
                    }
                }
                c.goodbye().ok();
                throttled
            })
        })
        .collect();

    // Let the greedy tenant drain its banked burst before measuring.
    std::thread::sleep(Duration::from_millis(50));
    let (contended, latencies) = run_light(addr);
    stop.store(true, Ordering::Relaxed);
    for t in greedy_threads {
        throttle_counts.push(t.join().expect("greedy thread"));
    }

    let stats = {
        let mut c = Client::connect(addr).expect("connect");
        c.hello("light", None).expect("hello");
        let s = c.stats().expect("stats");
        c.goodbye().ok();
        s
    };
    handle.shutdown();

    // The greedy tenant hit the fair budget pool's ceiling...
    let total_throttles: u64 = throttle_counts.iter().sum();
    assert!(
        total_throttles > 0,
        "the greedy tenant must be throttled at least once"
    );
    let greedy_stats = stats
        .tenants
        .iter()
        .find(|t| t.name == "greedy")
        .expect("greedy stats");
    assert!(greedy_stats.throttled > 0, "throttles must show in STATS");

    // ...while the light tenant kept at least half its solo throughput.
    assert!(
        contended * 2 >= solo,
        "light tenant throughput collapsed under greedy load: solo={solo} contended={contended}"
    );

    // And its p95 latency stayed bounded (generous cap: this guards
    // against convoying, not scheduling jitter).
    let mut sorted_lat = latencies;
    sorted_lat.sort();
    let p95 = sorted_lat[(sorted_lat.len() * 95 / 100).min(sorted_lat.len() - 1)];
    assert!(
        p95 < Duration::from_millis(250),
        "light tenant p95 {p95:?} exceeds the convoy guard"
    );
}

#[test]
fn overload_is_shed_with_structured_replies() {
    let db = engine_with_graph("shed");
    // One tenant capped at one in-flight query, one global slot, no
    // queue: any concurrent second request must be shed.
    let mut config = ServerConfig {
        slots: 1,
        queue: 0,
        workers: 4,
        ..ServerConfig::default()
    };
    let mut tenant = TenantConfig::new("light", 1);
    tenant.max_in_flight = 1;
    config.tenants.push(tenant);
    let mut other = TenantConfig::new("greedy", 1);
    other.max_in_flight = 8;
    config.tenants.push(other);

    let handle = serve(db.serving_snapshot().expect("snapshot"), config).expect("serve");
    let addr = handle.addr();

    // Hold the single slot with a long-running query from "light".
    let holder = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.hello("light", None).expect("hello");
        // Heavy enough to stay in flight while the probes below run.
        let q = "MATCH (a:person)-[:knows]->(b:person)-[:knows]->(c:person)\
                 -[:knows]->(d:person) RETURN d.name";
        c.query(q).expect("holder query");
        c.goodbye().ok();
    });
    std::thread::sleep(Duration::from_millis(30));

    // Same tenant: shed by the in-flight cap.
    let mut c1 = Client::connect(addr).expect("connect");
    c1.hello("light", None).expect("hello");
    match c1.query("MATCH (p:person) RETURN p.name").expect("probe") {
        Response::Overloaded(o) => {
            assert_eq!(o.scope, "tenant");
            assert!(o.retry_after_ms > 0);
        }
        // The holder may already have finished on a fast machine; the
        // probe then simply succeeds. Shed behaviour for the global
        // queue is asserted deterministically below.
        Response::Rows(_) => {}
        other => panic!("expected Overloaded or Rows, got {other:?}"),
    }
    c1.goodbye().ok();
    holder.join().expect("holder");

    // Deterministic queue shed: saturate the slot from "greedy" (cap
    // 8) with a held permit, then probe. No timing dependence: the
    // admission state is inspected via STATS counters.
    let stats_before = {
        let mut c = Client::connect(addr).expect("connect");
        c.hello("light", None).expect("hello");
        let s = c.stats().expect("stats");
        c.goodbye().ok();
        s
    };
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let saturator = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.hello("greedy", None).expect("hello");
        while !stop2.load(Ordering::Relaxed) {
            let q = "MATCH (a:person)-[:knows]->(b:person)-[:knows]->(c:person)\
                     -[:knows]->(d:person) RETURN d.name";
            c.query(q).expect("saturator query");
        }
        c.goodbye().ok();
    });
    std::thread::sleep(Duration::from_millis(30));
    let mut c2 = Client::connect(addr).expect("connect");
    c2.hello("greedy", None).expect("hello");
    let mut saw_queue_shed = false;
    for _ in 0..50 {
        match c2.query("MATCH (p:person) RETURN p.name").expect("probe") {
            Response::Overloaded(o) if o.scope == "queue" => {
                saw_queue_shed = true;
                break;
            }
            _ => {}
        }
    }
    stop.store(true, Ordering::Relaxed);
    saturator.join().expect("saturator");
    c2.goodbye().ok();

    let stats_after = {
        let mut c = Client::connect(addr).expect("connect");
        c.hello("light", None).expect("hello");
        let s = c.stats().expect("stats");
        c.goodbye().ok();
        s
    };
    assert!(
        saw_queue_shed || stats_after.queue_shed > stats_before.queue_shed,
        "a saturated single-slot server must shed to the queue scope"
    );
    handle.shutdown();
}

#[test]
fn client_shutdown_request_drains_and_joins() {
    let db = engine_with_graph("drain");
    let handle = serve(
        db.serving_snapshot().expect("snapshot"),
        two_tenant_config(),
    )
    .expect("serve");
    let addr = handle.addr();

    // A second session has a request in flight when shutdown arrives;
    // it still completes (drain, not abort). The query goes out on its
    // own thread *before* the shutdown request below, so the session
    // is never idle-at-stop (idle sessions close during drain).
    let busy = std::thread::spawn(move || {
        let mut busy = Client::connect(addr).expect("connect");
        busy.hello("light", None).expect("hello");
        let reply = busy
            .query(
                "MATCH (a:person)-[:knows]->(b:person)-[:knows]->(c:person) \
                 RETURN c.name",
            )
            .expect("drained query");
        match reply {
            Response::Rows(r) => assert!(!r.rows.is_empty()),
            Response::Interrupted(_) => {} // governed limits may trip; still a reply
            other => panic!("expected a reply during drain, got {other:?}"),
        }
    });
    std::thread::sleep(Duration::from_millis(20));

    let mut c = Client::connect(addr).expect("connect");
    c.hello("greedy", None).expect("hello");
    match c.shutdown().expect("shutdown") {
        Response::Bye => {}
        other => panic!("expected Bye, got {other:?}"),
    }
    busy.join().expect("busy session");

    // join() must return: every thread exits. Guard with a watchdog so
    // a regression fails the test instead of hanging the suite.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.join();
        tx.send(()).ok();
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("server must drain and join within 10s");

    // And the port is actually closed.
    assert!(
        Client::connect(addr).is_err() || {
            // A TIME_WAIT race can let one last connect through; a
            // dead server then answers nothing.
            let mut c = Client::connect(addr).expect("connect");
            c.hello("light", None).is_err()
        },
        "the listener must be closed after shutdown"
    );
}
