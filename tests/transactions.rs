//! The paper's graph-database vs. graph-store split, executed.
//!
//! Section II admits a system as a *graph database* only when it
//! provides "most of the major components in database management
//! systems ... transaction engine ..." and classes AllegroGraph, DEX,
//! HyperGraphDB, InfiniteGraph, Neo4j, and Sones as databases, while
//! Filament, G-Store, and VertexDB are *graph stores*. These tests
//! probe exactly that line: the six databases support transactions
//! with full rollback; the three stores refuse.

use graph_db_models::core::{props, Value};
use graph_db_models::engines::{make_engine, EngineKind, GraphEngine};

fn dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gdm-txn-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

const DATABASES: [EngineKind; 6] = [
    EngineKind::Allegro,
    EngineKind::Dex,
    EngineKind::HyperGraphDb,
    EngineKind::InfiniteGraph,
    EngineKind::Neo4j,
    EngineKind::Sones,
];

const STORES: [EngineKind; 3] = [
    EngineKind::Filament,
    EngineKind::GStore,
    EngineKind::VertexDb,
];

/// Adaptive node/edge creation (labels where the model has them).
fn seed(e: &mut dyn GraphEngine) -> (graph_db_models::core::NodeId, graph_db_models::core::NodeId) {
    let node = |e: &mut dyn GraphEngine| match e.create_node(Some("t"), props! {}) {
        Ok(n) => n,
        Err(err) if err.is_unsupported() => e.create_node(None, props! {}).unwrap(),
        Err(err) => panic!("{err}"),
    };
    let a = node(e);
    let b = node(e);
    match e.create_edge(a, b, Some("r"), props! {}) {
        Ok(_) => {}
        Err(err) if err.is_unsupported() => {
            e.create_edge(a, b, None, props! {}).unwrap();
        }
        Err(err) => panic!("{err}"),
    }
    (a, b)
}

#[test]
fn the_papers_category_split_is_executable() {
    for kind in DATABASES {
        let mut e = make_engine(kind, &dir(&format!("db-{}", kind.label()))).unwrap();
        assert!(
            e.begin_transaction().is_ok(),
            "{} is a graph database and must have a transaction engine",
            kind.label()
        );
        e.rollback_transaction().unwrap();
    }
    for kind in STORES {
        let mut e = make_engine(kind, &dir(&format!("store-{}", kind.label()))).unwrap();
        assert!(
            e.begin_transaction().unwrap_err().is_unsupported(),
            "{} is a graph store and must refuse transactions",
            kind.label()
        );
    }
}

#[test]
fn rollback_restores_graph_state() {
    for kind in DATABASES {
        let mut e = make_engine(kind, &dir(&format!("rb-{}", kind.label()))).unwrap();
        let (a, b) = seed(e.as_mut());
        let nodes_before = e.node_count();
        let edges_before = e.edge_count();

        e.begin_transaction().unwrap();
        // A burst of mutations inside the transaction.
        let c = match e.create_node(Some("t"), props! {}) {
            Ok(n) => n,
            Err(err) if err.is_unsupported() => e.create_node(None, props! {}).unwrap(),
            Err(err) => panic!("{}: {err}", kind.label()),
        };
        e.create_edge(b, c, Some("r"), props! {})
            .unwrap_or_else(|err| panic!("{}: {err}", kind.label()));
        // The mutation is visible mid-transaction.
        assert_eq!(e.edge_count(), edges_before + 1, "{}", kind.label());
        let _ = e.delete_node(a);

        e.rollback_transaction().unwrap();
        assert_eq!(e.node_count(), nodes_before, "{} rollback", kind.label());
        assert_eq!(e.edge_count(), edges_before, "{} rollback", kind.label());
        assert!(e.adjacent(a, b).unwrap(), "{} edge restored", kind.label());
    }
}

#[test]
fn commit_keeps_changes() {
    for kind in DATABASES {
        let mut e = make_engine(kind, &dir(&format!("commit-{}", kind.label()))).unwrap();
        let (a, _b) = seed(e.as_mut());
        let before_edges = e.edge_count();
        e.begin_transaction().unwrap();
        let c = match e.create_node(Some("t"), props! {}) {
            Ok(n) => n,
            Err(err) if err.is_unsupported() => e.create_node(None, props! {}).unwrap(),
            Err(err) => panic!("{}: {err}", kind.label()),
        };
        e.create_edge(a, c, Some("r"), props! {})
            .unwrap_or_else(|err| panic!("{}: {err}", kind.label()));
        e.commit_transaction().unwrap();
        assert_eq!(e.edge_count(), before_edges + 1, "{}", kind.label());
        // Transaction protocol errors.
        assert!(e.commit_transaction().is_err(), "{}", kind.label());
        assert!(e.rollback_transaction().is_err(), "{}", kind.label());
        e.begin_transaction().unwrap();
        assert!(e.begin_transaction().is_err(), "{} nesting", kind.label());
    }
}

#[test]
fn rollback_restores_attributes_and_indexes() {
    // DEX: attribute changes inside a rolled-back transaction must not
    // survive in the graph or leak into the bitmap indexes.
    let mut dex = make_engine(EngineKind::Dex, &dir("dex-attr")).unwrap();
    let n = dex
        .create_node(Some("person"), props! { "city" => "scl" })
        .unwrap();
    dex.create_index("city").unwrap();
    dex.begin_transaction().unwrap();
    dex.set_node_attribute(n, "city", Value::from("muc"))
        .unwrap();
    dex.rollback_transaction().unwrap();
    assert_eq!(
        dex.node_attribute(n, "city").unwrap(),
        Some(Value::from("scl"))
    );
    assert_eq!(
        dex.lookup_by_property("city", &Value::from("scl")).unwrap(),
        vec![n]
    );
    assert!(dex
        .lookup_by_property("city", &Value::from("muc"))
        .unwrap()
        .is_empty());
}
