//! Integration tests for Table VI behaviour: engines that advertise a
//! constraint must actually *enforce* it on mutation, with clean
//! rollback, and refuse constraint kinds outside their profile.

use graph_db_models::algo::pattern::{Pattern, PatternNode};
use graph_db_models::core::{props, Value};
use graph_db_models::engines::{make_engine, EngineKind};
use graph_db_models::schema::{
    validate, Cardinality, Constraint, EdgeTypeDef, NodeTypeDef, PatternKind, PropertyType, Schema,
    ValueType,
};

fn dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gdm-constraints-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn person_schema() -> Schema {
    let mut s = Schema::new();
    s.add_node_type(
        NodeTypeDef::new("person").with(PropertyType::required("name", ValueType::Str)),
    )
    .unwrap();
    s.add_node_type(NodeTypeDef::new("company")).unwrap();
    s.add_edge_type(
        EdgeTypeDef::new("works_at")
            .between("person", "company")
            .cardinality(Cardinality::OneFromSource),
    )
    .unwrap();
    s
}

#[test]
fn dex_type_checking_rejects_and_rolls_back() {
    let mut dex = make_engine(EngineKind::Dex, &dir("dex")).unwrap();
    dex.install_constraint(Constraint::TypeChecking(person_schema()))
        .unwrap();
    let p = dex
        .create_node(Some("person"), props! { "name" => "ada" })
        .unwrap();
    let c = dex.create_node(Some("company"), props! {}).unwrap();
    dex.create_edge(p, c, Some("works_at"), props! {}).unwrap();
    let before = dex.node_count();
    // Undeclared label.
    assert!(dex.create_node(Some("ghost_type"), props! {}).is_err());
    // Missing required property.
    assert!(dex.create_node(Some("person"), props! {}).is_err());
    // Wrong property type.
    assert!(dex
        .create_node(Some("person"), props! { "name" => 42 })
        .is_err());
    // Wrong endpoint direction.
    assert!(dex.create_edge(c, p, Some("works_at"), props! {}).is_err());
    assert_eq!(dex.node_count(), before, "rejections rolled back");
    assert_eq!(dex.edge_count(), 1);
}

#[test]
fn installing_a_constraint_on_dirty_data_fails_upfront() {
    let mut dex = make_engine(EngineKind::Dex, &dir("dex-dirty")).unwrap();
    dex.create_node(Some("alien"), props! {}).unwrap();
    let err = dex
        .install_constraint(Constraint::TypeChecking(person_schema()))
        .unwrap_err();
    assert!(err.to_string().contains("alien"), "{err}");
}

#[test]
fn infinitegraph_identity_is_enforced_through_attribute_updates() {
    let mut ig = make_engine(EngineKind::InfiniteGraph, &dir("ig")).unwrap();
    ig.install_constraint(Constraint::Identity {
        type_name: "device".into(),
        property: "serial".into(),
    })
    .unwrap();
    let a = ig
        .create_node(Some("device"), props! { "serial" => 100 })
        .unwrap();
    let _b = ig
        .create_node(Some("device"), props! { "serial" => 200 })
        .unwrap();
    // Updating a's serial to collide with b's must fail and roll back.
    let err = ig
        .set_node_attribute(a, "serial", Value::from(200))
        .unwrap_err();
    assert!(err.to_string().contains("identity") || err.to_string().contains("share"));
    assert_eq!(
        ig.node_attribute(a, "serial").unwrap(),
        Some(Value::from(100))
    );
}

#[test]
fn sones_cardinality_via_gql_ddl() {
    let mut sones = make_engine(EngineKind::Sones, &dir("sones")).unwrap();
    sones
        .execute_ddl("CREATE VERTEX TYPE Person ATTRIBUTES (String name UNIQUE)")
        .unwrap();
    sones
        .execute_dml("INSERT INTO Person VALUES (name = 'ada')")
        .unwrap();
    // UNIQUE attribute = identity constraint through the DDL path.
    let err = sones
        .execute_dml("INSERT INTO Person VALUES (name = 'ada')")
        .unwrap_err();
    assert!(err.to_string().contains("identity") || err.to_string().contains("taken"));
}

#[test]
fn unsupported_constraints_refuse_uniformly() {
    // FD and pattern constraints: nobody in Table VI supports them.
    let pattern_constraint = || {
        let mut p = Pattern::new();
        p.node(PatternNode::var("x"));
        Constraint::GraphPattern {
            name: "probe".into(),
            pattern: p,
            kind: PatternKind::Required,
        }
    };
    for kind in EngineKind::all() {
        let mut e = make_engine(kind, &dir(&format!("fd-{}", kind.label()))).unwrap();
        assert!(
            e.install_constraint(Constraint::FunctionalDependency {
                type_name: "t".into(),
                determinant: "a".into(),
                dependent: "b".into(),
            })
            .unwrap_err()
            .is_unsupported(),
            "{}",
            kind.label()
        );
        assert!(
            e.install_constraint(pattern_constraint())
                .unwrap_err()
                .is_unsupported(),
            "{}",
            kind.label()
        );
    }
}

#[test]
fn validator_covers_all_six_kinds_on_one_graph() {
    // The standalone validator (usable outside any engine) detects one
    // violation of each Table VI kind on a deliberately broken graph.
    let mut g = graph_db_models::graphs::PropertyGraph::new();
    let p1 = g.add_node(
        "person",
        props! { "name" => "ada", "zip" => 1, "city" => "x" },
    );
    let p2 = g.add_node(
        "person",
        props! { "name" => "ada", "zip" => 1, "city" => "y" },
    );
    let alien = g.add_node("alien", props! {});
    let c = g.add_node("company", props! {});
    g.add_edge(p1, c, "works_at", props! {}).unwrap();
    g.add_edge(p1, c, "works_at", props! {}).unwrap(); // cardinality
    g.add_edge(alien, p2, "works_at", props! {}).unwrap(); // wrong endpoint type

    let mut forbidden = Pattern::new();
    let x = forbidden.node(PatternNode::var("x").with_label("alien"));
    let y = forbidden.node(PatternNode::var("y"));
    forbidden.edge(x, y, None).unwrap();

    let violations = validate(
        &g,
        &[
            Constraint::TypeChecking(person_schema()),
            Constraint::Identity {
                type_name: "person".into(),
                property: "name".into(),
            },
            Constraint::ReferentialIntegrity,
            Constraint::Cardinality(person_schema()),
            Constraint::FunctionalDependency {
                type_name: "person".into(),
                determinant: "zip".into(),
                dependent: "city".into(),
            },
            Constraint::GraphPattern {
                name: "no-alien-edges".into(),
                pattern: forbidden,
                kind: PatternKind::Forbidden,
            },
        ],
    );
    let text = violations
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("undeclared type"), "{text}");
    assert!(text.contains("share identity"), "{text}");
    assert!(text.contains("outgoing"), "{text}");
    assert!(text.contains("FD"), "{text}");
    assert!(text.contains("no-alien-edges"), "{text}");
}
