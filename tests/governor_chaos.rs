//! Chaos tests for the query governor against the durability stack:
//! cancellation may stop work at any point, and transient I/O faults
//! may hit any write, but the durable state visible after recovery is
//! always a clean prefix of the committed history — never a torn,
//! reordered, or duplicated one.

use graph_db_models::core::PropertyMap;
use graph_db_models::engines::{
    DurableEngine, EngineKind, GovernedAnswer, GovernedOp, GraphEngine,
};
use graph_db_models::govern::{CancelToken, ExecutionGuard, Limits};
use graph_db_models::storage::{KvStore, MemKv};
use graph_db_models::wal::{DurableKv, FaultFs, WalOptions};
use proptest::prelude::*;
use std::path::PathBuf;

fn opts() -> WalOptions {
    WalOptions::default() // SyncPolicy::Always: every commit is durable
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A workload of autocommitted puts where a cancellation token
    /// fires at a random point (checked cooperatively between commits,
    /// like a governed session loop) and single transient append/sync
    /// faults strike at random points (absorbed by the log's default
    /// retry policy). After a crash, recovery yields exactly the puts
    /// that completed — a contiguous prefix, nothing lost, nothing
    /// duplicated, nothing torn.
    #[test]
    fn cancelled_durable_workload_recovers_to_the_committed_prefix(
        total in 4usize..40,
        cancel_at in 0usize..48,
        fail_append_at in prop::option::of(0usize..40),
        fail_sync_at in prop::option::of(0usize..40),
    ) {
        let fs = FaultFs::new();
        let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
        let cancel = CancelToken::new();
        let guard = ExecutionGuard::with_cancel(Limits::none(), cancel.clone());
        let mut done = 0u8;
        for i in 0..total {
            if i == cancel_at {
                cancel.cancel();
            }
            if fail_append_at == Some(i) {
                fs.fail_appends(1);
            }
            if fail_sync_at == Some(i) {
                fs.fail_syncs(1);
            }
            if guard.check_now().is_err() {
                break; // cooperative cancellation between commits
            }
            kv.put(&[i as u8], &[i as u8]).unwrap();
            done += 1;
        }
        drop(kv); // kill without shutdown
        fs.crash();
        let (mut kv, report) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
        prop_assert!(!report.corruption_detected);
        let keys: Vec<u8> = kv
            .scan_range(b"", None)
            .unwrap()
            .into_iter()
            .map(|(k, _)| k[0])
            .collect();
        prop_assert_eq!(keys, (0..done).collect::<Vec<u8>>());
    }

    /// Same property through the engine facade: cancellation mid-way
    /// through a transactional batch leaves, after crash recovery,
    /// either the whole batch (commit record made it) or none of it —
    /// plus every autocommitted node from before the batch.
    #[test]
    fn cancelled_transaction_is_all_or_nothing_after_recovery(
        before in 1usize..6,
        batch in 1usize..6,
        cancel_inside in 0usize..12,
    ) {
        let fs = FaultFs::new();
        let dir = chaos_scratch("txn-prop");
        let (mut eng, _) =
            DurableEngine::open(EngineKind::Neo4j, &dir, fs.clone(), opts()).unwrap();
        for _ in 0..before {
            eng.create_node(None, PropertyMap::new()).unwrap();
        }
        let cancel = CancelToken::new();
        let guard = ExecutionGuard::with_cancel(Limits::none(), cancel.clone());
        eng.begin_transaction().unwrap();
        let mut cancelled = false;
        for i in 0..batch {
            if i == cancel_inside {
                cancel.cancel();
            }
            if guard.check_now().is_err() {
                cancelled = true;
                break; // abandon the batch mid-transaction
            }
            eng.create_node(None, PropertyMap::new()).unwrap();
        }
        if !cancelled {
            eng.commit_transaction().unwrap();
        }
        drop(eng); // kill: an uncommitted batch must vanish
        fs.crash();
        let (eng2, _) = DurableEngine::open(EngineKind::Neo4j, &dir, fs, opts()).unwrap();
        let expect = if cancelled { before } else { before + batch };
        prop_assert_eq!(eng2.node_count(), expect);
        drop(eng2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn chaos_scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gdm-governor-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A governed query interrupted by cancellation is an error, not a
/// wound: the durable engine stays fully usable for further commits
/// and a clean close/reopen afterwards.
#[test]
fn cancelled_query_leaves_the_durable_engine_intact() {
    let fs = FaultFs::new();
    let dir = chaos_scratch("query");
    let (mut eng, _) = DurableEngine::open(EngineKind::Neo4j, &dir, fs.clone(), opts()).unwrap();
    let mut prev = None;
    for _ in 0..8 {
        let n = eng.create_node(Some("n"), PropertyMap::new()).unwrap();
        if let Some(p) = prev {
            eng.create_edge(p, n, Some("next"), PropertyMap::new())
                .unwrap();
        }
        prev = Some(n);
    }
    let cancel = CancelToken::new();
    cancel.cancel(); // already cancelled: the query must trip immediately
    let guard = ExecutionGuard::with_cancel(Limits::none(), cancel);
    let err = eng.run_governed(GovernedOp::Diameter, &guard).unwrap_err();
    assert!(err.is_interrupted(), "unexpected error: {err}");
    // The engine shrugs it off: more durable work, then a clean cycle.
    eng.create_node(Some("n"), PropertyMap::new()).unwrap();
    eng.close().unwrap();
    drop(eng);
    let (eng2, _) = DurableEngine::open(EngineKind::Neo4j, &dir, fs, opts()).unwrap();
    assert_eq!(eng2.node_count(), 9);
    let got = eng2
        .run_governed(GovernedOp::Diameter, &ExecutionGuard::unlimited())
        .unwrap();
    assert_eq!(got, GovernedAnswer::Diameter(Some(7)));
    drop(eng2);
    let _ = std::fs::remove_dir_all(&dir);
}
