//! Fault-tolerant serving under a hostile network.
//!
//! The tentpole proof (`tenants_survive_chaos_across_refreshes`) runs
//! four tenants through a seed-driven [`ChaosProxy`] that injects every
//! fault category — abrupt disconnects, partial writes, delayed bytes,
//! garbage frames, truncated frames, slowloris drip-feeds — while the
//! server's own background refresh thread re-freezes the serving
//! snapshot under the traffic. Every tenant completes its full query
//! budget with exact results ([`RetryingClient`] reconnects and
//! retries transparently), nothing hangs (the whole test runs under a
//! watchdog), and the server's hardening counters show the faults were
//! absorbed as structured failures, not chaos.
//!
//! Satellite proofs pin each hardening mechanism in isolation:
//! slowloris reaped within the frame deadline while a neighbor keeps
//! answering, idle max-age reaping, `catch_unwind` containment of a
//! poisoned query, and the `HEALTH` state machine
//! (ready → degraded → ready) under injected refresh failures.

use graph_db_models::algo::FrozenGraph;
use graph_db_models::core::props;
use graph_db_models::engines::{make_engine, EngineKind, GraphEngine};
use graph_db_models::govern::RetryPolicy;
use graph_db_models::server::chaos::{ChaosConfig, ChaosProxy};
use graph_db_models::server::client::Deadlines;
use graph_db_models::server::protocol::{Request, Response};
use graph_db_models::server::refresh::{channel_source, RefreshPolicy, SnapshotSource};
use graph_db_models::server::{serve, Client, RetryingClient, ServerConfig, TenantConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PEOPLE: usize = 50;

/// The stable fixture: `PEOPLE` chained person nodes. Growth appends
/// nodes named `newN`, so these two queries have invariant answers:
/// the point query always returns exactly `p42`, and the scan only
/// ever grows.
const POINT_QUERY: &str = "MATCH (p:person) WHERE p.name = 'p42' RETURN p.name";
const SCAN_QUERY: &str = "MATCH (p:person) RETURN p.name";

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gdm-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn engine(tag: &str) -> (Box<dyn GraphEngine>, std::path::PathBuf) {
    let dir = temp_dir(tag);
    let mut db = make_engine(EngineKind::Neo4j, &dir).unwrap();
    let mut prev = None;
    for i in 0..PEOPLE {
        let n = db
            .create_node(Some("person"), props! { "name" => format!("p{i}") })
            .unwrap();
        if let Some(p) = prev {
            db.create_edge(p, n, Some("knows"), props! {}).unwrap();
        }
        prev = Some(n);
    }
    (db, dir)
}

/// Generous budgets (chaos is about the transport, not fairness) and
/// a tight frame deadline so slowloris reaping is observable fast.
fn chaos_config(tenants: &[&str]) -> ServerConfig {
    let mut config = ServerConfig {
        workers: 8,
        slots: 4,
        queue: 16,
        refill_credits: 500_000,
        frame_deadline: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    for name in tenants {
        let mut t = TenantConfig::new(*name, 1);
        t.burst_cap = 1_000_000;
        t.max_in_flight = 4;
        config.tenants.push(t);
    }
    config
}

/// Runs `body` on its own thread and fails loudly if it outlives
/// `limit` — chaos tests must prove "no hangs", so a hang is a
/// failure, not a CI timeout.
fn watchdog<F: FnOnce() + Send + 'static>(limit: Duration, body: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        tx.send(()).ok();
    });
    rx.recv_timeout(limit).expect("watchdog: chaos test hung");
    worker.join().expect("chaos test body panicked");
}

#[test]
fn tenants_survive_chaos_across_refreshes() {
    watchdog(Duration::from_secs(120), || {
        let (mut db, dir) = engine("tentpole");
        let tenants = ["t0", "t1", "t2", "t3"];
        let mut handle = serve(db.serving_snapshot().unwrap(), chaos_config(&tenants)).unwrap();
        let epoch0 = handle.stats().snapshot_epoch;

        // Self-driving refresh: the server thread watches drift through
        // the channel-bridged source; the engine stays on this thread.
        let (source, pump) = channel_source();
        handle.start_auto_refresh(
            RefreshPolicy {
                min_changes: 5,
                max_staleness: Duration::from_millis(150),
                poll_interval: Duration::from_millis(20),
                failure_backoff: Duration::from_millis(50),
                max_backoff: Duration::from_millis(500),
            },
            source,
        );

        let proxy = ChaosProxy::start(handle.addr(), ChaosConfig::full_menu(0xC4A05)).unwrap();
        let proxy_addr = proxy.addr();

        const QUERIES_PER_TENANT: u64 = 30;
        let clients_done = Arc::new(AtomicBool::new(false));
        let clients: Vec<_> = tenants
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let name = name.to_string();
                std::thread::spawn(move || {
                    let mut c = RetryingClient::new(proxy_addr, &name, None)
                        .unwrap()
                        .with_policy(RetryPolicy {
                            attempts: 30,
                            base_backoff_ms: 5,
                            max_backoff_ms: 200,
                            jitter: true,
                        })
                        .with_deadlines(Deadlines {
                            connect: Duration::from_secs(3),
                            read: Duration::from_secs(5),
                            write: Duration::from_secs(5),
                        })
                        .with_jitter_seed(i as u64);
                    let mut seen = 0usize;
                    for q in 0..QUERIES_PER_TENANT {
                        // Cycle the session every few queries so the
                        // proxy's fault schedule keeps advancing even
                        // for a lucky client on a clean connection.
                        if q > 0 && q % 6 == 0 {
                            c.goodbye();
                        }
                        if q % 2 == 0 {
                            match c.query(POINT_QUERY).expect("point query exhausted retries") {
                                Response::Rows(r) => {
                                    assert_eq!(
                                        r.rows.len(),
                                        1,
                                        "point query must return exactly p42"
                                    );
                                    assert_eq!(r.rows[0][0].as_str(), Some("p42"));
                                }
                                other => panic!("expected Rows, got {other:?}"),
                            }
                        } else {
                            match c.query(SCAN_QUERY).expect("scan query exhausted retries") {
                                Response::Rows(r) => {
                                    assert!(
                                        r.rows.len() >= seen && r.rows.len() >= PEOPLE,
                                        "scan shrank: {} then {}",
                                        seen,
                                        r.rows.len()
                                    );
                                    seen = r.rows.len();
                                }
                                other => panic!("expected Rows, got {other:?}"),
                            }
                        }
                    }
                    c.goodbye();
                    (c.connects(), c.retries())
                })
            })
            .collect();

        // Engine-owner loop: mutate, publish drift, serve rebuilds.
        {
            let done = clients_done.clone();
            let mut i = 0usize;
            while !done.load(Ordering::Relaxed) || handle.stats().refreshes < 4 {
                let n = db
                    .create_node(Some("person"), props! { "name" => format!("new{i}") })
                    .unwrap();
                db.create_edge(
                    graph_db_models::core::NodeId(0),
                    n,
                    Some("knows"),
                    props! {},
                )
                .unwrap();
                i += 1;
                pump.report_pending(db.pending_changes());
                pump.try_serve(|prev| db.refreeze(prev));
                std::thread::sleep(Duration::from_millis(10));
                if clients.iter().all(|c| c.is_finished()) {
                    done.store(true, Ordering::Relaxed);
                }
            }
        }

        let mut total_connects = 0u64;
        let mut total_retries = 0u64;
        for c in clients {
            let (connects, retries) = c.join().expect("tenant thread panicked");
            total_connects += connects;
            total_retries += retries;
        }

        // Every fault category was actually injected at least once...
        let faults = proxy.stats();
        assert!(faults.passthrough >= 1, "no clean connections: {faults:?}");
        assert!(
            faults.garbage_frames >= 1,
            "no garbage injected: {faults:?}"
        );
        assert!(
            faults.truncated_frames >= 1,
            "no truncated frames: {faults:?}"
        );
        assert!(faults.disconnects >= 1, "no disconnects: {faults:?}");
        assert!(faults.partial_writes >= 1, "no partial writes: {faults:?}");
        assert!(faults.slowloris >= 1, "no slowloris: {faults:?}");
        assert!(faults.delays >= 1, "no delay faults: {faults:?}");

        // ...the clients had to work for their completions...
        assert!(
            total_connects > tenants.len() as u64,
            "chaos must force reconnects (connects={total_connects})"
        );
        assert!(total_retries >= 1, "chaos must force retries");

        // ...and the server absorbed it all as structured, counted
        // failures while refreshing underneath.
        let stats = handle.stats();
        assert!(
            stats.frame_errors >= 1,
            "garbage/truncation must be counted: {stats:?}"
        );
        assert!(
            stats.sessions_reaped >= 1,
            "slowloris must be reaped: {stats:?}"
        );
        assert!(stats.refreshes >= 4, "need >=4 refreshes: {stats:?}");
        assert!(stats.snapshot_epoch > epoch0);
        assert_eq!(stats.queries_poisoned, 0);

        let health = handle.health();
        assert!(health.auto_refresh);
        assert!(health.snapshot_epoch > epoch0);

        proxy.stop();
        handle.shutdown(); // watchdog bounds the drain
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn slowloris_is_reaped_within_the_frame_deadline_while_neighbors_answer() {
    watchdog(Duration::from_secs(30), || {
        let (db, dir) = engine("slowloris");
        let mut config = chaos_config(&["alpha"]);
        config.frame_deadline = Duration::from_millis(300);
        let handle = serve(db.serving_snapshot().unwrap(), config).unwrap();

        // The attacker: 4 length bytes promising 1000, then a drip and
        // silence. The server must cut the connection, not wait.
        let mut attacker = TcpStream::connect(handle.addr()).unwrap();
        attacker
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        attacker.write_all(&1000u32.to_be_bytes()).unwrap();
        attacker.write_all(b"..").unwrap();
        let t0 = Instant::now();

        // A well-behaved neighbor keeps getting answers the whole time.
        let mut neighbor = Client::connect(handle.addr()).unwrap();
        neighbor.hello("alpha", None).unwrap();
        let mut answered = 0u64;
        let reaped_by = loop {
            match neighbor.query(POINT_QUERY).unwrap() {
                Response::Rows(r) => assert_eq!(r.rows[0][0].as_str(), Some("p42")),
                other => panic!("neighbor must keep answering, got {other:?}"),
            }
            answered += 1;
            // The attacker socket reads EOF once the server reaps it.
            let mut buf = [0u8; 16];
            attacker
                .set_read_timeout(Some(Duration::from_millis(10)))
                .unwrap();
            match std::io::Read::read(&mut attacker, &mut buf) {
                Ok(0) => break t0.elapsed(),
                Ok(_) => {}  // a best-effort error frame; keep draining
                Err(_) => {} // not reaped yet
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "slowloris never reaped"
            );
        };

        assert!(
            reaped_by >= Duration::from_millis(250),
            "reaped before the deadline could have elapsed: {reaped_by:?}"
        );
        assert!(
            reaped_by < Duration::from_secs(5),
            "reap took far longer than the 300ms deadline: {reaped_by:?}"
        );
        assert!(answered >= 1, "the neighbor was starved");
        assert!(handle.stats().sessions_reaped >= 1);

        neighbor.goodbye().ok();
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn idle_sessions_are_reaped_after_max_age() {
    watchdog(Duration::from_secs(30), || {
        let (db, dir) = engine("idle");
        let mut config = chaos_config(&["alpha"]);
        config.idle_timeout = Duration::from_millis(200);
        let handle = serve(db.serving_snapshot().unwrap(), config).unwrap();

        let mut c = Client::connect(handle.addr()).unwrap();
        c.hello("alpha", None).unwrap();
        assert!(matches!(c.query(POINT_QUERY).unwrap(), Response::Rows(_)));

        // Outlive the idle max-age; the next round trip finds the
        // session gone.
        std::thread::sleep(Duration::from_millis(700));
        assert!(
            c.query(POINT_QUERY).is_err(),
            "an idle-reaped session must not answer"
        );
        assert!(handle.stats().sessions_reaped >= 1);

        // A fresh session works fine — reaping is per-session hygiene,
        // not server degradation.
        let mut c2 = Client::connect(handle.addr()).unwrap();
        c2.hello("alpha", None).unwrap();
        assert!(matches!(c2.query(POINT_QUERY).unwrap(), Response::Rows(_)));
        c2.goodbye().ok();
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn poisoned_query_closes_its_session_but_not_the_worker() {
    watchdog(Duration::from_secs(30), || {
        let (db, dir) = engine("poison");
        let mut config = chaos_config(&["alpha"]);
        // One worker: if the panic killed it, the follow-up session
        // below could never be served.
        config.workers = 1;
        config.panic_injection = true;
        let handle = serve(db.serving_snapshot().unwrap(), config).unwrap();

        let mut victim = Client::connect(handle.addr()).unwrap();
        victim.hello("alpha", None).unwrap();
        match victim.query("::chaos-panic").unwrap() {
            Response::Error(e) => assert!(
                e.message.contains("panicked"),
                "expected a poisoned-query error, got {}",
                e.message
            ),
            other => panic!("expected Error, got {other:?}"),
        }
        // The poisoned session is closed...
        assert!(victim.query(POINT_QUERY).is_err());

        // ...but the lone worker survives to serve a new session.
        let mut next = Client::connect(handle.addr()).unwrap();
        next.hello("alpha", None).unwrap();
        assert!(matches!(
            next.query(POINT_QUERY).unwrap(),
            Response::Rows(_)
        ));
        let stats = next.stats().unwrap();
        assert_eq!(stats.queries_poisoned, 1);
        next.goodbye().ok();
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Fails `fails` rebuilds, then succeeds by re-serving the previous
/// snapshot (and clearing its drift) — a deterministic script for the
/// ready → degraded → ready health transition.
struct FlakySource {
    fails_left: u32,
    pending: u64,
}

impl SnapshotSource for FlakySource {
    fn pending_changes(&mut self) -> u64 {
        self.pending
    }
    fn rebuild(&mut self, prev: &FrozenGraph) -> graph_db_models::core::Result<FrozenGraph> {
        if self.fails_left > 0 {
            self.fails_left -= 1;
            Err(graph_db_models::core::GdmError::Storage(
                "chaos: injected refresh failure".into(),
            ))
        } else {
            self.pending = 0;
            Ok(prev.clone())
        }
    }
}

#[test]
fn health_degrades_under_refresh_failures_and_recovers() {
    watchdog(Duration::from_secs(30), || {
        let (db, dir) = engine("health");
        let mut handle = serve(db.serving_snapshot().unwrap(), chaos_config(&["alpha"])).unwrap();

        // Before auto-refresh: ready, and HEALTH answers pre-Hello so
        // a load balancer needs no tenant credentials.
        assert_eq!(handle.health().state, "ready");
        let mut probe = Client::connect(handle.addr()).unwrap();
        match probe.round_trip(&Request::Health).unwrap() {
            Response::Health(h) => {
                assert_eq!(h.state, "ready");
                assert!(!h.auto_refresh);
            }
            other => panic!("expected Health pre-Hello, got {other:?}"),
        }

        handle.start_auto_refresh(
            RefreshPolicy {
                min_changes: 1,
                max_staleness: Duration::from_millis(50),
                poll_interval: Duration::from_millis(10),
                failure_backoff: Duration::from_millis(30),
                max_backoff: Duration::from_millis(100),
            },
            FlakySource {
                fails_left: 5,
                pending: 10,
            },
        );

        let wait_for = |want: &str, handle: &graph_db_models::server::ServerHandle| {
            let t0 = Instant::now();
            loop {
                let h = handle.health();
                if h.state == want {
                    return h;
                }
                assert!(
                    t0.elapsed() < Duration::from_secs(10),
                    "health never reached {want}; last: {h:?}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        };

        let degraded = wait_for("degraded", &handle);
        assert!(degraded.consecutive_refresh_failures >= 1);
        let ready = wait_for("ready", &handle);
        assert_eq!(ready.consecutive_refresh_failures, 0);
        assert_eq!(ready.refresh_failures, 5);
        assert_eq!(ready.pending_changes, 0);
        assert!(ready.auto_refresh);
        assert!(handle.stats().refreshes >= 1);

        // The same transitions are visible over the wire.
        match probe.round_trip(&Request::Health).unwrap() {
            Response::Health(h) => {
                assert_eq!(h.state, "ready");
                assert_eq!(h.refresh_failures, 5);
            }
            other => panic!("expected Health, got {other:?}"),
        }
        probe.goodbye().ok();
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}
