//! The headline reproduction test: every executable cell of the
//! paper's tables is verified against the running engine emulations,
//! and the rendered tables carry the paper's key findings.

use graph_db_models::compare::probes::verify_all;
use graph_db_models::compare::tables::{build_table_unverified, TableId};
use graph_db_models::core::Support;

fn workdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gdm-tabletest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn all_recorded_cells_verify_against_running_engines() {
    let dir = workdir("verify");
    let mismatches = verify_all(&dir).unwrap();
    assert!(
        mismatches.is_empty(),
        "emulations diverge from the paper's cells:\n{}",
        mismatches.join("\n")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn table_i_findings() {
    let t = build_table_unverified(TableId::I);
    // "the support for external memory storage is a main requirement"
    // — most engines have it; Sones and Filament are the exceptions.
    assert_eq!(t.get("Sones", "External memory"), Some(Support::None));
    assert_eq!(t.get("Filament", "External memory"), Some(Support::None));
    assert_eq!(t.get("G-Store", "External memory"), Some(Support::Full));
    // VertexDB sits on TokyoCabinet: backend storage.
    assert_eq!(t.get("VertexDB", "Backend storage"), Some(Support::Full));
}

#[test]
fn table_ii_findings() {
    let t = build_table_unverified(TableId::II);
    // "the most common mechanism in graph databases is the use of APIs"
    for row in &t.rows {
        assert_eq!(t.get(&row.0, "API"), Some(Support::Full), "{}", row.0);
    }
    // Only AllegroGraph and Sones ship all three database languages.
    let full_stack: Vec<&str> = t
        .rows
        .iter()
        .map(|(r, _)| r.as_str())
        .filter(|r| {
            [
                "Data Definition Language",
                "Data Manipulation Language",
                "Query Language",
            ]
            .iter()
            .all(|c| t.get(r, c) == Some(Support::Full))
        })
        .collect();
    assert_eq!(full_stack, vec!["AllegroGraph", "Sones"]);
}

#[test]
fn table_iii_findings() {
    let t = build_table_unverified(TableId::III);
    // "most graph databases are based on simple graphs or attributed
    // graphs. Only two support hypergraphs and no one nested graphs."
    let hyper: Vec<&str> = t
        .rows
        .iter()
        .map(|(r, _)| r.as_str())
        .filter(|r| t.get(r, "Hypergraphs") == Some(Support::Full))
        .collect();
    assert_eq!(hyper, vec!["HyperGraphDB", "Sones"]);
    for (row, _) in &t.rows {
        assert_eq!(t.get(row, "Nested graphs"), Some(Support::None), "{row}");
        assert_eq!(t.get(row, "Directed"), Some(Support::Full), "{row}");
    }
}

#[test]
fn table_iv_findings() {
    let t = build_table_unverified(TableId::IV);
    // "Value nodes and simple relations are supported by all the models."
    for (row, _) in &t.rows {
        assert_eq!(t.get(row, "Value nodes"), Some(Support::Full), "{row}");
        assert_eq!(t.get(row, "Simple relations"), Some(Support::Full), "{row}");
        // Nobody models complex nodes.
        assert_eq!(t.get(row, "Complex nodes"), Some(Support::None), "{row}");
    }
}

#[test]
fn table_v_findings() {
    let t = build_table_unverified(TableId::V);
    // "AllegroGraph supports reasoning via its Prolog implementation."
    assert_eq!(t.get("AllegroGraph", "Reasoning"), Some(Support::Full));
    let reasoners = t
        .rows
        .iter()
        .filter(|(r, _)| t.get(r, "Reasoning") == Some(Support::Full))
        .count();
    assert_eq!(reasoners, 1);
    // Cypher and SPARQL graded partial.
    assert_eq!(t.get("Neo4j", "Query Lang."), Some(Support::Partial));
    assert_eq!(t.get("AllegroGraph", "Query Lang."), Some(Support::Partial));
    // Retrieval is universal.
    for (row, _) in &t.rows {
        assert_eq!(t.get(row, "Retrieval"), Some(Support::Full), "{row}");
    }
}

#[test]
fn table_vi_findings() {
    let t = build_table_unverified(TableId::VI);
    // "integrity constraints are poorly studied in graph databases" —
    // no engine supports FDs or pattern constraints; only 4 rows have
    // anything at all.
    let constrained = t
        .rows
        .iter()
        .filter(|(_, cells)| cells.iter().any(|c| c.is_supported()))
        .count();
    assert_eq!(constrained, 4);
    for (row, _) in &t.rows {
        assert_eq!(
            t.get(row, "Functional dependency"),
            Some(Support::None),
            "{row}"
        );
        assert_eq!(
            t.get(row, "Graph pattern constraints"),
            Some(Support::None),
            "{row}"
        );
    }
}

#[test]
fn table_vii_findings() {
    let t = build_table_unverified(TableId::VII);
    for (row, _) in &t.rows {
        // Adjacency and summarization answerable everywhere.
        assert_eq!(
            t.get(row, "Node/edge adjacency"),
            Some(Support::Full),
            "{row}"
        );
        assert_eq!(t.get(row, "Summarization"), Some(Support::Full), "{row}");
    }
    // Pattern matching through 2012 APIs: only the SPARQL store.
    let pattern: Vec<&str> = t
        .rows
        .iter()
        .map(|(r, _)| r.as_str())
        .filter(|r| t.get(r, "Pattern matching") == Some(Support::Full))
        .collect();
    assert_eq!(pattern, vec!["AllegroGraph"]);
}

#[test]
fn table_viii_is_the_positive_conclusion() {
    let t = build_table_unverified(TableId::VIII);
    // The paper: the prior study "provides a positive conclusion about
    // the feasibility of developing a well-designed graph query
    // language" — i.e., every essential query has full support in at
    // least one past language.
    for (_, name) in &t.columns {
        let covered = t
            .rows
            .iter()
            .any(|(r, _)| t.get(r, name) == Some(Support::Full));
        assert!(covered, "{name} uncovered by every past language");
    }
}

#[test]
fn renderings_are_complete() {
    for id in TableId::all() {
        let t = build_table_unverified(id);
        let text = t.render();
        let md = t.to_markdown();
        let csv = t.to_csv();
        for (row, _) in &t.rows {
            assert!(text.contains(row.as_str()), "{id:?} text missing {row}");
            assert!(md.contains(row.as_str()), "{id:?} md missing {row}");
            assert!(csv.contains(row.as_str()), "{id:?} csv missing {row}");
        }
    }
}
