//! Cross-engine integration: the same workload loaded into all nine
//! emulations must agree on every answer each model can express —
//! the executable core of the paper's comparison.

use gdm_bench::{load_into_engine, social_graph, SocialParams};
use graph_db_models::core::{NodeId, Value};
use graph_db_models::engines::{make_engine, EngineKind, GraphEngine, SummaryFunc};

struct Loaded {
    kind: EngineKind,
    engine: Box<dyn GraphEngine>,
    nodes: Vec<NodeId>,
}

fn load_all(tag: &str, people: usize) -> Vec<Loaded> {
    let graph = social_graph(SocialParams {
        people,
        communities: 4,
        intra_edges: 4,
        inter_edges: 1,
        seed: 99,
    });
    let base = std::env::temp_dir().join(format!("gdm-cross-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    EngineKind::all()
        .into_iter()
        .map(|kind| {
            let dir = base.join(kind.label().to_lowercase().replace('-', "_"));
            std::fs::create_dir_all(&dir).unwrap();
            let mut engine = make_engine(kind, &dir).unwrap();
            let nodes = load_into_engine(engine.as_mut(), &graph).unwrap();
            Loaded {
                kind,
                engine,
                nodes,
            }
        })
        .collect()
}

#[test]
fn all_engines_agree_on_counts_and_adjacency() {
    let engines = load_all("counts", 80);
    // Reference: DEX, a multigraph. AllegroGraph stores a *set* of
    // statements, so parallel `knows` edges collapse — a genuine model
    // difference the paper's Table III encodes (simple vs attributed
    // multigraphs); its count may only be lower, never higher.
    let reference = engines
        .iter()
        .find(|l| l.kind == EngineKind::Dex)
        .expect("DEX present");
    let ref_edges = reference.engine.edge_count();
    for l in &engines {
        assert_eq!(l.engine.node_count(), 80, "{}", l.kind.label());
        if l.kind == EngineKind::Allegro {
            assert!(
                l.engine.edge_count() <= ref_edges,
                "{}: RDF statement sets cannot exceed the multigraph count",
                l.kind.label()
            );
        } else {
            assert_eq!(l.engine.edge_count(), ref_edges, "{}", l.kind.label());
        }
    }
    // Adjacency answers agree across every engine for 200 random pairs.
    for i in 0..200usize {
        let a = i * 13 % 80;
        let b = (i * 7 + 3) % 80;
        let expected = reference
            .engine
            .adjacent(reference.nodes[a], reference.nodes[b])
            .unwrap();
        for l in &engines[1..] {
            let got = l.engine.adjacent(l.nodes[a], l.nodes[b]).unwrap();
            assert_eq!(got, expected, "{}: pair ({a}, {b})", l.kind.label());
        }
    }
}

#[test]
fn supported_engines_agree_on_shortest_paths() {
    let engines = load_all("paths", 60);
    // Collect shortest-path lengths from every engine that supports
    // the query (Table VII) and require unanimity.
    for (s, t) in [(0usize, 59usize), (5, 40), (10, 11), (3, 3)] {
        let mut answers: Vec<(EngineKind, Option<usize>)> = Vec::new();
        for l in &engines {
            match l.engine.shortest_path(l.nodes[s], l.nodes[t]) {
                Ok(path) => answers.push((l.kind, path.map(|p| p.len() - 1))),
                Err(e) if e.is_unsupported() => {}
                Err(e) => panic!("{}: {e}", l.kind.label()),
            }
        }
        assert!(answers.len() >= 4, "most engines support shortest path");
        let expected = answers[0].1;
        for (kind, got) in &answers {
            assert_eq!(*got, expected, "{}: ({s}, {t})", kind.label());
        }
    }
}

#[test]
fn supported_engines_agree_on_k_neighborhood_sizes() {
    let engines = load_all("kneigh", 60);
    for start in [0usize, 17, 42] {
        let mut sizes: Vec<(EngineKind, usize)> = Vec::new();
        for l in &engines {
            match l.engine.k_neighborhood(l.nodes[start], 2) {
                Ok(hood) => sizes.push((l.kind, hood.len())),
                Err(e) if e.is_unsupported() => {}
                Err(e) => panic!("{}: {e}", l.kind.label()),
            }
        }
        assert!(sizes.len() >= 5);
        let expected = sizes[0].1;
        for (kind, got) in &sizes {
            assert_eq!(*got, expected, "{}: start {start}", kind.label());
        }
    }
}

#[test]
fn summarization_is_universal_and_consistent() {
    let engines = load_all("summ", 50);
    let mut orders = Vec::new();
    for l in &engines {
        let order = l.engine.summarize(SummaryFunc::Order).unwrap();
        assert_eq!(order, Value::Int(50), "{}", l.kind.label());
        orders.push(order);
        // Degree of a shared node agrees where both models count the
        // same incident edges (hypergraph 2-sections project binary
        // links to single edges, so they agree too).
        let d = l.engine.summarize(SummaryFunc::Degree(l.nodes[7])).unwrap();
        assert!(matches!(d, Value::Int(x) if x >= 0), "{}", l.kind.label());
    }
}

#[test]
fn deletion_is_consistent_across_models() {
    let mut engines = load_all("delete", 40);
    for l in &mut engines {
        let before = l.engine.node_count();
        l.engine.delete_node(l.nodes[5]).unwrap();
        assert_eq!(l.engine.node_count(), before - 1, "{}", l.kind.label());
        // The node is gone from adjacency answers.
        let adj = l.engine.adjacent(l.nodes[5], l.nodes[6]);
        match adj {
            Ok(false) => {}
            Ok(true) => panic!("{}: deleted node still adjacent", l.kind.label()),
            Err(_) => {} // engines may report NotFound — also acceptable
        }
    }
}

#[test]
fn durable_engines_survive_reopen_with_data() {
    let graph = social_graph(SocialParams {
        people: 25,
        communities: 2,
        intra_edges: 3,
        inter_edges: 1,
        seed: 7,
    });
    let base = std::env::temp_dir().join(format!("gdm-cross-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for kind in EngineKind::all() {
        let dir = base.join(kind.label().to_lowercase().replace('-', "_"));
        std::fs::create_dir_all(&dir).unwrap();
        let expected_edges;
        {
            let mut engine = make_engine(kind, &dir).unwrap();
            load_into_engine(engine.as_mut(), &graph).unwrap();
            expected_edges = engine.edge_count();
            match engine.persist() {
                Ok(()) => {}
                Err(e) if e.is_unsupported() => continue, // main-memory engines
                Err(e) => panic!("{}: {e}", kind.label()),
            }
        }
        let engine = make_engine(kind, &dir).unwrap();
        assert_eq!(engine.node_count(), 25, "{} after reopen", kind.label());
        assert_eq!(
            engine.edge_count(),
            expected_edges,
            "{} after reopen",
            kind.label()
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Satellite audit regression: a property predicate served through
/// each engine's `ServingSnapshot` must see exactly what the engine's
/// live model stored. Attributed profiles (DEX, InfiniteGraph, Neo4j,
/// HyperGraphDB, Sones) keep node attributes through freeze — a
/// snapshot view that silently drops them (labels-but-no-properties)
/// is the bug this guards against. Propertyless profiles (AllegroGraph
/// stores values as triples; the KV engines strip attributes on load)
/// legitimately serve zero rows for the same predicate.
#[test]
fn property_predicate_served_through_every_snapshot() {
    use graph_db_models::algo::pattern::{Pattern, PatternNode};

    let engines = load_all("servprops", 60);
    let graph = social_graph(SocialParams {
        people: 60,
        communities: 4,
        intra_edges: 4,
        inter_edges: 1,
        seed: 99,
    });
    // Ground truth straight from the source workload.
    let mut expected = 0usize;
    graph_db_models::core::GraphView::visit_nodes(&graph, &mut |n| {
        let v = graph.node_properties(n).unwrap().get("community").cloned();
        if v == Some(Value::from(0i64)) {
            expected += 1;
        }
    });
    assert!(expected > 0, "workload must produce community-0 people");

    for l in &engines {
        let attributed = matches!(
            l.kind,
            EngineKind::Dex
                | EngineKind::InfiniteGraph
                | EngineKind::Neo4j
                | EngineKind::HyperGraphDb
                | EngineKind::Sones
        );
        let snap = l.engine.serving_snapshot().unwrap();
        let mut p = Pattern::new();
        p.node(PatternNode::var("x").with_prop("community", 0i64));
        let served = graph_db_models::algo::match_pattern_vectorized_auto(&snap.frozen, &p);
        let want = if attributed { expected } else { 0 };
        assert_eq!(
            served.len(),
            want,
            "{}: snapshot served {} rows for community=0, live model holds {}",
            l.kind.label(),
            served.len(),
            want
        );
        // And the snapshot agrees with the reference matcher on the
        // same predicate — the serving path adds speed, not answers.
        let reference = graph_db_models::algo::match_pattern(&snap.frozen, &p);
        assert_eq!(served.len(), reference.len(), "{}", l.kind.label());
    }
}
