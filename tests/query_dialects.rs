//! Cross-dialect integration: the paper's point that the 2012
//! languages are incomparable *surfaces* over comparable *logic* —
//! here the same questions asked in Cypher, GQL, SPARQL, GSQL, and
//! Datalog must produce the same answers.

use graph_db_models::core::{props, Value};
use graph_db_models::engines::{make_engine, EngineKind};

fn dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gdm-dialects-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The same four-person dataset in every engine's own idiom.
const PEOPLE: [(&str, i64); 4] = [("ana", 30), ("bob", 45), ("cleo", 27), ("dan", 45)];

#[test]
fn cypher_and_gql_agree_on_filters_and_aggregates() {
    // Neo4j via Cypher CREATE.
    let mut neo = make_engine(EngineKind::Neo4j, &dir("neo")).unwrap();
    for (name, age) in PEOPLE {
        neo.execute_query(&format!("CREATE (p:Person {{name: '{name}', age: {age}}})"))
            .unwrap();
    }
    // Sones via GQL DDL + DML.
    let mut sones = make_engine(EngineKind::Sones, &dir("sones")).unwrap();
    sones
        .execute_ddl("CREATE VERTEX TYPE Person ATTRIBUTES (String name, Int age)")
        .unwrap();
    for (name, age) in PEOPLE {
        sones
            .execute_dml(&format!(
                "INSERT INTO Person VALUES (name = '{name}', age = {age})"
            ))
            .unwrap();
    }

    // Same filter, both dialects.
    let from_cypher = neo
        .execute_query("MATCH (p:Person) WHERE p.age > 28 RETURN p.name ORDER BY p.name")
        .unwrap();
    let from_gql = sones
        .execute_query("FROM Person p SELECT p.name WHERE p.age > 28 ORDER BY p.name")
        .unwrap();
    assert_eq!(from_cypher.rows, from_gql.rows);
    assert_eq!(from_cypher.len(), 3);

    // Same aggregate, both dialects.
    let c = neo
        .execute_query("MATCH (p:Person) RETURN count(*) AS n, avg(p.age) AS a")
        .unwrap();
    let g = sones
        .execute_query("FROM Person p SELECT COUNT(*) AS n, AVG(p.age) AS a")
        .unwrap();
    assert_eq!(c.get(0, "n"), g.get(0, "n"));
    assert_eq!(c.get(0, "a"), g.get(0, "a"));
    assert_eq!(c.get(0, "n"), Some(&Value::Int(4)));
}

#[test]
fn sparql_join_matches_cypher_relationship_match() {
    let mut neo = make_engine(EngineKind::Neo4j, &dir("neo-rel")).unwrap();
    let mut ag = make_engine(EngineKind::Allegro, &dir("ag-rel")).unwrap();
    // knows-chain: ana -> bob -> cleo, plus ana -> cleo.
    let pairs = [("ana", "bob"), ("bob", "cleo"), ("ana", "cleo")];
    let mut ids = std::collections::HashMap::new();
    for name in ["ana", "bob", "cleo"] {
        let n = neo
            .create_node(Some("Person"), props! { "name" => name })
            .unwrap();
        ids.insert(name, n);
    }
    for (a, b) in pairs {
        neo.create_edge(ids[a], ids[b], Some("knows"), props! {})
            .unwrap();
        ag.execute_dml(&format!("ADD <{a}> <knows> <{b}>")).unwrap();
    }
    // Two-hop endpoints.
    let cypher = neo
        .execute_query(
            "MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) \
             RETURN a.name, c.name",
        )
        .unwrap();
    let sparql = ag
        .execute_query("SELECT ?a ?c WHERE { ?a <knows> ?b . ?b <knows> ?c }")
        .unwrap();
    assert_eq!(cypher.len(), sparql.len());
    assert_eq!(cypher.len(), 1);
    assert_eq!(cypher.rows[0][0].as_str(), Some("ana"));
    assert_eq!(sparql.rows[0][1].as_str(), Some("cleo"));
}

#[test]
fn datalog_reachability_matches_gsql_reachable() {
    // G-Store answers reachability through its path dialect;
    // AllegroGraph answers the same question through rules.
    let mut gstore = make_engine(EngineKind::GStore, &dir("gstore")).unwrap();
    let mut ag = make_engine(EngineKind::Allegro, &dir("ag-reach")).unwrap();
    // A chain 0 -> 1 -> 2 -> 3 with a shortcut 0 -> 2.
    for _ in 0..4 {
        gstore.execute_ddl("CREATE NODE 'v'").unwrap();
    }
    for (a, b) in [(0, 1), (1, 2), (2, 3), (0, 2)] {
        gstore.execute_ddl(&format!("CREATE EDGE {a} {b}")).unwrap();
        ag.execute_dml(&format!("ADD <n{a}> <next> <n{b}>"))
            .unwrap();
    }
    let rs = gstore.execute_query("SELECT REACHABLE FROM 0").unwrap();
    let gsql_reachable: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| r[0].as_int().expect("node ids"))
        .collect();
    let rows = ag
        .reason(
            "reach(X, Y) :- next(X, Y).\n\
             reach(X, Z) :- reach(X, Y), next(Y, Z).",
            "reach(n0, X)",
        )
        .unwrap();
    let datalog_reachable: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    // GSQL includes the start node itself; Datalog derives strict
    // successors. 0 reaches {1, 2, 3} either way.
    assert_eq!(gsql_reachable, vec![0, 1, 2, 3]);
    assert_eq!(datalog_reachable, vec!["n1", "n2", "n3"]);
}

#[test]
fn gsql_paths_match_engine_api() {
    let mut gstore = make_engine(EngineKind::GStore, &dir("gstore-paths")).unwrap();
    for _ in 0..5 {
        gstore.execute_ddl("CREATE NODE 'v'").unwrap();
    }
    for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)] {
        gstore.execute_ddl(&format!("CREATE EDGE {a} {b}")).unwrap();
    }
    let via_ql = gstore
        .execute_query("SELECT PATHS FROM 0 TO 2 LENGTH 2")
        .unwrap();
    let via_api = gstore
        .fixed_length_paths(
            graph_db_models::core::NodeId(0),
            graph_db_models::core::NodeId(2),
            2,
        )
        .unwrap();
    assert_eq!(via_ql.rows[0][0], Value::Int(via_api as i64));
    assert_eq!(via_api, 1);

    let shortest = gstore
        .execute_query("SELECT SHORTEST PATH FROM 0 TO 4")
        .unwrap();
    assert_eq!(
        shortest.rows[0][0],
        Value::List(vec![
            Value::Int(0),
            Value::Int(2),
            Value::Int(3),
            Value::Int(4)
        ])
    );
}

#[test]
fn implicit_and_explicit_grouping_agree() {
    // Cypher groups implicitly when RETURN mixes aggregates with plain
    // items; GQL uses an explicit GROUP BY. Same data, same answer.
    let mut neo = make_engine(EngineKind::Neo4j, &dir("neo-group")).unwrap();
    let mut sones = make_engine(EngineKind::Sones, &dir("sones-group")).unwrap();
    sones
        .execute_ddl("CREATE VERTEX TYPE Person ATTRIBUTES (String city, Int age)")
        .unwrap();
    for (city, age) in [("scl", 30), ("scl", 40), ("muc", 20), ("muc", 24)] {
        neo.execute_query(&format!("CREATE (p:Person {{city: '{city}', age: {age}}})"))
            .unwrap();
        sones
            .execute_dml(&format!(
                "INSERT INTO Person VALUES (city = '{city}', age = {age})"
            ))
            .unwrap();
    }
    let cypher = neo
        .execute_query(
            "MATCH (p:Person) RETURN p.city AS city, avg(p.age) AS a, count(*) AS n ORDER BY city",
        )
        .unwrap();
    let gql = sones
        .execute_query(
            "FROM Person p SELECT p.city AS city, AVG(p.age) AS a, COUNT(*) AS n \
             GROUP BY p.city ORDER BY city",
        )
        .unwrap();
    assert_eq!(cypher.rows, gql.rows);
    assert_eq!(cypher.len(), 2);
    assert_eq!(cypher.get(0, "city"), Some(&Value::from("muc")));
    assert_eq!(cypher.get(0, "a"), Some(&Value::from(22.0)));
    assert_eq!(cypher.get(1, "n"), Some(&Value::from(2)));
    // Ordering by the aggregate alias also works.
    let by_avg = neo
        .execute_query("MATCH (p:Person) RETURN p.city AS city, avg(p.age) AS a ORDER BY a DESC")
        .unwrap();
    assert_eq!(by_avg.get(0, "city"), Some(&Value::from("scl")));
}

#[test]
fn partial_cypher_refusals_are_loud_and_specific() {
    let mut neo = make_engine(EngineKind::Neo4j, &dir("neo-partial")).unwrap();
    for q in [
        "MATCH (a) WITH a RETURN a",
        "MERGE (a:X) RETURN a",
        "MATCH (a) SET a.x = 1 RETURN a",
    ] {
        let err = neo.execute_query(q).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("not supported"), "{q}: unexpected error {msg}");
    }
}
