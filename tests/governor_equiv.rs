//! Governor equivalence and interruption guarantees.
//!
//! Two properties, both load-bearing for trusting governed execution:
//!
//! 1. **Equivalence.** Under an unlimited guard, every governed
//!    algorithm returns exactly what its ungoverned twin returns —
//!    the guard threading changes control flow on interruption only,
//!    never the answer. Checked property-style on random graphs.
//! 2. **Interruption.** Under a hopeless limit (an already-expired
//!    deadline, a one-node budget) an expensive query on a committed
//!    1k-node workload returns a structured `Interrupted` error — it
//!    neither hangs nor panics nor corrupts the engine — on every one
//!    of the nine emulated engines.

use graph_db_models::algo::pattern::{match_pattern, match_pattern_governed, PatternNode};
use graph_db_models::algo::planned::{match_pattern_auto, match_pattern_auto_governed};
use graph_db_models::algo::regular::{
    regular_path_exists, regular_path_exists_governed, LabelRegex,
};
use graph_db_models::algo::summary::{diameter, diameter_governed};
use graph_db_models::algo::{shortest_path, shortest_path_governed, Pattern};
use graph_db_models::bench::workload::{load_into_engine, social_graph, SocialParams};
use graph_db_models::core::{Direction, NodeId};
use graph_db_models::engines::{make_engine, EngineKind, GovernedAnswer, GovernedOp};
use graph_db_models::govern::{ExecutionGuard, Limits};
use graph_db_models::graphs::SimpleGraph;
use proptest::prelude::*;
use std::time::Duration;

/// A random small directed graph with labels from a 3-letter alphabet.
fn graph_strategy() -> impl Strategy<Value = (SimpleGraph, usize)> {
    (
        2usize..10,
        prop::collection::vec((0usize..10, 0usize..10, 0u8..3), 0..25),
    )
        .prop_map(|(n, edges)| {
            let mut g = SimpleGraph::directed();
            let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
            for (a, b, l) in edges {
                let label = ["a", "b", "c"][l as usize];
                g.add_labeled_edge(nodes[a % n], nodes[b % n], label)
                    .expect("nodes exist");
            }
            (g, n)
        })
}

/// A 2-variable connected pattern: x -> y over any labels.
fn wedge_pattern() -> Pattern {
    let mut p = Pattern::new();
    let x = p.node(PatternNode::var("x"));
    let y = p.node(PatternNode::var("y"));
    p.edge(x, y, None).expect("valid indices");
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// governed(∞) ≡ ungoverned for pattern matching (both the
    /// reference backtracker and the planned matcher), shortest paths,
    /// regular paths, and diameter.
    #[test]
    fn unlimited_guard_changes_nothing((g, n) in graph_strategy()) {
        let guard = ExecutionGuard::unlimited();
        let pattern = wedge_pattern();

        let plain = match_pattern(&g, &pattern);
        let governed = match_pattern_governed(&g, &pattern, &guard).unwrap();
        prop_assert_eq!(&plain, &governed);

        let auto = match_pattern_auto(&g, &pattern);
        let auto_governed = match_pattern_auto_governed(&g, &pattern, &guard).unwrap();
        prop_assert_eq!(auto.to_bindings(), auto_governed.to_bindings());

        let regex = LabelRegex::compile("(a|b)*c?").unwrap();
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (NodeId(i as u64), NodeId(j as u64));
                prop_assert_eq!(
                    shortest_path(&g, a, b).map(|p| p.nodes),
                    shortest_path_governed(&g, a, b, &guard).unwrap().map(|p| p.nodes)
                );
                prop_assert_eq!(
                    regular_path_exists(&g, a, b, &regex),
                    regular_path_exists_governed(&g, a, b, &regex, &guard).unwrap()
                );
            }
        }

        prop_assert_eq!(
            diameter(&g, Direction::Outgoing),
            diameter_governed(&g, Direction::Outgoing, &guard).unwrap()
        );
    }
}

/// The acceptance gauntlet: a committed 1k-person social workload on
/// every engine; an expensive governed pattern match under an
/// already-expired deadline must return `Interrupted` — promptly,
/// structurally, and leaving the engine usable.
#[test]
fn expired_deadline_interrupts_pattern_match_on_every_engine() {
    let people = social_graph(SocialParams::default()); // 1000 people
    let mut pattern = Pattern::new();
    // A 3-hop unconstrained chain: no label constraints, because some
    // engine models drop labels on load — this stays expensive (≫10⁶
    // candidate extensions over 1k nodes / ~10k edges) on all nine.
    let a = pattern.node(PatternNode::var("a"));
    let b = pattern.node(PatternNode::var("b"));
    let c = pattern.node(PatternNode::var("c"));
    let d = pattern.node(PatternNode::var("d"));
    pattern.edge(a, b, None).unwrap();
    pattern.edge(b, c, None).unwrap();
    pattern.edge(c, d, None).unwrap();

    let base = std::env::temp_dir().join(format!("gdm-governor-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for kind in EngineKind::all() {
        let dir = base.join(kind.label().to_lowercase().replace('-', "_"));
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = make_engine(kind, &dir).unwrap();
        load_into_engine(engine.as_mut(), &people).unwrap();

        // Zero-duration deadline: expired before the first check.
        let guard = ExecutionGuard::new(Limits::none().with_deadline(Duration::from_millis(0)));
        let err = engine
            .run_governed(GovernedOp::PatternMatch(&pattern), &guard)
            .unwrap_err();
        assert!(
            err.is_interrupted(),
            "{}: expected Interrupted, got {err}",
            kind.label()
        );

        // The same engine still answers a cheap governed query under
        // its own default limits — interruption wounds nothing.
        let defaults = ExecutionGuard::new(engine.default_limits());
        let sp = engine
            .run_governed(GovernedOp::ShortestPath(NodeId(0), NodeId(0)), &defaults)
            .unwrap();
        assert_eq!(
            sp,
            GovernedAnswer::Path(Some(vec![NodeId(0)])),
            "{}",
            kind.label()
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// A one-node-visit budget interrupts the diameter sweep on every
/// engine, and the error carries the partial-progress row count.
#[test]
fn tiny_budget_interrupts_diameter_on_every_engine() {
    let people = social_graph(SocialParams {
        people: 120,
        communities: 4,
        intra_edges: 4,
        inter_edges: 1,
        seed: 17,
    });
    let base = std::env::temp_dir().join(format!("gdm-governor-budget-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for kind in EngineKind::all() {
        let dir = base.join(kind.label().to_lowercase().replace('-', "_"));
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = make_engine(kind, &dir).unwrap();
        load_into_engine(engine.as_mut(), &people).unwrap();

        let guard = ExecutionGuard::new(Limits::none().with_node_visits(1));
        let err = engine
            .run_governed(GovernedOp::Diameter, &guard)
            .unwrap_err();
        assert!(
            err.is_interrupted(),
            "{}: expected Interrupted, got {err}",
            kind.label()
        );

        // Unlimited governed diameter equals the ungoverned summary
        // on the frozen snapshot.
        let got = engine
            .run_governed(GovernedOp::Diameter, &ExecutionGuard::unlimited())
            .unwrap();
        let fz = engine.snapshot().unwrap();
        assert_eq!(
            got,
            GovernedAnswer::Diameter(diameter(&fz, Direction::Outgoing)),
            "{}",
            kind.label()
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Governed-vectorized gauntlet: the batch executor charges the guard
/// once per candidate batch, so it must (a) equal its ungoverned twin
/// under an unlimited guard, (b) return the structured `Interrupted`
/// (with the partial row count) under deadline, budget, and row
/// limits, and (c) leave partial progress observable, exactly like the
/// row-at-a-time matchers it replaces.
#[test]
fn governed_vectorized_budget_and_deadline_gauntlet() {
    use graph_db_models::algo::{
        match_pattern_vectorized_auto, match_pattern_vectorized_auto_governed, FrozenGraph,
    };
    use graph_db_models::core::{GdmError, InterruptReason};

    let people = social_graph(SocialParams {
        people: 300,
        communities: 4,
        intra_edges: 4,
        inter_edges: 1,
        seed: 7,
    });
    let fz = FrozenGraph::freeze_attributed(&people);
    let mut pattern = Pattern::new();
    let a = pattern.node(PatternNode::var("a").with_label("person"));
    let b = pattern.node(PatternNode::var("b"));
    let c = pattern.node(PatternNode::var("c"));
    pattern.edge(a, b, Some("knows")).unwrap();
    pattern.edge(b, c, Some("knows")).unwrap();

    // (a) Unlimited guard: same binding set as the ungoverned run.
    let plain = match_pattern_vectorized_auto(&fz, &pattern);
    let governed =
        match_pattern_vectorized_auto_governed(&fz, &pattern, &ExecutionGuard::unlimited())
            .unwrap();
    assert_eq!(plain.to_bindings(), governed.to_bindings());
    assert!(!plain.is_empty(), "workload has 2-hop chains");

    // (b) Each limit family interrupts with its own structured reason.
    let cases: [(Limits, InterruptReason); 3] = [
        (
            Limits::none().with_deadline(Duration::from_millis(0)),
            InterruptReason::Deadline,
        ),
        (Limits::none().with_node_visits(5), InterruptReason::Budget),
        (Limits::none().with_rows(1), InterruptReason::Budget),
    ];
    for (limits, want) in cases {
        let guard = ExecutionGuard::new(limits);
        let err = match_pattern_vectorized_auto_governed(&fz, &pattern, &guard).unwrap_err();
        match err {
            GdmError::Interrupted { reason, partial } => {
                assert_eq!(reason, want);
                assert!(
                    (partial as usize) <= plain.len(),
                    "partial rows cannot exceed the full result"
                );
            }
            other => panic!("expected structured Interrupted, got {other}"),
        }
    }

    // (c) A row limit trips *after* emitting rows up to the cap: the
    // partial count in the error equals the limit.
    let guard = ExecutionGuard::new(Limits::none().with_rows(3));
    match match_pattern_vectorized_auto_governed(&fz, &pattern, &guard).unwrap_err() {
        GdmError::Interrupted { partial, .. } => {
            assert!(
                partial >= 3,
                "rows up to the cap were produced, got {partial}"
            )
        }
        other => panic!("expected Interrupted, got {other}"),
    }
}

/// The same gauntlet for the morsel-driven parallel executor, forced
/// onto multiple workers so the guard really is shared across threads
/// (a single-core CI machine must not silently skip the interesting
/// path): (a) byte-identical to the sequential vectorized run under an
/// unlimited guard, (b) structured `Interrupted` with the right reason
/// under each limit family, with the partial count reflecting rows
/// settled across *all* workers, and (c) a panic-injected morsel
/// degrades to the sequential rerun without changing the answer.
#[test]
fn governed_par_vectorized_gauntlet_under_forced_workers() {
    use graph_db_models::algo::par_vectorized::match_pattern_par_vectorized_forced;
    use graph_db_models::algo::parallel::inject_worker_panic_once;
    use graph_db_models::algo::planned::auto_domains;
    use graph_db_models::algo::{match_pattern_vectorized_auto, FrozenGraph};
    use graph_db_models::core::{GdmError, InterruptReason};

    let people = social_graph(SocialParams {
        people: 300,
        communities: 4,
        intra_edges: 4,
        inter_edges: 1,
        seed: 7,
    });
    let fz = FrozenGraph::freeze_attributed(&people);
    let mut pattern = Pattern::new();
    let a = pattern.node(PatternNode::var("a").with_label("person"));
    let b = pattern.node(PatternNode::var("b"));
    let c = pattern.node(PatternNode::var("c"));
    pattern.edge(a, b, Some("knows")).unwrap();
    pattern.edge(b, c, Some("knows")).unwrap();
    let domains = auto_domains(&fz, &pattern);

    // (a) Unlimited guard, 4 forced workers: byte-identical table.
    let plain = match_pattern_vectorized_auto(&fz, &pattern);
    assert!(!plain.is_empty(), "workload has 2-hop chains");
    let unlimited = ExecutionGuard::unlimited();
    let par =
        match_pattern_par_vectorized_forced(&fz, &pattern, &domains, 4, Some(&unlimited)).unwrap();
    assert_eq!(par, plain, "parallel result must match byte-for-byte");

    // (b) Each limit family interrupts with its structured reason even
    // when the trip happens on a worker thread; the merged partial
    // count never exceeds the full result.
    let cases: [(Limits, InterruptReason); 3] = [
        (
            Limits::none().with_deadline(Duration::from_millis(0)),
            InterruptReason::Deadline,
        ),
        (Limits::none().with_node_visits(5), InterruptReason::Budget),
        (Limits::none().with_rows(1), InterruptReason::Budget),
    ];
    for (limits, want) in cases {
        let guard = ExecutionGuard::new(limits);
        let err = match_pattern_par_vectorized_forced(&fz, &pattern, &domains, 4, Some(&guard))
            .unwrap_err();
        match err {
            GdmError::Interrupted { reason, partial } => {
                assert_eq!(reason, want);
                assert!(
                    (partial as usize) <= plain.len(),
                    "partial rows cannot exceed the full result"
                );
            }
            other => panic!("expected structured Interrupted, got {other}"),
        }
    }

    // Cancellation from outside the call is an interrupt too — the
    // workers see the flag at their next guard check.
    let guard = ExecutionGuard::unlimited();
    guard.cancel_token().cancel();
    let err =
        match_pattern_par_vectorized_forced(&fz, &pattern, &domains, 4, Some(&guard)).unwrap_err();
    assert!(err.is_interrupted(), "cancel must interrupt, got {err}");

    // (c) A panic injected into one worker poisons its morsel; the
    // executor discards the parallel attempt and reruns sequentially,
    // so the caller still gets the full, correct table.
    inject_worker_panic_once();
    let recovered = match_pattern_par_vectorized_forced(&fz, &pattern, &domains, 4, None).unwrap();
    assert_eq!(
        recovered, plain,
        "a poisoned morsel must degrade to the sequential answer, not change it"
    );
}
