//! Seeded fuzzing of the server's wire-protocol surface.
//!
//! Several hundred adversarial connections throw malformed input at a
//! live server — random bytes, truncated frames, oversized length
//! prefixes, garbage JSON, structurally valid JSON of the wrong shape,
//! and post-`Hello` corruption — and assert the contract the hardening
//! work promises: the server never panics, never hangs, answers each
//! mangled frame with a structured `Error` (or a clean close when the
//! bytes are beyond parsing), counts every incident in `frame_errors`,
//! and keeps serving well-formed sessions throughout. The corpus is
//! generated from a fixed seed, so a failure reproduces exactly.

use graph_db_models::core::props;
use graph_db_models::engines::{make_engine, EngineKind};
use graph_db_models::server::protocol::{Response, MAX_FRAME};
use graph_db_models::server::{serve, Client, ServerConfig, TenantConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const SEED: u64 = 0xF422_0001;
const CASES: usize = 300;

fn server() -> (graph_db_models::server::ServerHandle, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("gdm-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut db = make_engine(EngineKind::Neo4j, &dir).unwrap();
    for i in 0..10 {
        db.create_node(Some("person"), props! { "name" => format!("p{i}") })
            .unwrap();
    }
    let mut config = ServerConfig {
        workers: 4,
        // Torn frames otherwise wait out the full default deadline.
        frame_deadline: Duration::from_millis(300),
        idle_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    config.tenants.push(TenantConfig::new("alpha", 1));
    let handle = serve(db.serving_snapshot().unwrap(), config).unwrap();
    (handle, dir)
}

/// One adversarial payload, chosen and filled from the per-case rng.
fn corpus_case(rng: &mut StdRng) -> Vec<u8> {
    let hello = br#"{"Hello":{"tenant":"alpha","secret":null}}"#;
    let frame = |body: &[u8]| {
        let mut f = Vec::with_capacity(4 + body.len());
        f.extend_from_slice(&(body.len() as u32).to_be_bytes());
        f.extend_from_slice(body);
        f
    };
    let garbage = |rng: &mut StdRng, n: usize| -> Vec<u8> {
        (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect()
    };
    match rng.gen_range(0u32..6) {
        // Raw bytes, no framing discipline at all.
        0 => {
            let n = rng.gen_range(1usize..64);
            garbage(rng, n)
        }
        // Well-framed garbage body (not JSON).
        1 => {
            let n = rng.gen_range(1usize..128);
            frame(&garbage(rng, n))
        }
        // Truncated frame: the prefix promises more than arrives.
        2 => {
            let claim = rng.gen_range(16u32..4096);
            let send = rng.gen_range(0usize..16);
            let mut f = claim.to_be_bytes().to_vec();
            f.extend_from_slice(&garbage(rng, send));
            f
        }
        // Oversized length prefix (over MAX_FRAME, up to u32::MAX).
        3 => {
            let claim = rng.gen_range(MAX_FRAME + 1..u32::MAX);
            claim.to_be_bytes().to_vec()
        }
        // Valid JSON, wrong shape for a Request.
        4 => {
            let bodies: [&[u8]; 4] = [
                b"{}",
                b"[1,2,3]",
                br#"{"Hello":"not-a-struct"}"#,
                br#"{"Nonsense":{"x":1}}"#,
            ];
            frame(bodies[rng.gen_range(0usize..bodies.len())])
        }
        // A legitimate Hello, then corruption mid-session.
        _ => {
            let mut f = frame(hello);
            let n = rng.gen_range(1usize..96);
            f.extend_from_slice(&frame(&garbage(rng, n)));
            f
        }
    }
}

#[test]
fn fuzzed_frames_get_structured_errors_and_never_wedge_the_server() {
    let (handle, dir) = server();
    let addr = handle.addr();
    let before = handle.stats();
    let mut structured_errors = 0u64;

    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(SEED.wrapping_add(case as u64));
        let payload = corpus_case(&mut rng);
        let mut s = TcpStream::connect(addr).expect("fuzz connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
        // The server may close mid-write (it already rejected the
        // prefix); a broken pipe here is the server being *correct*.
        let _ = s.write_all(&payload);
        let _ = s.shutdown(std::net::Shutdown::Write);
        // Drain whatever the server answers until it closes. The read
        // deadline bounds this: a hang would fail the test, not CI.
        let mut reply = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => reply.extend_from_slice(&buf[..n]),
                Err(e) => {
                    let timed_out = matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    );
                    assert!(
                        !timed_out,
                        "case {case}: server went silent without closing"
                    );
                    break; // reset/abort: also a close
                }
            }
        }
        if reply.windows(b"Error".len()).any(|w| w == b"Error") {
            structured_errors += 1;
        }

        // Every tenth case, prove a well-formed session still works —
        // the fuzz traffic must not degrade real service.
        if case % 10 == 0 {
            let mut c = Client::connect(addr).expect("healthy connect");
            match c.hello("alpha", None).expect("healthy hello") {
                Response::Welcome(_) => {}
                other => panic!("case {case}: expected Welcome, got {other:?}"),
            }
            match c
                .query("MATCH (p:person) RETURN p.name")
                .expect("healthy query")
            {
                Response::Rows(r) => assert_eq!(r.rows.len(), 10),
                other => panic!("case {case}: expected Rows, got {other:?}"),
            }
            c.goodbye().ok();
        }
    }

    let after = handle.stats();
    let frame_errors = after.frame_errors - before.frame_errors;
    assert!(
        frame_errors >= (CASES / 2) as u64,
        "most corpus cases must be counted as frame errors, got {frame_errors}"
    );
    assert!(
        structured_errors >= (CASES / 10) as u64,
        "parseable-but-wrong frames must earn structured Error replies, got {structured_errors}"
    );
    assert_eq!(
        after.queries_poisoned, 0,
        "fuzzing must never reach a panic"
    );

    // Final proof of life, then a clean drain.
    let mut c = Client::connect(addr).expect("final connect");
    c.hello("alpha", None).expect("final hello");
    assert!(matches!(
        c.query("MATCH (p:person) RETURN p.name").unwrap(),
        Response::Rows(_)
    ));
    c.goodbye().ok();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
