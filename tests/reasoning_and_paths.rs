//! Integration tests for the reasoning stack and the reachability
//! family: Datalog fixpoints checked against graph algorithms, regular
//! path queries across engine facades, and the NP-hard budget
//! behaviour the paper's complexity notes call for.

use gdm_bench::rdf_family_tree;
use graph_db_models::algo::paths::{is_reachable, reachable_set};
use graph_db_models::algo::regular::{regular_simple_paths, LabelRegex};
use graph_db_models::core::{Direction, GdmError, NodeId};
use graph_db_models::graphs::rdf::Term;
use graph_db_models::graphs::SimpleGraph;
use graph_db_models::query::datalog::Program;

#[test]
fn datalog_ancestor_matches_bfs_reachability_on_generated_trees() {
    let g = rdf_family_tree(4, 8, 13);
    // Datalog transitive closure over `parent`.
    let mut prog = Program::new();
    prog.load_rdf(&g);
    prog.add_rules(
        "ancestor(X, Y) :- parent(X, Y).\n\
         ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).",
    )
    .unwrap();
    prog.evaluate();

    // Graph-side oracle: BFS over the parent-edge subgraph. The RDF
    // view's edges include `age` literals, so restrict by predicate.
    let parent_pred = g.term_id(&Term::iri("parent")).unwrap();
    let mut parent_only = SimpleGraph::directed();
    let mut ids: std::collections::HashMap<u32, NodeId> = std::collections::HashMap::new();
    for (s, p, o) in g.match_pattern(None, None, None) {
        if p != parent_pred {
            continue;
        }
        let sid = *ids.entry(s).or_insert_with(|| parent_only.add_node());
        let oid = *ids.entry(o).or_insert_with(|| parent_only.add_node());
        parent_only.add_edge(sid, oid).unwrap();
    }

    for (&term, &node) in &ids {
        let name = g.term(term).unwrap().text();
        let descendants = prog
            .query_str(&format!("ancestor({name}, X)"))
            .unwrap()
            .len();
        // BFS count excluding the start node itself.
        let bfs = reachable_set(&parent_only, node, Direction::Outgoing).len() - 1;
        assert_eq!(descendants, bfs, "mismatch at {name}");
    }
}

#[test]
fn stratified_joins_derive_siblinghood() {
    let mut prog = Program::new();
    prog.add_rules(
        "parent(ana, ben). parent(ana, bea). parent(carl, dan).\n\
         sibling(X, Y) :- parent(P, X), parent(P, Y).",
    )
    .unwrap();
    prog.evaluate();
    // sibling includes the reflexive pairs — filter with a goal using
    // distinct variables and check the full relation size: for ana's 2
    // children, 2x2 = 4 pairs; for carl's single child, 1.
    assert_eq!(prog.query_str("sibling(X, Y)").unwrap().len(), 5);
    assert_eq!(prog.query_str("sibling(ben, bea)").unwrap().len(), 1);
    assert_eq!(prog.query_str("sibling(ben, dan)").unwrap().len(), 0);
}

#[test]
fn regular_simple_paths_budget_scales_with_search_space() {
    // A ladder with parallel rails creates exponentially many simple
    // paths; tiny budgets must fail loudly, generous ones succeed.
    let mut g = SimpleGraph::directed();
    let rungs = 12;
    let top: Vec<NodeId> = (0..rungs).map(|_| g.add_node()).collect();
    let bottom: Vec<NodeId> = (0..rungs).map(|_| g.add_node()).collect();
    for i in 0..rungs - 1 {
        g.add_labeled_edge(top[i], top[i + 1], "r").unwrap();
        g.add_labeled_edge(bottom[i], bottom[i + 1], "r").unwrap();
        g.add_labeled_edge(top[i], bottom[i + 1], "r").unwrap();
        g.add_labeled_edge(bottom[i], top[i + 1], "r").unwrap();
    }
    let regex = LabelRegex::compile("r+").unwrap();
    let tiny = regular_simple_paths(&g, top[0], top[rungs - 1], &regex, 50);
    assert!(matches!(tiny, Err(GdmError::BudgetExhausted(_))));
    let generous = regular_simple_paths(&g, top[0], top[rungs - 1], &regex, 2_000_000).unwrap();
    // 2^(rungs-2) paths end at the top-right corner (each step picks a
    // rail, last step must land on top).
    assert_eq!(generous.len(), 1 << (rungs - 2));
    // All returned paths are simple and correctly labeled.
    for p in &generous {
        let mut seen = std::collections::HashSet::new();
        assert!(p.nodes.iter().all(|n| seen.insert(*n)), "path not simple");
        assert_eq!(p.nodes.len(), p.edges.len() + 1);
    }
}

#[test]
fn reachability_is_monotone_under_edge_insertion() {
    let mut g = SimpleGraph::directed();
    let nodes: Vec<NodeId> = (0..30).map(|_| g.add_node()).collect();
    // Before: two disconnected chains.
    for i in 0..14 {
        g.add_edge(nodes[i], nodes[i + 1]).unwrap();
    }
    for i in 15..29 {
        g.add_edge(nodes[i], nodes[i + 1]).unwrap();
    }
    assert!(!is_reachable(&g, nodes[0], nodes[29]));
    let before = reachable_set(&g, nodes[0], Direction::Outgoing).len();
    // Bridge the chains.
    g.add_edge(nodes[14], nodes[15]).unwrap();
    assert!(is_reachable(&g, nodes[0], nodes[29]));
    let after = reachable_set(&g, nodes[0], Direction::Outgoing).len();
    assert_eq!(before, 15);
    assert_eq!(after, 30);
}
