//! Property tests for the paper's modeling claim (Section III.A):
//! random hypergraphs and attributed graphs survive the round trip
//! through their nested-graph embeddings, and snapshots preserve ids.

use graph_db_models::core::{AttributedView, GraphView, NodeId, PropertyMap, Value};
use graph_db_models::graphs::nested::translate;
use graph_db_models::graphs::{HyperGraph, PropertyGraph};
use proptest::prelude::*;

fn props_strategy() -> impl Strategy<Value = PropertyMap> {
    prop::collection::vec(("[a-z]{1,5}", prop::num::i64::ANY), 0..4)
        .prop_map(|pairs| pairs.into_iter().map(|(k, v)| (k, Value::Int(v))).collect())
}

fn hyper_strategy() -> impl Strategy<Value = HyperGraph> {
    (
        2usize..8,
        prop::collection::vec(prop::collection::vec(0usize..8, 1..5), 0..8),
    )
        .prop_map(|(n, links)| {
            let mut h = HyperGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|i| h.add_node(&format!("t{}", i % 3), PropertyMap::new()))
                .collect();
            let mut link_ids = Vec::new();
            for (li, targets) in links.into_iter().enumerate() {
                let atoms: Vec<_> = targets
                    .iter()
                    .map(|&t| {
                        // Links may target earlier links (edges on edges).
                        if t % 4 == 3 && !link_ids.is_empty() {
                            link_ids[t % link_ids.len()]
                        } else {
                            nodes[t % n]
                        }
                    })
                    .collect();
                let id = h
                    .add_link(&format!("l{}", li % 2), &atoms, PropertyMap::new())
                    .expect("targets exist");
                link_ids.push(id);
            }
            h
        })
}

fn property_graph_strategy() -> impl Strategy<Value = PropertyGraph> {
    (
        1usize..8,
        prop::collection::vec((0usize..8, 0usize..8, props_strategy()), 0..12),
        prop::collection::vec(props_strategy(), 1..8),
    )
        .prop_map(|(n, edges, node_props)| {
            let mut g = PropertyGraph::new();
            let nodes: Vec<NodeId> = (0..n)
                .map(|i| {
                    let props = node_props[i % node_props.len()].clone();
                    g.add_node(&format!("t{}", i % 3), props)
                })
                .collect();
            for (a, b, props) in edges {
                g.add_edge(nodes[a % n], nodes[b % n], "rel", props)
                    .expect("nodes exist");
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hypergraph_round_trip(h in hyper_strategy()) {
        let nested = translate::hyper_to_nested(&h);
        let back = translate::nested_to_hyper(&nested).expect("well-formed embedding");
        prop_assert_eq!(back.node_count(), h.node_count());
        prop_assert_eq!(back.link_count(), h.link_count());
        // Arity multiset is preserved.
        let mut arities: Vec<usize> =
            h.link_ids().iter().map(|&l| h.arity(l).expect("live")).collect();
        let mut back_arities: Vec<usize> =
            back.link_ids().iter().map(|&l| back.arity(l).expect("live")).collect();
        arities.sort_unstable();
        back_arities.sort_unstable();
        prop_assert_eq!(arities, back_arities);
        // Label multiset is preserved.
        let mut labels: Vec<String> = h
            .node_ids().iter().chain(h.link_ids().iter())
            .map(|&a| h.label(a).expect("live").to_owned()).collect();
        let mut back_labels: Vec<String> = back
            .node_ids().iter().chain(back.link_ids().iter())
            .map(|&a| back.label(a).expect("live").to_owned()).collect();
        labels.sort();
        back_labels.sort();
        prop_assert_eq!(labels, back_labels);
    }

    #[test]
    fn property_graph_round_trip(g in property_graph_strategy()) {
        let nested = translate::property_to_nested(&g);
        let back = translate::nested_to_property(&nested).expect("well-formed embedding");
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        // Node label + attribute multisets survive.
        let fingerprint = |pg: &PropertyGraph| {
            let mut rows: Vec<String> = Vec::new();
            pg.visit_nodes(&mut |n| {
                rows.push(format!(
                    "{}:{}",
                    pg.node_label_text(n).expect("live"),
                    pg.node_properties(n).expect("live")
                ));
            });
            rows.sort();
            rows
        };
        prop_assert_eq!(fingerprint(&g), fingerprint(&back));
        // Edge attribute multisets survive.
        let edge_fp = |pg: &PropertyGraph| {
            let mut rows: Vec<String> = pg
                .edge_ids()
                .into_iter()
                .map(|e| format!(
                    "{}:{}",
                    pg.edge_label_text(e).expect("live"),
                    pg.edge_properties(e).expect("live")
                ))
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(edge_fp(&g), edge_fp(&back));
    }

    #[test]
    fn property_snapshot_preserves_ids(g in property_graph_strategy()) {
        let snapshot = g.to_snapshot();
        let back = PropertyGraph::from_snapshot(&snapshot).expect("snapshot decodes");
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        let mut nodes = Vec::new();
        g.visit_nodes(&mut |n| nodes.push(n));
        for n in nodes {
            prop_assert_eq!(
                back.node_label_text(n).expect("same id space"),
                g.node_label_text(n).expect("live")
            );
            prop_assert_eq!(
                back.node_property(n, "zzz"),
                g.node_property(n, "zzz")
            );
        }
    }

    #[test]
    fn graphml_round_trips_random_property_graphs(g in property_graph_strategy()) {
        use graph_db_models::graphs::graphml;
        let xml = graphml::export(&g).expect("exportable (int props only)");
        let back = graphml::import(&xml).expect("imports");
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        let fingerprint = |pg: &PropertyGraph| {
            let mut rows: Vec<String> = Vec::new();
            pg.visit_nodes(&mut |n| {
                rows.push(format!(
                    "{}:{}",
                    pg.node_label_text(n).expect("live"),
                    pg.node_properties(n).expect("live")
                ));
            });
            rows.sort();
            rows
        };
        prop_assert_eq!(fingerprint(&g), fingerprint(&back));
    }

    #[test]
    fn hyper_snapshot_preserves_structure(h in hyper_strategy()) {
        let back = HyperGraph::from_snapshot(&h.to_snapshot()).expect("snapshot decodes");
        prop_assert_eq!(back.node_count(), h.node_count());
        prop_assert_eq!(back.link_count(), h.link_count());
        for l in h.link_ids() {
            prop_assert_eq!(back.targets(l).expect("live"), h.targets(l).expect("live"));
        }
        for n in h.node_ids() {
            prop_assert_eq!(
                back.incidence(n).expect("live"),
                h.incidence(n).expect("live")
            );
        }
    }
}
