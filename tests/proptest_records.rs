//! Differential property test for the Neo4j-style record store: its
//! relationship chains must agree with a plain adjacency oracle under
//! random create/delete sequences, and chain integrity must hold at
//! every step.

use graph_db_models::storage::RecordStore;
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    CreateNode,
    CreateRel(usize, usize, u32),
    DeleteRel(usize),
    DeleteNode(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::CreateNode),
        5 => (0usize..32, 0usize..32, 0u32..4).prop_map(|(a, b, t)| Op::CreateRel(a, b, t)),
        2 => (0usize..32).prop_map(Op::DeleteRel),
        1 => (0usize..32).prop_map(Op::DeleteNode),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_chains_match_adjacency_oracle(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut store = RecordStore::new();
        // Oracle: set of (rel id, from, to, type).
        let mut oracle: HashSet<(u32, u32, u32, u32)> = HashSet::new();
        let mut nodes: Vec<u32> = Vec::new();
        let mut rels: Vec<u32> = Vec::new();

        for op in ops {
            match op {
                Op::CreateNode => nodes.push(store.create_node(0)),
                Op::CreateRel(a, b, t) => {
                    if nodes.is_empty() { continue; }
                    let (f, to) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
                    let id = store.create_rel(f, to, t).expect("endpoints live");
                    oracle.insert((id, f, to, t));
                    rels.push(id);
                }
                Op::DeleteRel(i) => {
                    if rels.is_empty() { continue; }
                    let id = rels.swap_remove(i % rels.len());
                    store.delete_rel(id).expect("live rel");
                    oracle.retain(|(r, ..)| *r != id);
                }
                Op::DeleteNode(i) => {
                    if nodes.is_empty() { continue; }
                    let n = nodes.swap_remove(i % nodes.len());
                    store.delete_node(n).expect("live node");
                    oracle.retain(|(_, f, t, _)| *f != n && *t != n);
                    rels.retain(|r| oracle.iter().any(|(or, ..)| or == r));
                }
            }
            store.check_chains().expect("chains stay consistent");
        }

        prop_assert_eq!(store.rel_count(), oracle.len());
        prop_assert_eq!(store.node_count(), nodes.len());
        // Every oracle rel visible from both endpoints; nothing extra.
        for &n in &nodes {
            let mut seen: Vec<(u32, u32, u32, u32)> = Vec::new();
            store.visit_rels(n, &mut |e| seen.push((e.id, e.from, e.to, e.rel_type)));
            let expected: HashSet<(u32, u32, u32, u32)> = oracle
                .iter()
                .copied()
                .filter(|(_, f, t, _)| *f == n || *t == n)
                .collect();
            let got: HashSet<(u32, u32, u32, u32)> = seen.into_iter().collect();
            prop_assert_eq!(got, expected, "node {}", n);
        }
    }

    #[test]
    fn serialization_round_trips_arbitrary_histories(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut store = RecordStore::new();
        let mut nodes: Vec<u32> = Vec::new();
        let mut rels: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Op::CreateNode => nodes.push(store.create_node(1)),
                Op::CreateRel(a, b, t) => {
                    if nodes.is_empty() { continue; }
                    rels.push(
                        store
                            .create_rel(nodes[a % nodes.len()], nodes[b % nodes.len()], t)
                            .expect("live"),
                    );
                }
                Op::DeleteRel(i) => {
                    if rels.is_empty() { continue; }
                    store.delete_rel(rels.swap_remove(i % rels.len())).expect("live");
                }
                Op::DeleteNode(i) => {
                    if nodes.is_empty() { continue; }
                    let n = nodes.swap_remove(i % nodes.len());
                    store.delete_node(n).expect("live");
                    // Drop rels that died with the node.
                    rels.retain(|&r| store.rel(r).is_ok());
                }
            }
        }
        let restored = RecordStore::from_bytes(&store.to_bytes()).expect("decodes");
        prop_assert_eq!(restored.node_count(), store.node_count());
        prop_assert_eq!(restored.rel_count(), store.rel_count());
        restored.check_chains().expect("restored chains consistent");
        for &n in &nodes {
            let mut a = Vec::new();
            let mut b = Vec::new();
            store.visit_rels(n, &mut |e| a.push(e.id));
            restored.visit_rels(n, &mut |e| b.push(e.id));
            prop_assert_eq!(a, b);
        }
    }
}
