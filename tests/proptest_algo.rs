#![allow(clippy::needless_range_loop)] // (i, j) index pairs against the oracle matrix

//! Property tests for the essential-query algorithms: the fast
//! implementations are checked against brute-force oracles on random
//! graphs, and the codec's order preservation is checked against the
//! value ordering.

use graph_db_models::algo::paths::{
    bidirectional_shortest_path, distance, is_reachable, shortest_path,
};
use graph_db_models::algo::pattern::{
    canonical, match_pattern, match_pattern_brute, Pattern, PatternNode,
};
use graph_db_models::algo::regular::{regular_path_exists, LabelRegex};
use graph_db_models::core::{GraphView, NodeId, Value};
use graph_db_models::graphs::SimpleGraph;
use graph_db_models::storage::codec;
use proptest::prelude::*;

/// A random small directed graph with labels from a 3-letter alphabet.
fn graph_strategy() -> impl Strategy<Value = (SimpleGraph, usize)> {
    (
        2usize..10,
        prop::collection::vec((0usize..10, 0usize..10, 0u8..3), 0..25),
    )
        .prop_map(|(n, edges)| {
            let mut g = SimpleGraph::directed();
            let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
            for (a, b, l) in edges {
                let label = ["a", "b", "c"][l as usize];
                g.add_labeled_edge(nodes[a % n], nodes[b % n], label)
                    .expect("nodes exist");
            }
            (g, n)
        })
}

/// Floyd–Warshall oracle for reachability and distance.
#[allow(clippy::needless_range_loop)] // index pairs are the point here
fn oracle_distances(g: &SimpleGraph, n: usize) -> Vec<Vec<Option<usize>>> {
    let mut dist = vec![vec![None; n]; n];
    for (i, row) in dist.iter_mut().enumerate().take(n) {
        row[i] = Some(0);
    }
    for i in 0..n {
        g.visit_out_edges(NodeId(i as u64), &mut |e| {
            let j = e.to.raw() as usize;
            if i != j {
                dist[i][j] = Some(1);
            }
        });
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if let (Some(a), Some(b)) = (dist[i][k], dist[k][j]) {
                    if dist[i][j].is_none_or(|d| d > a + b) {
                        dist[i][j] = Some(a + b);
                    }
                }
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_matches_floyd_warshall((g, n) in graph_strategy()) {
        let oracle = oracle_distances(&g, n);
        for i in 0..n {
            for j in 0..n {
                let a = NodeId(i as u64);
                let b = NodeId(j as u64);
                prop_assert_eq!(distance(&g, a, b), oracle[i][j], "{} -> {}", i, j);
                prop_assert_eq!(is_reachable(&g, a, b), oracle[i][j].is_some());
                if let Some(p) = shortest_path(&g, a, b) {
                    prop_assert_eq!(Some(p.len()), oracle[i][j]);
                    // The path must be a real walk.
                    for w in p.nodes.windows(2) {
                        let mut connected = false;
                        g.visit_out_edges(w[0], &mut |e| connected |= e.to == w[1]);
                        prop_assert!(connected);
                    }
                }
            }
        }
    }

    #[test]
    fn bidirectional_bfs_is_exact((g, n) in graph_strategy()) {
        for i in 0..n {
            for j in 0..n {
                let a = NodeId(i as u64);
                let b = NodeId(j as u64);
                let uni = shortest_path(&g, a, b).map(|p| p.len());
                let bi = bidirectional_shortest_path(&g, a, b).map(|p| p.len());
                prop_assert_eq!(uni, bi, "{} -> {}", i, j);
                if let Some(p) = bidirectional_shortest_path(&g, a, b) {
                    prop_assert_eq!(p.nodes.len(), p.edges.len() + 1);
                    for w in p.nodes.windows(2) {
                        let mut ok = false;
                        g.visit_out_edges(w[0], &mut |e| ok |= e.to == w[1]);
                        prop_assert!(ok, "stitched path has a gap");
                    }
                }
            }
        }
    }

    #[test]
    fn vf2_matches_brute_force((g, _n) in graph_strategy()) {
        // Patterns: single edge, wedge, triangle — with label filters.
        let patterns: Vec<Pattern> = {
            let mut out = Vec::new();
            for labels in [[None, None], [Some("a"), None], [Some("a"), Some("b")]] {
                let mut p = Pattern::new();
                let x = p.node(PatternNode::var("x"));
                let y = p.node(PatternNode::var("y"));
                let z = p.node(PatternNode::var("z"));
                p.edge(x, y, labels[0]).expect("valid");
                p.edge(y, z, labels[1]).expect("valid");
                out.push(p);
            }
            let mut tri = Pattern::new();
            let x = tri.node(PatternNode::var("x"));
            let y = tri.node(PatternNode::var("y"));
            let z = tri.node(PatternNode::var("z"));
            tri.edge(x, y, None).expect("valid");
            tri.edge(y, z, None).expect("valid");
            tri.edge(z, x, None).expect("valid");
            out.push(tri);
            out
        };
        for p in &patterns {
            let fast = canonical(&match_pattern(&g, p));
            let slow = canonical(&match_pattern_brute(&g, p));
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn regular_walks_match_bounded_enumeration((g, n) in graph_strategy()) {
        // Oracle: enumerate all walks up to length 6 and test words.
        let regexes = ["a b", "a+", "(a | b) c?", ". . ."];
        for src in 0..n.min(3) {
            for dst in 0..n.min(3) {
                let a = NodeId(src as u64);
                let b = NodeId(dst as u64);
                for rtext in regexes {
                    let regex = LabelRegex::compile(rtext).expect("valid");
                    let fast = regular_path_exists(&g, a, b, &regex);
                    let slow = oracle_walk_exists(&g, a, b, &regex, 6);
                    // The product automaton has no length bound, so it
                    // may accept where the bounded oracle cannot — but
                    // the regexes above cap at length 6 via their own
                    // structure except `a+`; check implication instead
                    // of equality for unbounded expressions.
                    if rtext == "a+" {
                        prop_assert!(!slow || fast, "oracle found, algo missed");
                    } else {
                        prop_assert_eq!(fast, slow, "{} {} -> {}", rtext, src, dst);
                    }
                }
            }
        }
    }

    #[test]
    fn codec_preserves_value_order(values in prop::collection::vec(value_strategy(), 2..12)) {
        for a in &values {
            for b in &values {
                let ea = codec::encoded_value(a);
                let eb = codec::encoded_value(b);
                let vo = a.total_cmp(b);
                if vo != std::cmp::Ordering::Equal {
                    prop_assert_eq!(ea.cmp(&eb), vo, "{:?} vs {:?}", a, b);
                }
            }
        }
        // Round trips.
        for v in &values {
            let enc = codec::encoded_value(v);
            let mut pos = 0;
            let back = codec::decode_value(&enc, &mut pos).expect("decode");
            prop_assert_eq!(pos, enc.len());
            prop_assert_eq!(&back, v);
        }
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        prop::bool::ANY.prop_map(Value::Bool),
        prop::num::i64::ANY.prop_map(Value::Int),
        // Finite floats: NaN has a stable order but equality testing
        // with round-trip assertions would need special casing.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

/// Brute-force: does any walk of length ≤ `max_len` spell a word in
/// the language?
fn oracle_walk_exists(
    g: &SimpleGraph,
    a: NodeId,
    b: NodeId,
    regex: &LabelRegex,
    max_len: usize,
) -> bool {
    let mut stack: Vec<(NodeId, Vec<String>)> = vec![(a, Vec::new())];
    while let Some((node, word)) = stack.pop() {
        if node == b {
            let refs: Vec<&str> = word.iter().map(String::as_str).collect();
            if regex.accepts(refs) {
                return true;
            }
        }
        if word.len() >= max_len {
            continue;
        }
        g.visit_out_edges(node, &mut |e| {
            let label = e
                .label
                .and_then(|s| g.label_text(s))
                .unwrap_or("")
                .to_owned();
            let mut next = word.clone();
            next.push(label);
            stack.push((e.to, next));
        });
    }
    false
}
