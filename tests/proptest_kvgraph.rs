//! Differential property test: the KV-backed graph layout (the
//! Filament/VertexDB substrate) must behave exactly like the in-memory
//! simple graph under random mutation sequences — including over the
//! *disk* B-tree backend with a tiny buffer pool, where every read
//! churns pages.

use graph_db_models::core::{EdgeId, GraphView, NodeId, PropertyMap};
use graph_db_models::engines::kvgraph::KvGraph;
use graph_db_models::graphs::SimpleGraph;
use graph_db_models::storage::{BufferPool, DiskBTree, MemKv};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    AddNode(Option<u8>),
    AddEdge(usize, usize, Option<u8>),
    DeleteEdge(usize),
    DeleteNode(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop::option::of(0u8..3).prop_map(Op::AddNode),
        5 => (0usize..64, 0usize..64, prop::option::of(0u8..3))
            .prop_map(|(a, b, l)| Op::AddEdge(a, b, l)),
        1 => (0usize..64).prop_map(Op::DeleteEdge),
        1 => (0usize..64).prop_map(Op::DeleteNode),
    ]
}

fn label_of(l: Option<u8>) -> Option<&'static str> {
    l.map(|i| ["alpha", "beta", "gamma"][i as usize])
}

/// Applies the op sequence to both structures, tracking live ids, and
/// compares full adjacency after every few steps.
fn run_differential(ops: Vec<Op>, mut kv: KvGraph) {
    let mut oracle = SimpleGraph::directed();
    // Parallel id lists (same insertion order => same positional ids).
    let mut nodes_kv: Vec<NodeId> = Vec::new();
    let mut nodes_or: Vec<NodeId> = Vec::new();
    let mut edges_kv: Vec<EdgeId> = Vec::new();
    let mut edges_or: Vec<EdgeId> = Vec::new();

    for op in ops {
        match op {
            Op::AddNode(l) => {
                let label = label_of(l);
                nodes_kv.push(kv.add_node(label, &PropertyMap::new()).expect("add"));
                nodes_or.push(match label {
                    Some(t) => oracle.add_labeled_node(t),
                    None => oracle.add_node(),
                });
            }
            Op::AddEdge(a, b, l) => {
                if nodes_kv.is_empty() {
                    continue;
                }
                let (a, b) = (a % nodes_kv.len(), b % nodes_kv.len());
                let label = label_of(l);
                let in_kv = kv.add_edge(nodes_kv[a], nodes_kv[b], label, &PropertyMap::new());
                let in_or = match label {
                    Some(t) => oracle.add_labeled_edge(nodes_or[a], nodes_or[b], t),
                    None => oracle.add_edge(nodes_or[a], nodes_or[b]),
                };
                match (in_kv, in_or) {
                    (Ok(e1), Ok(e2)) => {
                        edges_kv.push(e1);
                        edges_or.push(e2);
                    }
                    (Err(_), Err(_)) => {} // both deleted endpoints
                    (a, b) => panic!("divergence on AddEdge: {a:?} vs {b:?}"),
                }
            }
            Op::DeleteEdge(i) => {
                if edges_kv.is_empty() {
                    continue;
                }
                let i = i % edges_kv.len();
                let r1 = kv.delete_edge(edges_kv[i]);
                let r2 = oracle.remove_edge(edges_or[i]);
                assert_eq!(r1.is_ok(), r2.is_ok(), "divergence on DeleteEdge");
                edges_kv.swap_remove(i);
                edges_or.swap_remove(i);
            }
            Op::DeleteNode(i) => {
                if nodes_kv.is_empty() {
                    continue;
                }
                let i = i % nodes_kv.len();
                let r1 = kv.delete_node(nodes_kv[i]);
                let r2 = oracle.remove_node(nodes_or[i]);
                assert_eq!(r1.is_ok(), r2.is_ok(), "divergence on DeleteNode");
                nodes_kv.swap_remove(i);
                nodes_or.swap_remove(i);
            }
        }
    }

    // Full comparison.
    assert_eq!(kv.node_count(), oracle.node_count());
    assert_eq!(kv.edge_count(), oracle.edge_count());
    for (nk, no) in nodes_kv.iter().zip(nodes_or.iter()) {
        // Out-adjacency (targets + labels) must match as multisets.
        let mut out_kv: Vec<(u64, Option<String>)> = Vec::new();
        kv.visit_out_edges(*nk, &mut |e| {
            let pos = nodes_kv
                .iter()
                .position(|x| *x == e.to)
                .expect("live target");
            out_kv.push((
                pos as u64,
                e.label.and_then(|s| kv.label_text(s)).map(str::to_owned),
            ));
        });
        let mut out_or: Vec<(u64, Option<String>)> = Vec::new();
        oracle.visit_out_edges(*no, &mut |e| {
            let pos = nodes_or
                .iter()
                .position(|x| *x == e.to)
                .expect("live target");
            out_or.push((
                pos as u64,
                e.label
                    .and_then(|s| oracle.label_text(s))
                    .map(str::to_owned),
            ));
        });
        out_kv.sort();
        out_or.sort();
        assert_eq!(out_kv, out_or, "out-adjacency mismatch at {nk}");
        assert_eq!(kv.in_degree(*nk), oracle.in_degree(*no));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kvgraph_over_memkv_matches_simple_graph(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let kv = KvGraph::new(Box::new(MemKv::new())).expect("graph");
        run_differential(ops, kv);
    }

    #[test]
    fn kvgraph_over_tiny_pool_btree_matches_simple_graph(ops in prop::collection::vec(op_strategy(), 1..80)) {
        // 3-frame buffer pool: every operation evicts pages, so this
        // exercises writeback correctness, not just the happy path.
        let tree = DiskBTree::new(BufferPool::memory(3)).expect("tree");
        let kv = KvGraph::new(Box::new(tree)).expect("graph");
        run_differential(ops, kv);
    }
}
