//! Crash-safety tests for the durability subsystem.
//!
//! The central property: **recovered state is always a prefix of the
//! committed history.** The crash-point sweep below enforces it at
//! every single byte offset of the log — for each truncation point the
//! recovered store must equal exactly the state after the last
//! committed unit whose commit record fits inside the prefix.

use gdm_core::PropertyMap;
use gdm_engines::{DurableEngine, EngineKind, GraphEngine};
use gdm_storage::{KvStore, MemKv};
use gdm_wal::record::{read_frame, Frame};
use gdm_wal::{DurableKv, FaultFs, Record, SyncPolicy, WalOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn opts() -> WalOptions {
    WalOptions {
        segment_bytes: 1 << 20, // one segment: the sweep cuts raw bytes
        sync: SyncPolicy::Always,
        ..WalOptions::default()
    }
}

const SEG0: &str = "wal-0000000000.seg";

// ---------------------------------------------------------------------
// Record codec: property-based round-trip
// ---------------------------------------------------------------------

fn record_strategy() -> BoxedStrategy<Record> {
    let bytes = || prop::collection::vec(prop::num::u8::ANY, 0..24);
    prop_oneof![
        (1u64..1000).prop_map(|txn| Record::Begin { txn }),
        (0u64..1000, bytes(), bytes()).prop_map(|(txn, key, value)| Record::Put {
            txn,
            key,
            value
        }),
        (0u64..1000, bytes()).prop_map(|(txn, key)| Record::Delete { txn, key }),
        (1u64..1000).prop_map(|txn| Record::Commit { txn }),
        (1u64..1000).prop_map(|txn| Record::Rollback { txn }),
    ]
    .boxed()
}

proptest! {
    /// Any sequence of records framed back-to-back decodes to the same
    /// sequence, consuming every byte.
    #[test]
    fn frame_stream_roundtrips(records in prop::collection::vec(record_strategy(), 0..24)) {
        let mut buf = Vec::new();
        for r in &records {
            r.encode_frame(&mut buf);
        }
        let mut pos = 0usize;
        let mut decoded = Vec::new();
        loop {
            match read_frame(&buf, pos) {
                Frame::Ok { record, consumed } => {
                    decoded.push(record);
                    pos += consumed;
                }
                Frame::Torn => break,
                Frame::Corrupt => panic!("clean stream decoded as corrupt at {pos}"),
            }
        }
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(decoded, records);
    }

    /// Truncating a framed stream anywhere yields a valid prefix of the
    /// records — never garbage, never an error.
    #[test]
    fn truncated_stream_decodes_to_prefix(
        records in prop::collection::vec(record_strategy(), 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        for r in &records {
            r.encode_frame(&mut buf);
            ends.push(buf.len());
        }
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let full_frames = ends.iter().filter(|&&e| e <= cut).count();
        let mut pos = 0usize;
        let mut decoded = 0usize;
        loop {
            match read_frame(&buf[..cut], pos) {
                Frame::Ok { consumed, .. } => {
                    decoded += 1;
                    pos += consumed;
                }
                Frame::Torn => break,
                Frame::Corrupt => panic!("truncation must read as torn, not corrupt"),
            }
        }
        prop_assert_eq!(decoded, full_frames);
    }
}

// ---------------------------------------------------------------------
// Crash-point sweep: every byte offset of a real workload's log
// ---------------------------------------------------------------------

/// (log length after a committed unit, expected store contents then).
type Marks = Vec<(u64, BTreeMap<Vec<u8>, Vec<u8>>)>;

/// Runs a mixed workload (autocommit writes, committed transactions, a
/// rolled-back transaction, deletes) against a fault-injected
/// [`DurableKv`], recording after every *committed unit* the log length
/// and the expected store contents at that point.
fn build_workload() -> (FaultFs, Marks) {
    let fs = FaultFs::new();
    let mut kv = DurableKv::create(fs.clone(), opts(), MemKv::new()).unwrap();
    let mut shadow: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    // (log length so far, expected state) — index 0 is the empty log.
    let mut marks = vec![(0u64, shadow.clone())];
    let mark = |kv: &DurableKv<MemKv, FaultFs>, shadow: &BTreeMap<Vec<u8>, Vec<u8>>| {
        (kv.end_lsn().offset, shadow.clone())
    };

    for i in 0..6u8 {
        kv.put(&[b'a', i], &[i]).unwrap();
        shadow.insert(vec![b'a', i], vec![i]);
        marks.push(mark(&kv, &shadow));
    }
    // A committed transaction: atomic unit of three mutations.
    kv.begin().unwrap();
    kv.put(b"t1/x", b"1").unwrap();
    kv.put(b"t1/y", b"2").unwrap();
    kv.delete(&[b'a', 0]).unwrap();
    kv.commit().unwrap();
    shadow.insert(b"t1/x".to_vec(), b"1".to_vec());
    shadow.insert(b"t1/y".to_vec(), b"2".to_vec());
    shadow.remove(&vec![b'a', 0]);
    marks.push(mark(&kv, &shadow));
    // A rolled-back transaction: must never surface, at any cut.
    kv.begin().unwrap();
    kv.put(b"rolled", b"back").unwrap();
    kv.delete(b"t1/x").unwrap();
    kv.rollback().unwrap();
    marks.push(mark(&kv, &shadow));
    // More autocommit traffic after the rollback.
    for i in 0..4u8 {
        kv.put(&[b'z', i], b"tail").unwrap();
        shadow.insert(vec![b'z', i], b"tail".to_vec());
        marks.push(mark(&kv, &shadow));
    }
    // A second committed transaction overwriting earlier keys.
    kv.begin().unwrap();
    kv.put(&[b'a', 1], b"rewritten").unwrap();
    kv.put(b"t2", b"done").unwrap();
    kv.commit().unwrap();
    shadow.insert(vec![b'a', 1], b"rewritten".to_vec());
    shadow.insert(b"t2".to_vec(), b"done".to_vec());
    marks.push(mark(&kv, &shadow));

    kv.flush().unwrap();
    drop(kv);
    (fs, marks)
}

fn recovered_contents(image: &[u8]) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let fs = FaultFs::new();
    fs.install(SEG0, image);
    let (mut kv, _report) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
    kv.scan_range(b"", None).unwrap().into_iter().collect()
}

/// The acceptance property: for EVERY truncation offset, recovery
/// succeeds and yields exactly the state after the last committed unit
/// wholly contained in the surviving prefix.
#[test]
fn crash_point_sweep_every_byte_offset() {
    let (fs, marks) = build_workload();
    let image = fs.snapshot(SEG0).expect("workload stayed in segment 0");
    assert!(
        image.len() > 200,
        "workload too small to be a meaningful sweep"
    );
    for cut in 0..=image.len() {
        let expected = marks
            .iter()
            .rev()
            .find(|(end, _)| *end <= cut as u64)
            .map(|(_, state)| state)
            .expect("mark 0 is the empty log");
        let got = recovered_contents(&image[..cut]);
        assert_eq!(
            &got,
            expected,
            "cut at byte {cut}/{} recovered wrong state",
            image.len()
        );
    }
}

/// Bit flips anywhere in the log must never surface corrupt data:
/// recovery keeps exactly the records before the damaged frame.
#[test]
fn bit_flip_sweep_recovers_clean_prefix() {
    let (fs, marks) = build_workload();
    let image = fs.snapshot(SEG0).unwrap();
    // Frame start offsets, to map a flipped byte to its frame.
    let mut frame_starts = Vec::new();
    let mut pos = 0usize;
    while let Frame::Ok { consumed, .. } = read_frame(&image, pos) {
        frame_starts.push(pos);
        pos += consumed;
    }
    for flip_at in (0..image.len()).step_by(7) {
        let fs = FaultFs::new();
        fs.install(SEG0, &image);
        fs.flip_bit(SEG0, flip_at, (flip_at % 8) as u8);
        let (mut kv, report) = DurableKv::recover(fs, opts(), MemKv::new()).unwrap();
        let got: BTreeMap<_, _> = kv.scan_range(b"", None).unwrap().into_iter().collect();
        // Everything before the damaged frame must survive intact.
        let damaged_frame_start =
            *frame_starts.iter().rev().find(|&&s| s <= flip_at).unwrap() as u64;
        let expected = marks
            .iter()
            .rev()
            .find(|(end, _)| *end <= damaged_frame_start)
            .map(|(_, state)| state)
            .unwrap();
        assert_eq!(
            &got, expected,
            "flip at byte {flip_at} recovered wrong state"
        );
        assert!(report.corruption_detected || report.discarded_bytes > 0);
    }
}

// ---------------------------------------------------------------------
// Durable engine: kill after N committed mutations, reopen, all visible
// ---------------------------------------------------------------------

#[test]
fn durable_engine_reopens_with_all_committed_mutations() {
    let n = 40usize;
    let fs = FaultFs::new();
    let dir = std::env::temp_dir().join(format!("gdm-wal-recovery-engine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut eng, _) = DurableEngine::open(EngineKind::Neo4j, &dir, fs.clone(), opts()).unwrap();
    let mut nodes = Vec::new();
    for i in 0..n {
        let id = eng
            .create_node(
                Some("item"),
                PropertyMap::new().with("seq", gdm_core::Value::Int(i as i64)),
            )
            .unwrap();
        nodes.push(id);
        if i > 0 {
            eng.create_edge(nodes[i - 1], nodes[i], Some("next"), PropertyMap::new())
                .unwrap();
        }
    }
    drop(eng); // kill: no shutdown hook runs
    fs.crash();
    let (eng2, report) = DurableEngine::open(EngineKind::Neo4j, &dir, fs, opts()).unwrap();
    assert_eq!(eng2.node_count(), n);
    assert_eq!(eng2.edge_count(), n - 1);
    assert_eq!(report.records_applied, n + (n - 1));
    for (i, &id) in nodes.iter().enumerate() {
        assert_eq!(
            eng2.node_attribute(id, "seq").unwrap(),
            Some(gdm_core::Value::Int(i as i64)),
            "node {i} lost its property"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Group commit honors its loss window: with `Batch(8)` and a lying
/// disk crash, recovery still yields a committed prefix (never a torn
/// interior), just possibly a shorter one.
#[test]
fn group_commit_crash_loses_only_a_suffix() {
    let fs = FaultFs::new();
    let batched = WalOptions {
        segment_bytes: 1 << 20,
        sync: SyncPolicy::batch(8),
        ..WalOptions::default()
    };
    let mut kv = DurableKv::create(fs.clone(), batched, MemKv::new()).unwrap();
    for i in 0..20u8 {
        kv.put(&[i], &[i]).unwrap();
    }
    drop(kv);
    fs.crash(); // unsynced tail of the batch window vanishes
    let (mut kv, _) = DurableKv::recover(fs, batched, MemKv::new()).unwrap();
    let got: Vec<u8> = kv
        .scan_range(b"", None)
        .unwrap()
        .into_iter()
        .map(|(k, _)| k[0])
        .collect();
    // Whatever survived is a contiguous prefix 0..len — no holes.
    assert_eq!(got, (0..got.len() as u8).collect::<Vec<_>>());
    // At least the fully synced batches are there.
    assert!(got.len() >= 16, "synced batches lost: {got:?}");
}
