//! # graph-db-models
//!
//! An executable reproduction of **"A Comparison of Current Graph
//! Database Models"** (Angles, ICDE Workshops / GDM 2012).
//!
//! The paper surveys nine 2012-era graph databases — AllegroGraph,
//! DEX, Filament, G-Store, HyperGraphDB, InfiniteGraph, Neo4j, Sones,
//! VertexDB — and compares their *data models*: structures, query
//! facilities, integrity constraints, and support for a set of
//! essential graph queries. This workspace rebuilds everything the
//! comparison touches, from storage substrates to query languages,
//! and regenerates the paper's eight tables by probing the running
//! emulations.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] (`gdm-core`) | ids, values, property maps, the [`core::GraphView`] abstraction |
//! | [`storage`] (`gdm-storage`) | pager + buffer pool, disk B-tree, heap file, record store, bitmaps, indexes, transactions |
//! | [`graphs`] (`gdm-graphs`) | simple / property / hyper / nested / RDF / partitioned graphs |
//! | [`algo`] (`gdm-algo`) | the essential queries: adjacency, reachability, regular paths, VF2 pattern matching, summarization |
//! | [`govern`] (`gdm-govern`) | the query governor: deadlines, budgets, cooperative cancellation ([`govern::ExecutionGuard`]) |
//! | [`schema`] (`gdm-schema`) | schemas and the six Table VI integrity constraints |
//! | [`query`] (`gdm-query`) | Cypher-like, SPARQL-like, GQL and GSQL dialects, Datalog reasoning |
//! | [`engines`] (`gdm-engines`) | the nine engine emulations behind one [`engines::GraphEngine`] facade |
//! | [`compare`] (`gdm-compare`) | recorded cells + execution probes + Table I–VIII renderers |
//! | [`wal`] (`gdm-wal`) | segmented write-ahead log, checkpoints, crash recovery, fault injection |
//!
//! ## Quickstart
//!
//! ```
//! use graph_db_models::engines::{make_engine, EngineKind, GraphEngine};
//! use graph_db_models::core::props;
//! # let dir = std::env::temp_dir().join(format!("gdm-doc-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir).unwrap();
//!
//! let mut db = make_engine(EngineKind::Neo4j, &dir).unwrap();
//! let ada = db.create_node(Some("Person"), props! { "name" => "ada" }).unwrap();
//! let bob = db.create_node(Some("Person"), props! { "name" => "bob" }).unwrap();
//! db.create_edge(ada, bob, Some("KNOWS"), props! {}).unwrap();
//!
//! let rs = db.execute_query("MATCH (a:Person)-[:KNOWS]->(b) RETURN b.name").unwrap();
//! assert_eq!(rs.rows[0][0].as_str(), Some("bob"));
//! ```

pub use gdm_algo as algo;
pub use gdm_bench as bench;
pub use gdm_compare as compare;
pub use gdm_core as core;
pub use gdm_engines as engines;
pub use gdm_govern as govern;
pub use gdm_graphs as graphs;
pub use gdm_query as query;
pub use gdm_schema as schema;
pub use gdm_server as server;
pub use gdm_storage as storage;
pub use gdm_wal as wal;

/// Paper metadata, for reports.
pub const PAPER_TITLE: &str = "A Comparison of Current Graph Database Models";
/// The venue the reproduction targets.
pub const PAPER_VENUE: &str = "ICDE Workshops (GDM), 2012";
