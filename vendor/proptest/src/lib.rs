//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so the workspace
//! vendors the proptest surface its tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_recursive` / `boxed`, range and collection
//! and tuple strategies, regex-subset string strategies, the
//! `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//! macros, and [`ProptestConfig`]. Differences from the real crate:
//!
//! * **No shrinking** — a failing case reports its generated inputs
//!   (Debug-formatted) and the case number, but is not minimized.
//! * **Deterministic seeding** — the RNG seed derives from the test
//!   name, so failures reproduce exactly on re-run; regression files
//!   (`.proptest-regressions`) are ignored.
//! * Integer strategies bias toward boundary values (0, ±1, MIN, MAX)
//!   more aggressively than the real crate's binary search does.

use std::fmt;
use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// SplitMix64 — deterministic per seed; good enough to drive
/// generation (statistical quality is not load-bearing for tests).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Seeds deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous depth and returns the next level. Levels 0..=depth are
    /// sampled uniformly (the real crate sizes probabilistically; the
    /// two extra parameters are accepted for signature compatibility).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut levels: Vec<(u32, BoxedStrategy<Self::Value>)> = vec![(1, self.boxed())];
        for _ in 0..depth {
            let prev = levels.last().expect("nonempty").1.clone();
            levels.push((1, f(prev).boxed()));
        }
        OneOf { choices: levels }.boxed()
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of strategies — built by `prop_oneof!`.
pub struct OneOf<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` pairs.
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Self { choices }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.choices.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.choices {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total")
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// `&str` as a regex-subset string strategy. Supported syntax: literal
/// characters, `[a-z0-9_]`-style classes (ranges and single chars),
/// and quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` — the shapes this
/// workspace's tests use. Unsupported syntax panics with the pattern.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal char.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '.' => {
                i += 1;
                ('a'..='z').chain('A'..='Z').chain('0'..='9').collect()
            }
            '\\' => {
                let esc = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling `\\` in pattern {pattern:?}"));
                i += 2;
                match esc {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z').chain('0'..='9').chain(['_']).collect(),
                    c => vec![c],
                }
            }
            '(' | ')' | '|' => panic!(
                "proptest stand-in: unsupported regex syntax `{}` in {pattern:?}",
                chars[i]
            ),
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("quantifier min"),
                        n.trim().parse::<usize>().expect("quantifier max"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("quantifier");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

// ---------------------------------------------------------------------
// The `prop::` module tree
// ---------------------------------------------------------------------

/// Mirrors `proptest::prop`: the module tree of canned strategies.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy yielding uniform booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Numeric strategies: `prop::num::<type>::ANY`.
    pub mod num {
        macro_rules! num_mod {
            ($($m:ident : $t:ty),*) => {$(
                /// Strategies for one primitive type.
                pub mod $m {
                    use crate::{Strategy, TestRng};

                    /// Full-range strategy, biased toward boundaries.
                    #[derive(Debug, Clone, Copy)]
                    pub struct Any;

                    /// Full range of the type.
                    pub const ANY: Any = Any;

                    impl Strategy for Any {
                        type Value = $t;
                        fn generate(&self, rng: &mut TestRng) -> $t {
                            // 1 in 8 draws yields a boundary value.
                            if rng.below(8) == 0 {
                                let edges = [
                                    <$t>::MIN,
                                    <$t>::MAX,
                                    0 as $t,
                                    1 as $t,
                                ];
                                edges[rng.below(edges.len() as u64) as usize]
                            } else {
                                rng.next_u64() as $t
                            }
                        }
                    }
                }
            )*};
        }

        num_mod!(
            u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
            i8: i8, i16: i16, i32: i32, i64: i64, isize: isize
        );

        /// Strategies for `f64`.
        pub mod f64 {
            use crate::{Strategy, TestRng};

            /// Finite `f64`s across magnitudes.
            #[derive(Debug, Clone, Copy)]
            pub struct Any;

            /// Finite values only (unlike the real crate, which can
            /// also yield NaN/inf unless filtered).
            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = f64;
                fn generate(&self, rng: &mut TestRng) -> f64 {
                    let mag = rng.below(40) as i32 - 20;
                    let unit = rng.unit_f64() * 2.0 - 1.0;
                    unit * 10f64.powi(mag)
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::fmt;

        /// Strategy for `Vec<T>` with a random length.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `vec(element, len_range)` — random-length vectors.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<T>`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `btree_set(element, len_range)` — sets of *up to* the given
        /// size (duplicates collapse, as in the real crate).
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord + fmt::Debug,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord + fmt::Debug,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy yielding `None` a quarter of the time.
        pub struct OptionStrategy<S>(S);

        /// `of(element)` — `Some(element)` 3/4 of the time.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy(element)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

/// A collection length specification.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

// ---------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps offline CI quick
        // while the explicit `with_cases` blocks are honored exactly.
        ProptestConfig { cases: 64 }
    }
}

/// Failure value for `Result`-style test bodies (`return Ok(())`,
/// `Err(TestCaseError::fail(..))`). The stand-in reports it by
/// panicking with the message.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A test-case failure with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests. Each function runs `config.cases` times
/// with fresh inputs drawn from the given strategies; a panic reports
/// the Debug form of the failing inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg(<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let __vals = ($($crate::Strategy::generate(&$strat, &mut __rng),)+);
                    let __repr = ::std::format!("{:#?}", __vals);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            let ($($pat,)+) = __vals;
                            // Like the real crate, the body runs inside a
                            // Result-returning closure so tests may
                            // `return Ok(())` early or use `?`.
                            #[allow(unreachable_code, clippy::redundant_closure_call)]
                            let __ret: ::core::result::Result<(), $crate::TestCaseError> =
                                (move || {
                                    $body
                                    ::core::result::Result::Ok(())
                                })();
                            if let ::core::result::Result::Err(__err) = __ret {
                                ::std::panic!("test case failed: {}", __err);
                            }
                        }),
                    );
                    if let ::core::result::Result::Err(__panic) = __outcome {
                        ::std::eprintln!(
                            "proptest stand-in: case {}/{} of `{}` failed with inputs:\n{}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __repr
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections_generate_in_bounds() {
        let mut rng = crate::TestRng::new(11);
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let vec = prop::collection::vec(0u8..4, 2..5).generate(&mut rng);
            assert!((2..5).contains(&vec.len()));
            assert!(vec.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::TestRng::new(5);
        for _ in 0..200 {
            let s = "[a-z]{1,5}".generate(&mut rng);
            assert!((1..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = "x\\d{2}".generate(&mut rng);
            assert_eq!(t.len(), 3);
            assert!(t.starts_with('x'));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::TestRng::new(1);
        let trues = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 700, "expected ~900 trues, got {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_runs_with_tuples((a, b) in (0u8..10, 0u8..10), v in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 4);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(ts) => 1 + ts.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u8..255).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 8, 4, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::new(3);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
        }
    }
}
