//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace
//! vendors the slice of serde it uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, consumed by the vendored
//! `serde_json`. Instead of serde's visitor architecture, values
//! convert to and from one self-describing [`Content`] tree; the
//! derive macros (in `serde_derive`) generate those conversions with
//! serde's standard shapes (externally tagged enums, transparent
//! newtypes), so swapping the real crates back in would keep the same
//! JSON on disk.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the meeting point between
/// serializable types and data formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`, unit, or `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map (insertion-ordered; JSON objects).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The map entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y" constructor.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("expected {what} while deserializing {context}"))
    }

    /// Unknown enum variant tag.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` to content.
    fn serialize_content(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Converts content back to `Self`.
    fn deserialize_content(c: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Helpers the derive macros call
// ---------------------------------------------------------------------

/// Looks up a struct field by name in a map.
pub fn field<'a>(map: &'a [(Content, Content)], name: &str) -> Result<&'a Content, DeError> {
    map.iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == name))
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// Splits an externally tagged enum value into `(tag, payload)`.
pub fn enum_tag(c: &Content) -> Result<(&str, Option<&Content>), DeError> {
    match c {
        Content::Str(s) => Ok((s, None)),
        Content::Map(m) if m.len() == 1 => match &m[0] {
            (Content::Str(tag), payload) => Ok((tag, Some(payload))),
            _ => Err(DeError("enum tag must be a string".into())),
        },
        other => Err(DeError::expected(
            "string or single-entry map",
            other.kind(),
        )),
    }
}

// ---------------------------------------------------------------------
// Primitive and container impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let wide: i64 = match c {
                    Content::I64(i) => *i,
                    Content::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError("integer out of range".into()))?,
                    other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(wide).map_err(|_| DeError("integer out of range".into()))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Content::I64(i),
                    Err(_) => Content::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let wide: u64 = match c {
                    Content::I64(i) => u64::try_from(*i)
                        .map_err(|_| DeError("negative integer for unsigned".into()))?,
                    Content::U64(u) => *u,
                    other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(wide).map_err(|_| DeError("integer out of range".into()))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(f) => Ok(*f as $t),
                    Content::I64(i) => Ok(*i as $t),
                    Content::U64(u) => Ok(*u as $t),
                    other => Err(DeError::expected("number", other.kind())),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other.kind())),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        T::deserialize_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c.kind()))?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (Content::Str(k.clone()), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", c.kind()))?
            .iter()
            .map(|(k, v)| match k {
                Content::Str(s) => Ok((s.clone(), V::deserialize_content(v)?)),
                other => Err(DeError::expected("string key", other.kind())),
            })
            .collect()
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let seq = c
                    .as_seq()
                    .ok_or_else(|| DeError::expected("tuple sequence", c.kind()))?;
                let expect = [$($idx),+].len();
                if seq.len() != expect {
                    return Err(DeError(format!(
                        "tuple length mismatch: expected {expect}, got {}",
                        seq.len()
                    )));
                }
                Ok(($($t::deserialize_content(&seq[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<(String, u32)>> = vec![None, Some(("hi".into(), 7))];
        let c = v.serialize_content();
        let back = Vec::<Option<(String, u32)>>::deserialize_content(&c).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        m.insert("b".to_string(), -2);
        let back = BTreeMap::<String, i64>::deserialize_content(&m.serialize_content()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn errors_name_the_mismatch() {
        let err = String::deserialize_content(&Content::I64(3)).unwrap_err();
        assert!(err.0.contains("string"));
    }
}
