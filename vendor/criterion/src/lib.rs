//! Offline stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use —
//! [`Criterion`], `benchmark_group`, `bench_function`, `sample_size`,
//! [`BenchmarkId`], `criterion_group!`, `criterion_main!`, `b.iter` —
//! with honest wall-clock measurement but none of the real crate's
//! statistics (no outlier analysis, no HTML reports, no comparison to
//! saved baselines).
//!
//! Mode selection matches how cargo drives bench binaries:
//! `cargo bench` passes `--bench`, which runs full sampling and prints
//! a median time per iteration; any other invocation (notably
//! `cargo test`, which runs `harness = false` benches as tests) runs
//! each benchmark once as a smoke test so suites stay fast.

use std::time::{Duration, Instant};

/// Measurement mode, decided from the command line.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Full sampling (`--bench` present).
    Measure,
    /// One iteration per benchmark (anything else, e.g. `cargo test`).
    Smoke,
}

fn detect_mode() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

/// An optional substring filter from the CLI (criterion convention:
/// first free argument filters benchmark names).
fn detect_filter() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && a != "--bench" && a != "--test")
}

/// The top-level harness handle.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: detect_mode(),
            filter: detect_filter(),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id.0, sample_size, &mut f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, sample_size: usize, f: &mut F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Sets the measurement time. Accepted for compatibility; the
    /// stand-in sizes runs by sample count only.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares throughput. Accepted for compatibility; ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, &mut f);
        self
    }

    /// Ends the group (prints nothing; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput declaration (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the closure of `bench_function`; `iter` does the timing.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`. In smoke mode it runs once; in measure mode it
    /// auto-sizes batches to ~1 ms and records `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                let start = Instant::now();
                std::hint::black_box(routine());
                self.samples.push(start.elapsed());
            }
            Mode::Measure => {
                // Warm up and size the batch so one sample ≥ ~1 ms.
                let mut batch = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                        break;
                    }
                    batch *= 2;
                }
                self.samples.clear();
                for _ in 0..self.sample_size {
                    let start = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(routine());
                    }
                    self.samples.push(start.elapsed() / batch as u32);
                }
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no measurement — closure never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        match self.mode {
            Mode::Smoke => println!("{name:<50} ok (smoke, {median:?})"),
            Mode::Measure => {
                let lo = sorted[0];
                let hi = sorted[sorted.len() - 1];
                println!(
                    "{name:<50} median {median:?}  (min {lo:?}, max {hi:?}, n={})",
                    sorted.len()
                );
            }
        }
    }
}

/// Re-export for benches that import it from criterion rather than
/// `std::hint`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_bench_once() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: None,
            sample_size: 30,
        };
        let mut calls = 0;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("one", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: Some("wanted".into()),
            sample_size: 30,
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("the_wanted_one", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("pool", 16).0, "pool/16");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
