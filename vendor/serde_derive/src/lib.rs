//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored serde's `Serialize`/`Deserialize`
//! traits. `syn`/`quote` are unavailable offline, so the input item is
//! parsed directly from the `proc_macro` token stream. Supported
//! shapes — the ones this workspace derives on — are non-generic
//! structs (named, tuple, unit) and enums with unit/newtype/tuple
//! variants, in serde's standard representation (externally tagged
//! enums, transparent newtype structs). Unsupported shapes produce a
//! `compile_error!` naming the limitation instead of silently wrong
//! code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item we are deriving on.
enum Item {
    /// `struct S { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(A, B);` — arity recorded, names are positional.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { Unit, Newtype(A), Tuple(A, B) }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    /// Number of unnamed payload fields (0 = unit variant). Named-field
    /// variants are rejected at parse time.
    arity: usize,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated code parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match ident_at(&tokens, i) {
        Some(k) if k == "struct" || k == "enum" => k,
        _ => return Err("serde stand-in: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = ident_at(&tokens, i).ok_or("serde stand-in: missing item name")?;
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in: generic type `{name}` is not supported"
        ));
    }
    if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            None => Ok(Item::UnitStruct { name }),
            _ => Err("serde stand-in: unrecognized struct body".into()),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            _ => Err("serde stand-in: enum without a body".into()),
        }
    }
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + [..] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Field names of `{ a: A, b: B }`, skipping types (angle-bracket
/// aware so `Vec<Option<(A, B)>>` commas don't split fields).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => return Err("serde stand-in: expected field name".into()),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde stand-in: field `{name}` missing `:`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advances past one type, stopping at a top-level `,`.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(tt) = tokens.get(*i) {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Number of fields in a tuple-struct/variant payload `(A, B, C)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for tt in &tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma `(A,)` counts one too many; detect it.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => return Err("serde stand-in: expected variant name".into()),
        };
        i += 1;
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_tuple_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde stand-in: struct-like variant `{name}` is not supported"
                ));
            }
            _ => 0,
        };
        // Skip an explicit discriminant `= expr`.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        variants.push(Variant { name, arity });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Content::Str({f:?}.to_string()), \
                         ::serde::Serialize::serialize_content(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn serialize_content(&self) -> ::serde::Content {{\
                         ::serde::Content::Map(vec![{entries}])\
                     }}\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\
                 fn serialize_content(&self) -> ::serde::Content {{\
                     ::serde::Serialize::serialize_content(&self.0)\
                 }}\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_content(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn serialize_content(&self) -> ::serde::Content {{\
                         ::serde::Content::Seq(vec![{elems}])\
                     }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\
                 fn serialize_content(&self) -> ::serde::Content {{\
                     ::serde::Content::Null\
                 }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match v.arity {
                        0 => format!(
                            "{name}::{vname} => ::serde::Content::Str({vname:?}.to_string()),"
                        ),
                        1 => format!(
                            "{name}::{vname}(__f0) => ::serde::Content::Map(vec![\
                                 (::serde::Content::Str({vname:?}.to_string()),\
                                  ::serde::Serialize::serialize_content(__f0))]),"
                        ),
                        n => {
                            let binds: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
                            let elems: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_content({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(vec![\
                                     (::serde::Content::Str({vname:?}.to_string()),\
                                      ::serde::Content::Seq(vec![{elems}]))]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn serialize_content(&self) -> ::serde::Content {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_content(\
                             ::serde::field(__map, {f:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn deserialize_content(__c: &::serde::Content) \
                         -> ::core::result::Result<Self, ::serde::DeError> {{\
                         let __map = __c.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"map\", {name:?}))?;\
                         ::core::result::Result::Ok({name} {{ {inits} }})\
                     }}\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\
                 fn deserialize_content(__c: &::serde::Content) \
                     -> ::core::result::Result<Self, ::serde::DeError> {{\
                     ::core::result::Result::Ok({name}(\
                         ::serde::Deserialize::deserialize_content(__c)?))\
                 }}\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize_content(&__seq[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn deserialize_content(__c: &::serde::Content) \
                         -> ::core::result::Result<Self, ::serde::DeError> {{\
                         let __seq = __c.as_seq().ok_or_else(|| \
                             ::serde::DeError::expected(\"sequence\", {name:?}))?;\
                         if __seq.len() != {arity} {{\
                             return ::core::result::Result::Err(::serde::DeError::expected(\
                                 \"{arity}-element sequence\", {name:?}));\
                         }}\
                         ::core::result::Result::Ok({name}({elems}))\
                     }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\
                 fn deserialize_content(_c: &::serde::Content) \
                     -> ::core::result::Result<Self, ::serde::DeError> {{\
                     ::core::result::Result::Ok({name})\
                 }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match v.arity {
                        0 => format!(
                            "({vname:?}, ::core::option::Option::None) => \
                                 ::core::result::Result::Ok({name}::{vname}),"
                        ),
                        1 => format!(
                            "({vname:?}, ::core::option::Option::Some(__inner)) => \
                                 ::core::result::Result::Ok({name}::{vname}(\
                                     ::serde::Deserialize::deserialize_content(__inner)?)),"
                        ),
                        n => {
                            let elems: String = (0..n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize_content(&__seq[{i}])?,"
                                    )
                                })
                                .collect();
                            format!(
                                "({vname:?}, ::core::option::Option::Some(__inner)) => {{\
                                     let __seq = __inner.as_seq().ok_or_else(|| \
                                         ::serde::DeError::expected(\"sequence\", {name:?}))?;\
                                     if __seq.len() != {n} {{\
                                         return ::core::result::Result::Err(\
                                             ::serde::DeError::expected(\
                                                 \"{n}-element sequence\", {name:?}));\
                                     }}\
                                     ::core::result::Result::Ok({name}::{vname}({elems}))\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn deserialize_content(__c: &::serde::Content) \
                         -> ::core::result::Result<Self, ::serde::DeError> {{\
                         match ::serde::enum_tag(__c)? {{\
                             {arms}\
                             (__tag, _) => ::core::result::Result::Err(\
                                 ::serde::DeError::unknown_variant(__tag, {name:?})),\
                         }}\
                     }}\
                 }}"
            )
        }
    }
}
