//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde's [`Content`] tree as JSON text and
//! parses it back: `to_vec` / `to_string` / `from_slice` / `from_str`,
//! which is the full surface this workspace uses. The emitted JSON
//! matches what real serde_json produces for the supported shapes
//! (externally tagged enums, objects for named structs), so snapshots
//! written by this stand-in stay readable if the real crates return.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content())?;
    Ok(out)
}

/// Serializes `value` as JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        buf: s.as_bytes(),
        pos: 0,
    };
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.buf.len() {
        return Err(Error("trailing characters after JSON value".into()));
    }
    Ok(T::deserialize_content(&content)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error("input is not UTF-8".into()))?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_content(out: &mut String, c: &Content) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => {
            if f.is_finite() {
                // `{:?}` keeps a `.0` on integral floats, so the value
                // parses back as a float, and round-trips exactly.
                out.push_str(&format!("{f:?}"));
            } else {
                // Real serde_json also writes null for non-finite.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Content::Str(s) => write_string(out, s),
                    other => {
                        return Err(Error(format!(
                            "JSON object keys must be strings, got {}",
                            other.kind()
                        )))
                    }
                }
                out.push(':');
                write_content(out, v)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.buf.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.buf
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.buf[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Content::Null),
            b't' => self.literal("true", Content::Bool(true)),
            b'f' => self.literal("false", Content::Bool(false)),
            b'"' => self.string().map(Content::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while !matches!(self.buf.get(self.pos), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.buf[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.buf.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .buf
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if self.buf.get(self.pos) == Some(&b'\\')
                                    && self.buf.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(Error("lone high surrogate".into()));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("invalid unicode escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                None => return Err(Error("unterminated string".into())),
                _ => unreachable!(),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.buf.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.buf.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.buf[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Content;

    fn roundtrip(c: &Content) -> Content {
        let mut s = String::new();
        write_content(&mut s, c).unwrap();
        let mut p = Parser {
            buf: s.as_bytes(),
            pos: 0,
        };
        p.value().unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for c in [
            Content::Null,
            Content::Bool(true),
            Content::I64(-42),
            Content::U64(u64::MAX),
            Content::F64(1.5),
            Content::F64(1.0),
            Content::Str("he\"llo\n\\ \u{1} ünïcode".into()),
        ] {
            assert_eq!(roundtrip(&c), c, "round-trip of {c:?}");
        }
    }

    #[test]
    fn integral_float_stays_float() {
        // `1.0` must not collapse to the integer `1` on the wire.
        let back = roundtrip(&Content::F64(3.0));
        assert_eq!(back, Content::F64(3.0));
    }

    #[test]
    fn nested_structures() {
        let c = Content::Map(vec![
            (
                Content::Str("items".into()),
                Content::Seq(vec![Content::I64(1), Content::Null]),
            ),
            (Content::Str("empty".into()), Content::Map(vec![])),
        ]);
        assert_eq!(roundtrip(&c), c);
    }

    #[test]
    fn whitespace_tolerated() {
        let c: Content = {
            let mut p = Parser {
                buf: b" { \"a\" : [ 1 , 2 ] } ",
                pos: 0,
            };
            p.value().unwrap()
        };
        assert_eq!(
            c,
            Content::Map(vec![(
                Content::Str("a".into()),
                Content::Seq(vec![Content::I64(1), Content::I64(2)])
            )])
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<bool>("truue").is_err());
        assert!(from_str::<bool>("true 1").is_err());
        assert!(from_str::<Vec<i64>>("[1,]").is_err());
    }
}
