//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace
//! vendors the small API subset it actually uses: a seedable PRNG
//! (`StdRng`) and `Rng::gen_range` over integer and float ranges.
//! Streams are deterministic per seed (xoshiro256**), which is all the
//! workload generators require — they seed explicitly for
//! reproducibility and never ask for OS entropy.

/// Seeding support — only `seed_from_u64` is used by this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range<T>`.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample using `rng`.
    fn sample(&self, rng: &mut dyn RngCore) -> Self::Output;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open, like `rand 0.8`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniformly random bool.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant for the small
                // spans the generators use.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for core::ops::Range<f32> {
    type Output = f32;
    fn sample(&self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — deterministic, fast, good equidistribution.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
